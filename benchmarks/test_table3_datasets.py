"""Table 3: heterogeneous graph datasets used in the evaluation."""

import pytest

from repro.evaluation.reporting import format_table
from repro.graph.datasets import table3_rows


@pytest.mark.smoke
def test_table3_dataset_statistics(benchmark):
    rows = benchmark(table3_rows)
    print()
    print(format_table(rows, title="Table 3 — Heterogeneous graph datasets"))
    assert len(rows) == 8
    by_name = {row["name"]: row for row in rows}
    assert by_name["mag"]["num_edges"] == 21_000_000
    assert by_name["aifb"]["num_edge_types"] == 104
    assert by_name["wikikg2"]["num_node_types"] == 1
