"""Benchmark-suite configuration.

Every benchmark regenerates one table or figure of the paper and prints the
reproduced rows; run with ``pytest benchmarks/ --benchmark-only``.
"""

import pytest
