"""Section 4.1 programming-effort metric: tiny model definitions, thousands of generated lines."""

import pytest

from repro.evaluation import programming_effort_metric
from repro.evaluation.reporting import format_table


@pytest.mark.smoke
def test_loc_programming_effort(benchmark):
    metric = benchmark(programming_effort_metric)
    print()
    print(format_table(metric["per_model"], title="Programming effort — input vs generated lines of code"))
    totals = metric["totals"]
    print(f"Totals: input={totals['input_lines']} lines, generated={totals['generated_total']} lines "
          f"(python={totals['generated_python']}, cuda={totals['generated_cuda']}, "
          f"host={totals['generated_host']}), expansion ×{totals['expansion_factor']:.0f}")
    # The paper: 51 input lines -> ~8K generated lines for the three models.
    assert totals["input_lines"] < 120
    assert totals["generated_total"] > 2000
    assert totals["expansion_factor"] > 20
    assert len(metric["per_model"]) == 3
