"""Table 4: speed-up of Hector (unoptimised and best-optimised) vs the best baseline."""

import pytest

from repro.evaluation import speedup_summary
from repro.evaluation.reporting import format_table


@pytest.mark.smoke
def test_table4_speedup_summary(benchmark):
    rows = benchmark(speedup_summary)
    print()
    print(format_table(
        rows,
        columns=["config", "mode", "model", "worst", "average", "best", "num_oom"],
        title="Table 4 — Hector speed-up vs best state-of-the-art system (worst/avg/best, #OOM)",
    ))
    assert rows
    for row in rows:
        assert row["worst"] <= row["average"] <= row["best"]
        assert row["average"] > 1.0  # Hector wins on (geometric) average everywhere
    # Best-optimised configuration never runs out of memory (paper: zero OOM rows).
    for row in rows:
        if row["config"] == "b. opt.":
            assert row["num_oom"] == 0
    # RGAT shows the largest best-case gains, as in the paper.
    best_by_model = {}
    for row in rows:
        if row["config"] == "unopt." and row["mode"] == "inference":
            best_by_model[row["model"]] = row["best"]
    assert best_by_model["RGAT"] >= max(best_by_model["RGCN"], best_by_model["HGT"])
