"""Figure 12: architectural metrics of Hector's generated kernels (RGAT, bgs & am)."""

import pytest

from repro.evaluation import architectural_metrics
from repro.evaluation.reporting import format_table


@pytest.mark.smoke
def test_fig12_architectural_metrics(benchmark):
    rows = benchmark(architectural_metrics)
    print()
    print(format_table(
        rows,
        columns=["dataset", "dim", "config", "category", "direction", "total_duration_s",
                 "avg_achieved_gflops", "avg_executed_ipc", "avg_dram_throughput_pct"],
        title="Figure 12 — Architectural metrics of generated kernels (RGAT forward/backward)",
    ))
    assert rows
    gemm_forward = [r for r in rows if r["category"] == "gemm" and r["direction"] == "forward"]
    traversal_forward = [r for r in rows if r["category"] == "traversal" and r["direction"] == "forward"]
    gemm_backward = [r for r in rows if r["category"] == "gemm" and r["direction"] == "backward"]

    # GEMM kernels achieve (much) higher arithmetic throughput than traversal kernels.
    assert min(r["avg_achieved_gflops"] for r in gemm_forward) > max(
        r["avg_achieved_gflops"] for r in traversal_forward
    )
    # Traversal kernels are latency-bound: IPC stays well below the ideal of 4.
    assert all(r["avg_executed_ipc"] < 3.0 for r in traversal_forward)
    # Backward kernels have lower throughput than forward (atomics, outer products).
    assert max(r["avg_achieved_gflops"] for r in gemm_backward) < max(
        r["avg_achieved_gflops"] for r in gemm_forward
    )
    # Throughput increases with the feature dimension (sub-linear time growth).
    for dataset in ("bgs", "am"):
        small = [r for r in gemm_forward if r["dataset"] == dataset and r["dim"] == 32]
        large = [r for r in gemm_forward if r["dataset"] == dataset and r["dim"] == 128]
        assert max(r["avg_achieved_gflops"] for r in large) > min(r["avg_achieved_gflops"] for r in small)
    # Throughput also increases with graph scale (bgs -> am), as observed in the paper.
    bgs64 = [r for r in gemm_forward if r["dataset"] == "bgs" and r["dim"] == 64 and r["config"] == "U"]
    am64 = [r for r in gemm_forward if r["dataset"] == "am" and r["dim"] == 64 and r["config"] == "U"]
    assert am64[0]["avg_achieved_gflops"] >= bgs64[0]["avg_achieved_gflops"]
