"""Table 5: speed-up from compact materialization (C) and linear operator reordering (R)."""

import pytest

from repro.evaluation import optimization_speedups
from repro.evaluation.optimizations import best_fixed_strategy
from repro.evaluation.reporting import format_table


@pytest.mark.smoke
def test_table5_optimization_speedups(benchmark):
    rows = benchmark(optimization_speedups)
    print()
    print(format_table(
        rows,
        columns=["model", "mode", "dataset", "reference", "C", "R", "C+R"],
        title="Table 5 — Speed-up over unoptimised Hector from compaction (C) and reordering (R)",
    ))
    averages = [r for r in rows if r["dataset"] == "AVERAGE"]
    assert len(averages) == 4  # {RGAT, HGT} × {training, inference}
    for row in averages:
        assert row["C+R"] > 1.0
    # Enabling both optimizations is the best fixed strategy on average.
    assert best_fixed_strategy(rows) == "C+R"
    # Compaction helps most where the entity compaction ratio is smallest (biokg).
    rgat_inference = [r for r in rows if r["model"] == "RGAT" and r["mode"] == "inference"
                      and r["dataset"] not in ("AVERAGE",)]
    biokg = next(r for r in rgat_inference if r["dataset"] == "biokg")
    assert biokg["C"] == max(r["C"] for r in rgat_inference if r["C"] is not None)
