"""Hot-path performance regression: compile-once-run-many throughput.

The serving pattern the ROADMAP targets compiles a model once and executes it
for many requests.  The seed runtime recompiled the program on every
``compile_model`` call and allocated every intermediate buffer afresh per
invocation; the performance layer (compilation cache + buffer-arena memory
planner + elementwise fusion) must beat that path by at least 2× on the same
model and graph — this file is the regression gate for it.
"""

import time

import numpy as np
import pytest

from repro.evaluation.reporting import format_table
from repro.frontend import CompilerOptions, clear_compilation_cache, compile_model, global_compilation_cache
from repro.graph import random_hetero_graph

#: The seed behaviour: no cache, no arena, no extra fusion.
SEED_OPTIONS = CompilerOptions(
    enable_compilation_cache=False,
    enable_memory_planning=False,
)

#: The hot-path configuration of the performance layer.
FAST_OPTIONS = CompilerOptions(fuse_elementwise=True)


def _perf_graph():
    # Sized so one compilation costs a few forward+backward invocations, as
    # in real serving: large enough to exercise every kernel, small enough
    # that the benchmark stays well under a minute in CI.
    return random_hetero_graph(
        num_nodes=120, num_edges=500, num_node_types=3, num_edge_types=6, seed=7, name="perf"
    )


def _features(graph, dim):
    return np.random.default_rng(0).standard_normal((graph.num_nodes, dim))


def _run_seed_path(model, graph, features, dim, iterations):
    """One full compile + forward + backward per request (seed behaviour)."""
    start = time.perf_counter()
    outputs = None
    for _ in range(iterations):
        module = compile_model(model, graph, in_dim=dim, out_dim=dim, options=SEED_OPTIONS)
        outputs = module.forward(features)
        module.backward({name: np.ones_like(value) for name, value in outputs.items()})
    return time.perf_counter() - start, outputs


def _run_fast_path(model, graph, features, dim, iterations):
    """Compile once (cached), then serve every request from the same module."""
    clear_compilation_cache()
    start = time.perf_counter()
    module = compile_model(model, graph, in_dim=dim, out_dim=dim, options=FAST_OPTIONS)
    outputs = None
    for _ in range(iterations):
        outputs = module.forward(features)
        module.backward({name: np.ones_like(value) for name, value in outputs.items()})
    elapsed = time.perf_counter() - start
    return elapsed, outputs


@pytest.mark.smoke
@pytest.mark.parametrize("model", ["rgcn"])
def test_compile_once_run_many_speedup_smoke(model):
    _assert_speedup(model, iterations=12)


@pytest.mark.parametrize("model", ["rgat", "hgt"])
def test_compile_once_run_many_speedup(model):
    _assert_speedup(model, iterations=25)


def _assert_speedup(model, iterations):
    graph = _perf_graph()
    dim = 16
    features = _features(graph, dim)
    seed_time, seed_out = _run_seed_path(model, graph, features, dim, iterations)
    fast_time, fast_out = _run_fast_path(model, graph, features, dim, iterations)
    speedup = seed_time / fast_time
    print()
    print(format_table(
        [
            {
                "model": model,
                "iterations": iterations,
                "seed_path_s": round(seed_time, 4),
                "fast_path_s": round(fast_time, 4),
                "speedup": round(speedup, 2),
            }
        ],
        title="Perf regression — compile-once-run-many (cache + arena + fusion) vs seed path",
    ))
    # Identical numerics: the fast path is an optimisation, not an approximation.
    for name in seed_out:
        np.testing.assert_allclose(seed_out[name], fast_out[name], atol=1e-9)
    assert speedup >= 2.0, (
        f"performance layer regressed: {speedup:.2f}x < 2x over the seed path "
        f"(seed {seed_time:.3f}s, fast {fast_time:.3f}s)"
    )


#: Cells the codegen-backend gate may claim its speedup on: (model, nodes,
#: edges, node types, edge types, dim).  Dispatch-bound shapes — the regime
#: whole-plan codegen targets; at large dims both backends converge on the
#: same numpy GEMM/scatter work and the ratio tends to 1.
_CODEGEN_CELLS = [
    ("rgcn", 120, 500, 3, 6, 16),
    ("rgcn", 120, 500, 3, 6, 32),
    ("hgt", 256, 1000, 3, 6, 32),
]


def _forward_throughput(module, features, iterations, repeats=7):
    """Best per-iteration seconds over ``repeats`` timed batches."""
    module.forward(features)  # warm: allocate arena slots, fault in pages
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iterations):
            module.forward(features)
        best = min(best, (time.perf_counter() - start) / iterations)
    return best


@pytest.mark.smoke
def test_codegen_backend_speedup_over_interp():
    """python-codegen ≥ 1.5× python-interp on at least one serving cell.

    The whole-plan codegen backend exists to win the compile-once-run-many
    path; this gate pins that win.  Best-of-N timing per backend and a max
    over several cells keep the assertion robust to scheduler noise — the
    claim is "the backend wins somewhere dispatch-bound", not a per-cell SLA.
    """
    rows = []
    best_speedup = 0.0
    for model, nodes, edges, ntypes, etypes, dim in _CODEGEN_CELLS:
        graph = random_hetero_graph(
            num_nodes=nodes, num_edges=edges, num_node_types=ntypes,
            num_edge_types=etypes, seed=7, name="codegen-perf",
        )
        features = _features(graph, dim)
        times = {}
        outputs = {}
        for backend in ("python-interp", "python-codegen"):
            options = FAST_OPTIONS.with_(backend=backend, emit_backward=False)
            module = compile_model(model, graph, in_dim=dim, out_dim=dim, options=options)
            times[backend] = _forward_throughput(module, features, iterations=150)
            outputs[backend] = module.forward(features)
        for name in outputs["python-interp"]:
            np.testing.assert_allclose(
                outputs["python-interp"][name], outputs["python-codegen"][name], atol=1e-12
            )
        speedup = times["python-interp"] / times["python-codegen"]
        best_speedup = max(best_speedup, speedup)
        rows.append({
            "model": model,
            "graph": f"{nodes}n/{edges}e/{ntypes}nt/{etypes}et",
            "dim": dim,
            "interp_us": round(times["python-interp"] * 1e6, 1),
            "codegen_us": round(times["python-codegen"] * 1e6, 1),
            "speedup": round(speedup, 2),
        })
    print()
    print(format_table(rows, title="Perf regression — python-codegen vs python-interp forward throughput"))
    assert best_speedup >= 1.5, (
        f"codegen backend regressed: best speedup {best_speedup:.2f}x < 1.5x over "
        f"python-interp across {len(_CODEGEN_CELLS)} cells"
    )


def _sparse_hgt_cell(num_edge_types=300, occupied=4, nodes_per_type=48, edges_per_relation=60):
    """A dispatch-bound serving cell: many relations, few occupied.

    The regime the mixed backend targets — per-relation dispatch dominates
    because the schema is wide but the bound graph touches a handful of
    relations.  Built by hand: ``random_hetero_graph`` guarantees at least
    one edge per relation, and the point here is that most relations have
    none.
    """
    rng = np.random.default_rng(11)
    num_nodes = {"nt0": nodes_per_type, "nt1": nodes_per_type}
    edges = {}
    for r in range(num_edge_types):
        key = (f"nt{r % 2}", f"rel{r}", f"nt{(r + 1) % 2}")
        if r % (num_edge_types // occupied) == 0:
            edges[key] = (
                rng.integers(0, nodes_per_type, edges_per_relation),
                rng.integers(0, nodes_per_type, edges_per_relation),
            )
        else:
            edges[key] = (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
    from repro.graph import HeteroGraph

    return HeteroGraph(num_nodes, edges, name="mixed-perf")


@pytest.mark.smoke
def test_mixed_backend_beats_both_pure_backends():
    """mixed ≥ 1.1× the better pure backend (and never below either).

    On a cell mixing numpy-bound traversal kernels with dispatch-bound GEMM
    chains (300 relations, 4 occupied), the per-kernel split plus bind-time
    occupancy specialisation must win over both all-or-nothing backends:
    the pure interp and pure codegen paths both loop all 300 relations per
    GEMM kernel, while mixed runs 4 straight-line blocks.  Bit-identity is
    asserted before any timing — the speedup must not come from doing
    different arithmetic.
    """
    graph = _sparse_hgt_cell()
    dim = 8
    features = _features(graph, dim)
    times = {}
    outputs = {}
    for backend in ("python-interp", "python-codegen", "mixed"):
        options = FAST_OPTIONS.with_(backend=backend, emit_backward=False)
        module = compile_model("hgt", graph, in_dim=dim, out_dim=dim, options=options)
        outputs[backend] = module.forward(features)
        times[backend] = _forward_throughput(module, features, iterations=30)
    for backend in ("python-codegen", "mixed"):
        for name in outputs["python-interp"]:
            assert (
                outputs["python-interp"][name].tobytes() == outputs[backend][name].tobytes()
            ), f"{backend} output {name} not bit-identical to python-interp"
    best_pure = min(times["python-interp"], times["python-codegen"])
    speedup = best_pure / times["mixed"]
    print()
    print(format_table(
        [
            {
                "cell": "hgt 2nt×48n, 300et/4 occupied",
                "dim": dim,
                "interp_us": round(times["python-interp"] * 1e6, 1),
                "codegen_us": round(times["python-codegen"] * 1e6, 1),
                "mixed_us": round(times["mixed"] * 1e6, 1),
                "speedup_vs_best_pure": round(speedup, 2),
            }
        ],
        title="Perf regression — mixed backend vs both pure backends, forward throughput",
    ))
    assert times["mixed"] <= times["python-interp"], (
        f"mixed slower than python-interp: {times['mixed']*1e6:.1f}us vs "
        f"{times['python-interp']*1e6:.1f}us"
    )
    assert times["mixed"] <= times["python-codegen"], (
        f"mixed slower than python-codegen: {times['mixed']*1e6:.1f}us vs "
        f"{times['python-codegen']*1e6:.1f}us"
    )
    assert speedup >= 1.1, (
        f"mixed backend regressed: {speedup:.2f}x < 1.1x over the better pure backend"
    )


@pytest.mark.smoke
def test_artifact_cache_warm_compile_speedup(tmp_path, monkeypatch):
    """A warm-process compile skips generation+exec: ≥5× faster time-to-first-run.

    The artifact cache persists the generated source and its compiled code
    object keyed by compilation key × emitter fingerprint; the second
    compile of the same (model, options, schema) in a fresh compilation
    cache must load it instead of regenerating.
    """
    from repro.ir.codegen.artifact_cache import CACHE_ENV, artifact_cache_stats

    monkeypatch.setenv(CACHE_ENV, str(tmp_path / "codegen"))
    graph = _perf_graph()
    options = CompilerOptions(
        backend="mixed", emit_backward=True, enable_compilation_cache=False
    )

    start = time.perf_counter()
    module = compile_model("rgat", graph, in_dim=16, out_dim=16, options=options)
    cold = time.perf_counter() - start
    stats = artifact_cache_stats()
    assert stats["stores"] >= 1 and stats["hits"] == 0

    warm = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        compile_model("rgat", graph, in_dim=16, out_dim=16, options=options)
        warm = min(warm, time.perf_counter() - start)
    stats = artifact_cache_stats()
    assert stats["hits"] >= 5, f"warm compiles missed the artifact cache: {stats}"
    assert module.summary()["artifact_cache"]["stores"] >= 1
    speedup = cold / warm
    print()
    print(format_table(
        [
            {
                "cold_ms": round(cold * 1e3, 2),
                "warm_ms": round(warm * 1e3, 2),
                "speedup": round(speedup, 1),
                "hits": stats["hits"],
                "misses": stats["misses"],
            }
        ],
        title="Perf regression — artifact-cache cold vs warm compile (time-to-first-run)",
    ))
    assert speedup >= 5.0, (
        f"artifact cache regressed: warm compile only {speedup:.1f}x faster than cold"
    )


def test_cache_hits_on_repeated_compilation():
    """Repeated compile_model calls reuse one compilation result."""
    clear_compilation_cache()
    graph = _perf_graph()
    first = compile_model("rgcn", graph, in_dim=16, out_dim=16, options=FAST_OPTIONS)
    second = compile_model("rgcn", graph, in_dim=16, out_dim=16, options=FAST_OPTIONS)
    assert first.plan is second.plan
    assert first.generated is second.generated
    stats = global_compilation_cache().stats
    assert stats.hits >= 1


def test_arena_reuses_buffers_across_invocations():
    """The module's arena binds the same preallocated buffers on every call."""
    graph = _perf_graph()
    module = compile_model("rgat", graph, in_dim=16, out_dim=16, options=FAST_OPTIONS)
    features = _features(graph, 16)
    assert module.arena is not None
    first = {k: v.copy() for k, v in module.forward(features).items()}
    binds_after_first = module.arena.bind_count
    second = module.forward(features)
    assert module.arena.bind_count == binds_after_first + 1
    assert module.arena.bytes_saved() > 0
    for name in first:
        np.testing.assert_allclose(first[name], second[name])
