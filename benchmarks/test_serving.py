"""Serving benchmarks: the acceptance gates of the compile→bind→execute split
and of the multi-tenant router redesign.

Three claims are gated here:

1. **Zero recompiles across sampled blocks** — one ``compile_model`` artefact
   serves ≥ 3 differently-sized minibatch blocks, and after warmup every
   per-block cache lookup is a *hit* returning the identical plan object
   (asserted via the compilation-cache hit/miss counters).
2. **Micro-batching pays** — on one request stream, the micro-batched engine
   sustains ≥ 2× the throughput of a batch-size-1 engine, with ~100%
   plan-replay rate on both.
3. **Consolidation pays** — one router hosting 3 heterogeneous endpoints
   (RGCN/RGAT/HGT, different graphs and schemas) under a single shared arena
   budget serves a mixed 60-request stream at ≥ 1.5× the throughput of the
   *worst* isolated single-tenant configuration, with per-request results
   bit-identical to isolation (zero cross-tenant corruption) and a non-zero
   block-cache hit rate on the hot-seed portion of the workload.
"""

import numpy as np
import pytest

from repro.evaluation.reporting import format_table
from repro.evaluation.serving_study import (
    default_serving_graph,
    request_stream,
    serving_rows,
    serving_study,
)
from repro.frontend import (
    CompilerOptions,
    clear_compilation_cache,
    compile_model,
    compile_program,
    global_compilation_cache,
)
from repro.graph import NeighborSampler
from repro.models import build_program

DIM = 16

#: Inference serving configuration: cache + planner on, compact blocks.
SERVING_OPTIONS = CompilerOptions(emit_backward=False, compact_materialization=True)


@pytest.mark.smoke
@pytest.mark.parametrize("model", ["rgat"])
def test_microbatched_throughput_beats_batch_size_1(model):
    """Acceptance gate: micro-batched throughput ≥ 2× batch-size-1."""
    study = serving_study(
        model=model,
        num_requests=48,
        seeds_per_request=4,
        max_batch_size=16,
        in_dim=DIM,
        out_dim=DIM,
    )
    print()
    print(format_table(
        serving_rows(study),
        title=f"Serving study — {study['model']} on {study['graph']} "
              f"(speedup {study['speedup']}x)",
    ))
    assert study["zero_recompiles"], "serving recompiled a plan it should have replayed"
    for row in serving_rows(study):
        assert row["plan_replay_rate"] == 1.0, row
    assert study["speedup"] >= 2.0, (
        f"micro-batching regressed: {study['speedup']:.2f}x < 2x over batch-size-1"
    )


@pytest.mark.smoke
def test_one_artifact_serves_many_block_sizes_with_zero_recompiles():
    """Acceptance gate: ≥ 3 differently-sized blocks, zero recompiles after warmup."""
    clear_compilation_cache()
    graph = default_serving_graph()
    program = build_program("rgat", in_dim=DIM, out_dim=DIM)
    module = compile_model("rgat", graph, in_dim=DIM, out_dim=DIM, options=SERVING_OPTIONS)
    features = np.random.default_rng(0).standard_normal((graph.num_nodes, DIM))

    sampler = NeighborSampler(graph, fanouts=(6,), seed=3)
    rng = np.random.default_rng(1)
    blocks = [
        sampler.sample(rng.choice(graph.num_nodes, size=size, replace=False))
        for size in (2, 8, 32, 64)
    ]
    sizes = {(block.num_nodes, block.num_edges) for block in blocks}
    assert len(sizes) >= 3, f"need ≥ 3 differently-sized blocks, got {sizes}"

    # Warmup: the one compilation above plus one replayed lookup.
    compile_program(program, SERVING_OPTIONS, graph=blocks[0].graph)
    stats = global_compilation_cache().stats
    misses_before, hits_before = stats.misses, stats.hits

    rows = []
    for block in blocks:
        result = compile_program(program, SERVING_OPTIONS, graph=block.graph)
        assert result.plan is module.plan, "block compiled to a different plan object"
        binding = module.bind(block.graph)
        out = binding.forward(block.gather_features(features))["out"]
        assert block.seed_outputs(out).shape == (len(block.seeds), DIM)
        rows.append({
            "block_nodes": block.num_nodes,
            "block_edges": block.num_edges,
            "seeds": len(block.seeds),
            "plan": result.plan.name,
            "recompiled": result.plan is not module.plan,
        })

    assert stats.misses == misses_before, "a block lookup missed the compilation cache"
    assert stats.hits == hits_before + len(blocks)
    print()
    print(format_table(rows, title="One compiled artefact, many block sizes — zero recompiles"))

    pool = module.arena_pool
    # One pooled lease per block (the default binding keeps a private,
    # exact-size arena and never touches the pool).
    assert pool is not None and pool.stats.lookups == len(blocks)


@pytest.mark.smoke
def test_plan_cache_hit_rate_is_one_after_warmup_across_request_stream():
    """~100% plan-cache hit rate across a longer request stream."""
    clear_compilation_cache()
    graph = default_serving_graph()
    from repro.serving import ServingEngine

    engine = ServingEngine(
        "hgt", graph, in_dim=DIM, out_dim=DIM, options=SERVING_OPTIONS,
        fanouts=(6,), max_batch_size=8,
    )
    stats = global_compilation_cache().stats
    misses_after_compile = stats.misses

    stream = request_stream(graph, num_requests=40, seeds_per_request=3, seed=5)
    report = engine.serve(stream)
    assert report["plan_replay_rate"] == 1.0
    assert engine.plan_recompiles == 0
    assert stats.misses == misses_after_compile, "serving caused compilation-cache misses"
    print()
    print(format_table([report], title="HGT serving stream — plan replays only"))


@pytest.mark.smoke
def test_three_tenant_consolidation_beats_worst_isolated_engine():
    """Acceptance gate: the multi-tenant router consolidation claim (3.)."""
    from repro.evaluation.multitenant_study import multitenant_rows, multitenant_study

    study = multitenant_study(num_requests=60)
    print()
    print(format_table(
        multitenant_rows(study),
        title=f"Multi-tenant serving — consolidated "
              f"{study['speedup_vs_worst_isolated']}x worst isolated "
              f"({study['worst_isolated']})",
    ))
    assert study["bit_identical"], (
        "cross-tenant corruption: consolidated per-request rows differ from "
        "each endpoint served in isolation"
    )
    for row in multitenant_rows(study):
        assert row["block_cache_hit_rate"] > 0, (
            f"endpoint {row['endpoint']} never hit its block cache on a hot-seed stream"
        )
    # Every tenant appears in the shared budget's books.
    tenants = study["arena_budget"]["tenants"]
    assert set(tenants) == {row["endpoint"] for row in multitenant_rows(study)}
    assert all(stats["misses"] >= 1 for stats in tenants.values())
    # The headline compares the mixed aggregate against the worst tenant, so
    # tenant heterogeneity alone lifts it; this floor catches the failure
    # mode that comparison cannot — a scheduler/memory regression uniformly
    # slowing every tenant's own service rate under consolidation.
    for row in multitenant_rows(study):
        assert row["consolidation_ratio"] >= 0.6, (
            f"endpoint {row['endpoint']} serves at {row['consolidation_ratio']}x "
            "its isolated rate under consolidation"
        )
    assert study["speedup_vs_worst_isolated"] >= 1.5, (
        f"consolidation regressed: {study['speedup_vs_worst_isolated']}x < 1.5x "
        f"over the worst isolated engine ({study['worst_isolated']})"
    )


@pytest.mark.smoke
def test_four_workers_double_throughput_with_bit_identical_results():
    """Acceptance gate: 4 executor workers sustain ≥ 2× the throughput of one
    worker on a mixed 4-endpoint stream, with per-request results
    bit-identical to single-threaded serving.

    Throughput is the virtual-time makespan of the parallel schedule with
    CPU-exclusive per-batch service times (``time.thread_time``) — the same
    modelled-aggregate convention as the scaling study, so the gate holds on
    single-CPU CI hosts where wall-clock thread overlap is impossible.
    """
    import time

    from repro.evaluation.saturation_study import (
        build_router,
        compile_tenants,
        mixed_stream,
        tenant_graphs,
    )

    graphs = tenant_graphs()
    modules = compile_tenants(graphs)
    stream = mixed_stream(graphs, 96, seed=17)  # burst: every lane contended
    served = {}
    metrics = {}
    for workers in (1, 4):
        router = build_router(modules, graphs, num_workers=workers)
        router.serve(stream, timer=time.thread_time)
        served[workers] = router.last_served
        metrics[workers] = router.last_serve_metrics

    assert len(served[1]) == len(served[4]) == len(stream)
    for single, pooled in zip(served[1], served[4]):
        assert single.result is not None and pooled.result is not None
        np.testing.assert_array_equal(single.result, pooled.result)

    speedup = metrics[1]["makespan_s"] / max(metrics[4]["makespan_s"], 1e-12)
    print()
    print(format_table(
        [{"workers": w, **metrics[w]} for w in (1, 4)],
        title=f"Executor pool scaling — modelled speedup {speedup:.2f}x",
    ))
    assert speedup >= 2.0, (
        f"4 workers sustain only {speedup:.2f}x the single-worker throughput "
        "on a 4-endpoint mixed stream (expected >= 2x)"
    )


@pytest.mark.smoke
def test_overload_sheds_instead_of_queueing_and_stays_fair():
    """Acceptance gate: past the capacity knee, p99 latency of *admitted*
    requests stays bounded (the shed rate rises instead), queues never exceed
    their bound, and WRR fairness ratios hold within 20%."""
    from repro.evaluation.saturation_study import saturation_rows, saturation_study

    study = saturation_study()
    rows = saturation_rows(study)
    print()
    print(format_table(
        rows,
        title=f"Saturation sweep — capacity {study['capacity_rps']} rps, "
              f"deadline {study['deadline_ms']} ms, queue depth {study['max_queue_depth']}",
    ))
    below_knee = rows[0]
    past_knee = [row for row in rows if row["multiplier"] >= 2.0]
    assert below_knee["shed_fraction"] <= 0.05, (
        f"router sheds {below_knee['shed_fraction']} of requests at half capacity"
    )
    assert past_knee, "the sweep never crossed the capacity knee"
    # One batch may still be in service when the deadline expires, so the
    # bound on an admitted request is deadline + a generous service allowance.
    latency_bound_ms = study["deadline_ms"] + 10 * study["mean_service_ms"]
    for row in past_knee:
        assert row["shed_fraction"] > below_knee["shed_fraction"], (
            f"at {row['multiplier']}x capacity the shed rate did not rise: {row}"
        )
        assert row["p99_ms"] <= latency_bound_ms, (
            f"p99 of admitted requests unbounded past the knee: "
            f"{row['p99_ms']} ms > {latency_bound_ms:.1f} ms at {row['multiplier']}x"
        )
        assert row["queue_high_water"] <= study["max_queue_depth"], (
            f"queue depth exceeded its bound: {row}"
        )
        assert row["fairness_worst"] <= 0.2, (
            f"WRR fairness drifted past 20% under overload: {row}"
        )
