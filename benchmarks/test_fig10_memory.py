"""Figure 10: memory footprint of HGT with and without compact materialization."""

import pytest

from repro.evaluation import memory_footprint_study
from repro.evaluation.reporting import format_table


@pytest.mark.smoke
def test_fig10_memory_footprint(benchmark):
    rows = benchmark(memory_footprint_study)
    print()
    print(format_table(
        rows,
        columns=["dataset", "num_edges", "average_degree", "entity_compaction_ratio",
                 "inference_mem_mib", "training_mem_mib",
                 "inference_compact_fraction", "training_compact_fraction"],
        title="Figure 10 — HGT memory footprint and the effect of compact materialization",
    ))
    assert len(rows) == 8
    for row in rows:
        # Compaction never increases the footprint, and the remaining fraction
        # is at least the entity compaction ratio (weights and node data are
        # not compacted).
        assert row["inference_compact_fraction"] <= 1.0
        assert row["inference_compact_fraction"] >= row["entity_compaction_ratio"] - 0.05
        assert row["training_mem_mib"] > row["inference_mem_mib"]
    # Memory use is roughly proportional to the edge count: the largest graph
    # uses the most memory.
    largest = max(rows, key=lambda r: r["num_edges"])
    assert largest["inference_mem_mib"] == max(r["inference_mem_mib"] for r in rows)
