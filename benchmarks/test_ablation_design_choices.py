"""Ablations of design choices called out in DESIGN.md.

* GEMM-template-first lowering vs lowering everything to traversal kernels
  (the Seastar-style strategy the paper argues against).
* Kernel fusion in the traversal template on vs off.
* One segmented kernel across relation types vs one kernel launch per relation
  (the source of Hector's advantage on small graphs).
"""

import pytest

from repro.baselines.base import gemm_work, per_relation_gemm_works
from repro.baselines.hector_system import HECTOR_HOST_OVERHEAD_US, HectorSystem
from repro.evaluation.reporting import format_table
from repro.evaluation.workload import WorkloadSpec
from repro.frontend.config import CompilerOptions
from repro.gpu.costmodel import estimate_execution, kernel_work_from_instance


def _hector_time(workload, model="rgat", training=False, **option_overrides):
    system = HectorSystem(CompilerOptions(**option_overrides))
    works = system.works(model, workload, training)
    return estimate_execution(works, framework_overhead_per_op_us=HECTOR_HOST_OVERHEAD_US).total_time_ms


def test_ablation_gemm_vs_traversal_lowering(benchmark):
    """Lowering typed linear layers to GEMM beats executing them as traversal work."""
    workload = WorkloadSpec.from_dataset("fb15k")

    def run():
        system = HectorSystem(CompilerOptions())
        works = [kernel_work_from_instance(k, workload)
                 for k in system.compiled("rgat", 64, 64).plan.forward_kernels]
        gemm_time = estimate_execution(works, framework_overhead_per_op_us=HECTOR_HOST_OVERHEAD_US).total_time_ms
        demoted = []
        for work in works:
            work = type(work)(**{**work.__dict__})
            if work.category == "gemm":
                work.category = "traversal"
            demoted.append(work)
        traversal_time = estimate_execution(
            demoted, framework_overhead_per_op_us=HECTOR_HOST_OVERHEAD_US
        ).total_time_ms
        return {"gemm_lowering_ms": gemm_time, "traversal_only_ms": traversal_time}

    result = benchmark(run)
    print()
    print(format_table([result], title="Ablation — GEMM-template lowering vs traversal-only lowering (RGAT, fb15k)"))
    assert result["gemm_lowering_ms"] < result["traversal_only_ms"]


@pytest.mark.smoke
def test_ablation_kernel_fusion(benchmark):
    """Fusing adjacent traversal operators reduces launches and end-to-end time."""
    workload = WorkloadSpec.from_dataset("aifb")

    def run():
        fused = _hector_time(workload, enable_fusion=True)
        unfused = _hector_time(workload, enable_fusion=False)
        return {"fused_ms": fused, "unfused_ms": unfused}

    result = benchmark(run)
    print()
    print(format_table([result], title="Ablation — traversal kernel fusion (RGAT, aifb)"))
    assert result["fused_ms"] <= result["unfused_ms"]


def test_ablation_single_kernel_vs_per_relation_launches(benchmark):
    """One segmented GEMM beats per-relation kernel launches, most on many-relation graphs."""
    rows = []

    def run():
        rows.clear()
        for dataset in ("aifb", "fb15k", "mag"):
            workload = WorkloadSpec.from_dataset(dataset)
            segmented = estimate_execution(
                [gemm_work("typed_linear", workload.num_edges, 64, 64,
                           num_weight_slices=workload.num_edge_types, gathered=True)],
                framework_overhead_per_op_us=HECTOR_HOST_OVERHEAD_US,
            ).total_time_ms
            per_relation = estimate_execution(
                per_relation_gemm_works("typed_linear", workload.relation_edge_counts, 64, 64),
                framework_overhead_per_op_us=35.0,
            ).total_time_ms
            rows.append({
                "dataset": dataset,
                "num_relations": workload.num_edge_types,
                "segmented_ms": segmented,
                "per_relation_ms": per_relation,
                "speedup": per_relation / segmented,
            })
        return rows

    result = benchmark(run)
    print()
    print(format_table(result, title="Ablation — single segmented GEMM vs per-relation kernel launches"))
    by_name = {row["dataset"]: row for row in result}
    # Graphs with many relations benefit enormously; with only 4 large
    # relations (mag) the two strategies are essentially tied.
    assert by_name["aifb"]["speedup"] > 10.0
    assert by_name["fb15k"]["speedup"] > 10.0
    assert by_name["mag"]["speedup"] > 0.9
    # The advantage grows with the number of relations (small relations => tiny kernels).
    assert by_name["fb15k"]["speedup"] > by_name["mag"]["speedup"]
