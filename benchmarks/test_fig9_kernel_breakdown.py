"""Figure 9: Hector RGAT inference time split by kernel category under U/C/R/C+R."""

import pytest

from repro.evaluation import hector_kernel_breakdown
from repro.evaluation.reporting import format_table


@pytest.mark.smoke
def test_fig9_hector_kernel_breakdown(benchmark):
    rows = benchmark(hector_kernel_breakdown)
    print()
    print(format_table(
        rows,
        columns=["dataset", "config", "gemm_ms", "traversal_ms", "others_ms", "total_ms", "status"],
        title="Figure 9 — Hector RGAT inference breakdown (AM, FB15k) by kernel category",
    ))
    assert len(rows) == 8  # 2 datasets × 4 configurations
    for dataset in ("am", "fb15k"):
        unopt = next(r for r in rows if r["dataset"] == dataset and r["config"] == "U")
        compact = next(r for r in rows if r["dataset"] == dataset and r["config"] == "C")
        # Compaction reduces the GEMM share (fewer rows to project).
        assert compact["gemm_ms"] < unopt["gemm_ms"]
    # AM compacts better than FB15k in relative GEMM terms only when its
    # compaction ratio is lower; the paper observes the larger GEMM reduction
    # on AM.  Check both see a reduction and the combined config is fastest
    # or tied on each dataset.
    for dataset in ("am", "fb15k"):
        subset = [r for r in rows if r["dataset"] == dataset]
        best = min(subset, key=lambda r: r["total_ms"])
        assert best["config"] in ("C", "C+R")
