"""Scaling benchmarks: the acceptance gates of data-parallel sharded training.

Two claims are gated here:

1. **Aggregate throughput scales** — on the dispatch-bound cell (many tiny
   typed edge groups, where per-minibatch Python dispatch dominates), the
   modelled aggregate throughput of 4 in-process shards — total seeds over
   the critical path of slowest-shard busy CPU time plus collective reduce
   time — is at least 1.8x the 1-worker run of the *same* sharded code path.
2. **Scaling changes nothing numerically** — every worker count in the sweep
   lands on the identical final loss (the bit-identity lockdown of
   ``tests/test_sharded_training.py``, visible end to end through the study).
"""

import pytest

from repro.evaluation.reporting import format_table
from repro.evaluation.scaling_study import scaling_rows, scaling_study

#: Minimum modelled aggregate speedup of 4 in-process shards over 1 worker.
MIN_4_SHARD_SPEEDUP = 1.8


@pytest.mark.smoke
def test_four_shard_aggregate_throughput_gate():
    """Acceptance gate: >= 1.8x aggregate seeds/s at 4 shards vs 1 worker."""
    study = scaling_study(model="rgcn", worker_counts=(1, 4), epochs=2, batch_size=10)
    print()
    print(format_table(scaling_rows(study),
                       title=f"Scaling — {study['model']} on {study['graph']}"))
    speedup = study["aggregate_speedups"][4]
    assert speedup >= MIN_4_SHARD_SPEEDUP, (
        f"4-shard aggregate speedup {speedup}x below the {MIN_4_SHARD_SPEEDUP}x gate"
    )
    assert study["losses_identical"], (
        "worker counts diverged in final loss — bit-identity broken in the study path"
    )


@pytest.mark.smoke
def test_scaling_sweep_is_numerically_invariant():
    """Every worker count of the full sweep lands on the same final loss."""
    study = scaling_study(model="rgcn", worker_counts=(1, 2, 4, 8), epochs=1, batch_size=10)
    losses = [row["final_loss"] for row in study["rows"]]
    assert len(set(losses)) == 1, f"losses diverged across worker counts: {losses}"
    for row in study["rows"]:
        assert row["all_reduce_ops"] > 0
