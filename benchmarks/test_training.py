"""Training benchmarks: the acceptance gates of the ``repro.train`` subsystem.

Two claims are gated here:

1. **Loss parity under sampling** — on the citation workload, minibatch SGD
   over fanout-capped sampled blocks reaches training loss at least as good
   as full-graph training under the same model, initial parameters,
   optimizer, and epoch budget (sampling trades exact gradients for
   per-epoch block work, not for convergence), and both regimes improve on
   their initial loss.
2. **Per-hop execution never does more aggregation work** — executing an
   L-layer stack layer-by-hop over per-hop blocks processes, at every layer,
   no more edges than running that layer over the merged block, with strict
   savings on the seed-side layer (the comparison is edge-for-edge fair:
   both samples share one epoch's draw memo under a uniform fanout).
"""

import pytest

from repro.evaluation.reporting import format_table
from repro.evaluation.training_study import (
    perhop_work_study,
    training_rows,
    training_study,
)

#: Sampled training may not end worse than full-graph training by more than
#: this absolute cross-entropy slack (in practice it ends far *better*: it
#: takes many more optimizer steps per epoch).
LOSS_PARITY_SLACK = 0.25


@pytest.mark.smoke
def test_sampled_minibatch_training_reaches_full_graph_loss_parity():
    """Acceptance gate: sampled-fanout training parity with full-graph."""
    study = training_study(model="rgat", epochs=6, batch_size=32, fanout=8)
    print()
    print(format_table(training_rows(study),
                       title=f"Training — {study['model']} on {study['graph']}"))
    assert study["both_losses_improved"], "training failed to reduce loss"
    assert study["sampled_final_loss"] <= study["full_final_loss"] + LOSS_PARITY_SLACK, (
        f"sampled training ended at {study['sampled_final_loss']} vs full-graph "
        f"{study['full_final_loss']} (slack {LOSS_PARITY_SLACK})"
    )


@pytest.mark.smoke
def test_per_hop_execution_does_no_more_aggregation_work_than_merged():
    """Acceptance gate: per-layer per-hop work ≤ merged-block work, with
    strict savings on the seed-side layer."""
    study = perhop_work_study(model="rgcn", num_layers=2, fanout=8)
    print()
    print(format_table(study["rows"],
                       title=f"Per-hop vs merged work — {study['num_layers']}-layer "
                             f"{study['model']}, fanout {study['fanout']}"))
    assert study["no_layer_does_more_work"], study["rows"]
    inner = study["rows"][-1]
    assert inner["per_hop_edges"] < inner["merged_edges"], (
        "the seed-side layer should aggregate over strictly fewer edges than "
        "the merged block"
    )
    assert study["aggregation_savings"] > 0.0


def test_per_hop_savings_grow_with_depth():
    """Three layers pay the merged frontier three times; per-hop pays each
    shrinking frontier once, so savings increase with depth."""
    two = perhop_work_study(model="rgcn", num_layers=2, fanout=6, num_requests=8)
    three = perhop_work_study(model="rgcn", num_layers=3, fanout=6, num_requests=8)
    assert three["aggregation_savings"] >= two["aggregation_savings"], (
        two["aggregation_savings"], three["aggregation_savings"],
    )


def test_full_accumulation_minibatch_epoch_tracks_full_graph_loss():
    """With unbounded fanout and whole-epoch accumulation the minibatch
    trainer follows full-graph training step for step (same mean gradient),
    so their loss curves agree closely epoch over epoch."""
    from repro.evaluation.training_study import DIM, citation_graph
    from repro.frontend.compiler import compile_model
    from repro.graph.generators import random_features, random_labels
    from repro.train import MinibatchTrainer

    graph = citation_graph(max_edges=2000)
    features = random_features(graph, DIM, seed=0)
    labels = random_labels(graph, DIM, seed=1)

    def curve(batch_size):
        module = compile_model("rgcn", graph, in_dim=DIM, out_dim=DIM, seed=0)
        trainer = MinibatchTrainer(
            module, graph, features, labels, optimizer="sgd", lr=0.5,
            batch_size=batch_size, accumulation_steps=None, fanouts=(None,),
        )
        return trainer.train(4).loss_curve()

    full_curve = curve(batch_size=None)
    minibatch_curve = curve(batch_size=64)
    for full, minibatch in zip(full_curve, minibatch_curve):
        assert abs(full - minibatch) < 1e-6, (full_curve, minibatch_curve)
