"""Figure 8: end-to-end training and inference comparison across systems and datasets."""

import pytest

from repro.evaluation import run_full_comparison
from repro.evaluation.reporting import format_table


def _flatten(results):
    rows = []
    for result in results:
        rows.extend(result.as_rows())
    return rows


@pytest.mark.smoke
def test_fig8b_inference_comparison(benchmark):
    results = benchmark(run_full_comparison, modes=("inference",))
    rows = _flatten(results)
    print()
    print(format_table(rows, title="Figure 8(b) — Inference time (ms) per system, model, dataset"))
    # Hector never OOMs with compaction enabled and beats the best baseline everywhere it runs.
    for result in results:
        hector = result.estimates["Hector (C+R)"]
        assert not hector.oom, (result.model, result.dataset)
        ratio = result.hector_speedup("C+R")
        assert ratio is None or ratio > 1.0, (result.model, result.dataset, ratio)


def test_fig8a_training_comparison(benchmark):
    results = benchmark(run_full_comparison, modes=("training",))
    rows = _flatten(results)
    print()
    print(format_table(rows, title="Figure 8(a) — Training time (ms) per system, model, dataset"))
    speedups = [r.hector_speedup("C+R") for r in results if r.hector_speedup("C+R") is not None]
    assert speedups and min(speedups) > 1.0
    # Baselines hit OOM on the large datasets; Hector (C+R) does not.
    baseline_ooms = sum(
        1 for result in results for name, est in result.estimates.items()
        if not name.startswith("Hector") and est.oom
    )
    assert baseline_ooms > 0
