"""Table 1: feature comparison of Hector and prior GNN compilers."""

import pytest

from repro.baselines import feature_table_rows
from repro.evaluation.reporting import format_table


@pytest.mark.smoke
def test_table1_feature_comparison(benchmark):
    rows = benchmark(feature_table_rows)
    print()
    print(format_table(rows, title="Table 1 — Features of Hector and prior GNN compilers"))
    hector = {row["feature"]: row["Hector"] for row in rows}
    assert hector["Target: training"] is True
    assert hector["Design space: data layout"] is True
    assert hector["Design space: intra-operator schedule"] is True
