"""Figure 11: unoptimised Hector performance across feature dimensions 32/64/128."""

import pytest

from repro.evaluation import dimension_sweep
from repro.evaluation.reporting import format_table
from repro.evaluation.sweep import sublinearity_ratios


@pytest.mark.smoke
def test_fig11_dimension_sweep(benchmark):
    rows = benchmark(dimension_sweep)
    print()
    print(format_table(
        rows,
        columns=["model", "dataset", "in_dim", "mode", "time_ms", "status"],
        title="Figure 11 — Hector (unoptimised) time per dataset/model/dimension",
    ))
    assert len(rows) == 3 * 8 * 3 * 2  # models × datasets × dims × modes
    ratios = sublinearity_ratios(rows)
    assert ratios
    # The paper's headline observation: doubling the dimensions (4x the work)
    # increases time sub-linearly (typically < 2x) thanks to better utilisation.
    sub_two = [r for r in ratios if r["time_ratio"] < 2.0]
    assert len(sub_two) >= 0.5 * len(ratios)
    assert all(r["time_ratio"] < 4.0 for r in ratios)
    # Training is slower than inference in every populated cell.
    by_key = {(r["model"], r["dataset"], r["in_dim"], r["mode"]): r["time_ms"] for r in rows}
    for (model, dataset, dim, mode), value in by_key.items():
        if mode == "training" and value is not None:
            inference = by_key.get((model, dataset, dim, "inference"))
            if inference is not None:
                assert value > inference
