"""Figure 3: inference-time breakdown of Graphiler vs Hector (HGT & RGAT, FB15k & MUTAG)."""

import pytest

from repro.evaluation import inference_time_breakdown
from repro.evaluation.reporting import format_table


@pytest.mark.smoke
def test_fig3_inference_time_breakdown(benchmark):
    rows = benchmark(inference_time_breakdown)
    print()
    print(format_table(rows, title="Figure 3 — Inference-time breakdown (ms), Graphiler vs Hector"))
    assert len(rows) == 8  # 2 models × 2 datasets × 2 systems
    for dataset in ("fb15k", "mutag"):
        for model in ("HGT", "RGAT"):
            hector = next(r for r in rows if r["system"] == "Hector" and r["dataset"] == dataset
                          and r["model"] == model)
            graphiler = next(r for r in rows if r["system"] == "Graphiler" and r["dataset"] == dataset
                             and r["model"] == model)
            # Hector eliminates dedicated indexing/copy kernels and is faster overall.
            assert hector["indexing_copy_ms"] == 0.0
            assert graphiler["indexing_copy_ms"] > 0.0
            assert hector["total_ms"] < graphiler["total_ms"]
