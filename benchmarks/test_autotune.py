"""Autotuned vs. fixed-configuration ablation across the Figure 8 suite.

The acceptance bar for the tuner: on every model × dataset cell the
autotuned configuration is never slower (cost-model time) than the default
``CompilerOptions()``, never slower than the best fixed configuration, and
strictly beats the best fixed configuration somewhere — i.e. the extra
design-space axes (fusion, schedules) buy real headroom beyond U/C/R/C+R.
"""

import pytest

from repro.evaluation import autotune_rows, autotune_study
from repro.evaluation.reporting import format_table

#: Fractional tolerance for "never slower" (float noise only).
EPS = 1e-9


def _assert_auto_dominates(cells):
    for cell in cells:
        if cell.default_ms is not None:
            assert cell.auto_ms <= cell.default_ms * (1 + EPS), (
                cell.model, cell.dataset, cell.mode, "slower than default")
        if cell.best_fixed_ms is not None:
            assert cell.auto_ms <= cell.best_fixed_ms * (1 + EPS), (
                cell.model, cell.dataset, cell.mode, "slower than best fixed")
    assert any(
        cell.best_fixed_ms is not None and cell.auto_ms < cell.best_fixed_ms * (1 - 1e-6)
        for cell in cells
    ), "autotuning never beat the best fixed configuration anywhere"


@pytest.mark.smoke
def test_autotuned_vs_fixed_inference(benchmark):
    cells = benchmark(autotune_study, mode="inference")
    print()
    print(format_table(
        autotune_rows(cells),
        title="Autotuned vs fixed configurations — inference (cost-model ms)",
    ))
    _assert_auto_dominates(cells)


def test_autotuned_vs_fixed_training(benchmark):
    cells = benchmark(autotune_study, mode="training")
    print()
    print(format_table(
        autotune_rows(cells),
        title="Autotuned vs fixed configurations — training (cost-model ms)",
    ))
    _assert_auto_dominates(cells)
    # The unoptimised configuration OOMs somewhere in training (Section 4.2);
    # the tuner routes around it with compact materialization.
    assert any(cell.default_ms is None for cell in cells)


def test_exhaustive_search_never_loses_to_staged():
    staged = autotune_study(models=["rgat"], datasets=["bgs", "mag"], search="staged")
    exhaustive = autotune_study(models=["rgat"], datasets=["bgs", "mag"], search="exhaustive")
    for quick, full in zip(staged, exhaustive):
        assert full.auto_ms <= quick.auto_ms * (1 + EPS)
        assert full.candidates_evaluated >= quick.candidates_evaluated
