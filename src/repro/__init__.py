"""Reproduction of Hector (ASPLOS 2024): a two-level IR and code-generation
framework for relational graph neural networks.

Public entry points:

* :func:`repro.compile_model` / :func:`repro.compile_program` — compile an
  RGNN (RGCN, RGAT, HGT) into a schema-specialised module rebindable across
  graphs sharing the schema (``module.bind(graph)``).
* :mod:`repro.graph` — heterogeneous graph substrate, the Table 3 datasets,
  and the minibatch block sampler (:mod:`repro.graph.sampler`).
* :class:`repro.Router` (from :mod:`repro.serving`) — multi-tenant serving:
  named endpoints, async admission, event-loop scheduling with weighted
  round-robin fairness, and a shared cross-tenant arena budget.
* :class:`repro.MinibatchTrainer` (from :mod:`repro.train`) — sampled-block
  minibatch training: shuffled seed minibatches, per-hop or merged blocks,
  gradient accumulation across bindings, :mod:`repro.tensor.optim` steps.
* :class:`repro.ShardedTrainer` (from :mod:`repro.train.distributed`) —
  data-parallel sharded training over pluggable collectives (in-process
  threads or shared-memory processes), bit-identical to one worker.
* :class:`repro.MultiLayerModule` (from :mod:`repro.runtime`) — L-layer
  stacks executed full-graph, over merged blocks, or layer-by-hop.
* :mod:`repro.tensor` — the numpy autograd tensor substrate.
* :mod:`repro.ir` — the two-level IR, passes, templates, and code generator.
* :func:`repro.get_backend` / :func:`repro.register_backend` /
  :func:`repro.available_backends` (from :mod:`repro.ir.codegen.registry`) —
  the pluggable execution-backend registry behind
  ``CompilerOptions(backend=...)``: ``python-interp`` (per-kernel functions),
  ``python-codegen`` (one specialised whole-plan source function, compiled
  once), and ``cuda-emit`` (source emission only).
* :mod:`repro.gpu` — the analytical GPU cost model (RTX 3090 stand-in).
* :mod:`repro.baselines` — models of DGL, PyG, Seastar, Graphiler, and HGL.
* :mod:`repro.evaluation` — the harness reproducing every table and figure.
"""

from repro.frontend import CompilerOptions, compile_model, compile_program, hector_compile
from repro.ir.codegen.registry import Backend, available_backends, get_backend, register_backend
from repro.runtime import MultiLayerModule
from repro.serving import Router, ServingEngine
from repro.train import MinibatchTrainer, ShardedTrainer

__version__ = "1.7.0"

__all__ = [
    "Backend",
    "CompilerOptions",
    "available_backends",
    "compile_model",
    "compile_program",
    "get_backend",
    "hector_compile",
    "register_backend",
    "Router",
    "ServingEngine",
    "MinibatchTrainer",
    "ShardedTrainer",
    "MultiLayerModule",
    "__version__",
]
