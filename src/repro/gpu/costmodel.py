"""Roofline + launch-overhead kernel cost model.

Every kernel — whether produced by Hector's code generator or by a baseline
system simulator — is summarised as a :class:`KernelWork` record (FLOPs, bytes
moved, launches, category, atomic/outer-product flags, grid occupancy hints).
A kernel's time is the maximum of its compute time and memory time, scaled by
an occupancy-dependent efficiency (small grids underutilise the GPU, which is
what makes per-relation-loop baselines slow on small graphs), plus the launch
latency of every kernel it issues; framework operator overhead is added per
host-side operator call for eager systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.gpu.device import DeviceSpec, RTX_3090
from repro.ir.intra_op.kernels import GemmKernel, KernelInstance, TraversalKernel


@dataclass
class KernelWork:
    """Device work of one kernel (or one launch group of identical kernels).

    Attributes:
        name: kernel label (for breakdowns).
        category: ``"gemm"``, ``"traversal"``, ``"fallback"``, or a baseline
            label such as ``"index_copy"``.
        flops: floating-point operations.
        bytes_read / bytes_written: global memory traffic.
        launches: number of device kernel launches issued.
        host_ops: number of framework-level operator calls on the host.
        rows / cols: output tile extents used for the occupancy estimate.
        uses_atomics: dominated by atomic updates.
        has_outer_product: per-type outer-product accumulation (weight grads).
        direction: ``"forward"`` or ``"backward"``.
    """

    name: str
    category: str
    flops: float
    bytes_read: float
    bytes_written: float
    launches: int = 1
    host_ops: int = 1
    rows: int = 1
    cols: int = 64
    uses_atomics: bool = False
    has_outer_product: bool = False
    direction: str = "forward"

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of global traffic."""
        return self.flops / max(self.bytes_total, 1.0)


@dataclass
class KernelTime:
    """Time estimate of one :class:`KernelWork`."""

    work: KernelWork
    compute_time: float
    memory_time: float
    launch_time: float
    total_time: float

    @property
    def bound(self) -> str:
        """Which resource bounds the kernel (``compute`` / ``memory`` / ``latency``)."""
        body = max(self.compute_time, self.memory_time)
        if self.launch_time > body:
            return "latency"
        return "compute" if self.compute_time >= self.memory_time else "memory"


@dataclass
class ExecutionEstimate:
    """Aggregate time estimate of a kernel sequence."""

    kernel_times: List[KernelTime]
    framework_overhead: float

    @property
    def device_time(self) -> float:
        return sum(k.total_time for k in self.kernel_times)

    @property
    def total_time(self) -> float:
        """End-to-end time including host framework overhead (seconds)."""
        return self.device_time + self.framework_overhead

    @property
    def total_time_ms(self) -> float:
        return self.total_time * 1e3

    def time_by_category(self) -> dict:
        """Total seconds per kernel category (for Figures 3 and 9)."""
        result: dict = {}
        for kernel_time in self.kernel_times:
            category = kernel_time.work.category
            result[category] = result.get(category, 0.0) + kernel_time.total_time
        if self.framework_overhead:
            result["host_overhead"] = result.get("host_overhead", 0.0) + self.framework_overhead
        return result

    def num_launches(self) -> int:
        return sum(k.work.launches for k in self.kernel_times)


# ----------------------------------------------------------------------
# efficiency model
# ----------------------------------------------------------------------
def _occupancy(work: KernelWork, device: DeviceSpec, tile: int = 16) -> float:
    """Fraction of the GPU the kernel's grid can keep busy.

    Small output grids (few rows × few columns) launch too few thread blocks
    to fill the SMs — the effect behind the paper's observation that
    throughput rises with graph and feature size (Figure 11/12) and that
    per-relation kernels underutilise the device.
    """
    blocks = max(1.0, (work.rows / tile)) * max(1.0, (work.cols / tile))
    # Keeping every SM busy requires a few blocks per SM.
    needed = device.sm_count * 3.0
    return min(1.0, blocks / needed)


def _base_efficiency(work: KernelWork) -> float:
    """Peak fraction achievable by a fully occupied kernel of this category."""
    if work.category == "gemm":
        return 0.65
    if work.category == "fallback":
        return 0.35
    return 0.18  # traversal / sparse / elementwise kernels


def estimate_kernel_time(work: KernelWork, device: DeviceSpec = RTX_3090) -> KernelTime:
    """Estimate the execution time of one kernel-work record."""
    efficiency = _base_efficiency(work) * _occupancy(work, device)
    efficiency = max(efficiency, 0.01)
    compute_time = work.flops / (device.peak_flops * efficiency)
    memory_efficiency = max(0.25, min(1.0, 0.55 + 0.45 * _occupancy(work, device)))
    memory_time = work.bytes_total / (device.dram_bandwidth * memory_efficiency)
    body = max(compute_time, memory_time)
    if work.uses_atomics:
        body *= device.atomic_penalty
    if work.has_outer_product:
        body *= device.outer_product_penalty
    launch_time = work.launches * device.kernel_launch_overhead_us * 1e-6
    return KernelTime(
        work=work,
        compute_time=compute_time,
        memory_time=memory_time,
        launch_time=launch_time,
        total_time=body + launch_time,
    )


def estimate_execution(
    works: Sequence[KernelWork],
    device: DeviceSpec = RTX_3090,
    framework_overhead_per_op_us: Optional[float] = None,
) -> ExecutionEstimate:
    """Estimate the time of a kernel sequence plus host framework overhead.

    Args:
        works: kernel work records in launch order.
        device: device description.
        framework_overhead_per_op_us: host overhead per operator call; when
            ``None`` the device default is used (eager frameworks); pass a
            smaller value for compiled systems that avoid per-op dispatch.
    """
    per_op = (
        device.framework_op_overhead_us
        if framework_overhead_per_op_us is None
        else framework_overhead_per_op_us
    )
    kernel_times = [estimate_kernel_time(work, device) for work in works]
    framework_overhead = sum(w.host_ops for w in works) * per_op * 1e-6
    return ExecutionEstimate(kernel_times=kernel_times, framework_overhead=framework_overhead)


# ----------------------------------------------------------------------
# bridging Hector kernel instances to work records
# ----------------------------------------------------------------------
def kernel_work_from_instance(kernel: KernelInstance, workload) -> KernelWork:
    """Convert a generated kernel instance into a cost-model work record."""
    rows = kernel.rows(workload)
    if isinstance(kernel, GemmKernel):
        cols = kernel.n_dim
    elif isinstance(kernel, TraversalKernel):
        cols = max(workload.out_dim, 1)
    else:
        cols = max(workload.out_dim, 1)
    return KernelWork(
        name=kernel.name,
        category=kernel.category,
        flops=kernel.flops(workload),
        bytes_read=kernel.bytes_read(workload),
        bytes_written=kernel.bytes_written(workload),
        launches=kernel.launches(workload),
        host_ops=1,
        rows=rows,
        cols=cols,
        uses_atomics=kernel.uses_atomics,
        has_outer_product=kernel.has_outer_product,
        direction=kernel.direction,
    )


def plan_execution_estimate(
    plan,
    workload,
    device: DeviceSpec = RTX_3090,
    training: bool = False,
    framework_overhead_per_op_us: float = 4.0,
) -> ExecutionEstimate:
    """Estimate the execution time of a Hector kernel plan.

    Hector's generated host code launches precompiled kernels directly, so its
    per-operator host overhead is small compared to eager frameworks; the
    default of a few microseconds reflects that.
    """
    kernels = plan.kernels("all" if training else "forward")
    works = [kernel_work_from_instance(kernel, workload) for kernel in kernels]
    return estimate_execution(works, device, framework_overhead_per_op_us)
