"""Roofline + launch-overhead kernel cost model.

Every kernel — whether produced by Hector's code generator or by a baseline
system simulator — is summarised as a :class:`KernelWork` record (FLOPs, bytes
moved, launches, category, atomic/outer-product flags, grid occupancy hints).
A kernel's time is the maximum of its compute time and memory time, scaled by
an occupancy-dependent efficiency (small grids underutilise the GPU, which is
what makes per-relation-loop baselines slow on small graphs), plus the launch
latency of every kernel it issues; framework operator overhead is added per
host-side operator call for eager systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.gpu.device import DeviceSpec, RTX_3090
from repro.ir.intra_op.kernels import GemmKernel, KernelInstance, TraversalKernel
from repro.ir.intra_op.schedule import GemmSchedule, TraversalSchedule

#: The schedule points every efficiency factor is normalised against — by
#: construction the default schedules always map to a factor of exactly 1.0,
#: keeping untuned plans and baseline estimates bit-identical to the paper
#: figures even if the dataclass defaults ever move.
_DEFAULT_GEMM_SCHEDULE = GemmSchedule()
_DEFAULT_TRAVERSAL_SCHEDULE = TraversalSchedule()


@dataclass
class KernelWork:
    """Device work of one kernel (or one launch group of identical kernels).

    Attributes:
        name: kernel label (for breakdowns).
        category: ``"gemm"``, ``"traversal"``, ``"fallback"``, or a baseline
            label such as ``"index_copy"``.
        flops: floating-point operations.
        bytes_read / bytes_written: global memory traffic.
        launches: number of device kernel launches issued.
        host_ops: number of framework-level operator calls on the host.
        rows / cols: output tile extents used for the occupancy estimate.
        uses_atomics: issues atomic updates.
        atomic_fraction: fraction of the kernel's work subject to the atomic
            penalty.  ``1.0`` (the default, and the behaviour for every
            hand-described baseline kernel) penalises the whole body; fused
            traversal kernels that mix atomic and non-atomic micro-ops carry
            the atomic share of their statements, so fusing a non-atomic
            kernel into an atomic one is never modeled as making the
            non-atomic work slower.
        has_outer_product: per-type outer-product accumulation (weight grads).
        direction: ``"forward"`` or ``"backward"``.
        schedule_efficiency: multiplicative throughput factor of the kernel's
            intra-op schedule *relative to the default schedule* (see
            :func:`schedule_efficiency_factor`).  Exactly ``1.0`` for the
            default schedules, so estimates of untuned plans and baseline
            simulators are unchanged; the autotuner explores the factor.
    """

    name: str
    category: str
    flops: float
    bytes_read: float
    bytes_written: float
    launches: int = 1
    host_ops: int = 1
    rows: int = 1
    cols: int = 64
    uses_atomics: bool = False
    atomic_fraction: float = 1.0
    has_outer_product: bool = False
    direction: str = "forward"
    schedule_efficiency: float = 1.0

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of global traffic."""
        return self.flops / max(self.bytes_total, 1.0)


@dataclass
class KernelTime:
    """Time estimate of one :class:`KernelWork`."""

    work: KernelWork
    compute_time: float
    memory_time: float
    launch_time: float
    total_time: float

    @property
    def bound(self) -> str:
        """Which resource bounds the kernel (``compute`` / ``memory`` / ``latency``)."""
        body = max(self.compute_time, self.memory_time)
        if self.launch_time > body:
            return "latency"
        return "compute" if self.compute_time >= self.memory_time else "memory"


@dataclass
class ExecutionEstimate:
    """Aggregate time estimate of a kernel sequence."""

    kernel_times: List[KernelTime]
    framework_overhead: float

    @property
    def device_time(self) -> float:
        return sum(k.total_time for k in self.kernel_times)

    @property
    def total_time(self) -> float:
        """End-to-end time including host framework overhead (seconds)."""
        return self.device_time + self.framework_overhead

    @property
    def total_time_ms(self) -> float:
        return self.total_time * 1e3

    def time_by_category(self) -> dict:
        """Total seconds per kernel category (for Figures 3 and 9)."""
        result: dict = {}
        for kernel_time in self.kernel_times:
            category = kernel_time.work.category
            result[category] = result.get(category, 0.0) + kernel_time.total_time
        if self.framework_overhead:
            result["host_overhead"] = result.get("host_overhead", 0.0) + self.framework_overhead
        return result

    def num_launches(self) -> int:
        return sum(k.work.launches for k in self.kernel_times)


# ----------------------------------------------------------------------
# efficiency model
# ----------------------------------------------------------------------
def _occupancy(work: KernelWork, device: DeviceSpec, tile: int = 16) -> float:
    """Fraction of the GPU the kernel's grid can keep busy.

    Small output grids (few rows × few columns) launch too few thread blocks
    to fill the SMs — the effect behind the paper's observation that
    throughput rises with graph and feature size (Figure 11/12) and that
    per-relation kernels underutilise the device.
    """
    blocks = max(1.0, (work.rows / tile)) * max(1.0, (work.cols / tile))
    # Keeping every SM busy requires a few blocks per SM.
    needed = device.sm_count * 3.0
    return min(1.0, blocks / needed)


def _base_efficiency(work: KernelWork) -> float:
    """Peak fraction achievable by a fully occupied kernel of this category."""
    if work.category == "gemm":
        return 0.65
    if work.category == "fallback":
        return 0.35
    return 0.18  # traversal / sparse / elementwise kernels


def _needed_blocks(device: DeviceSpec) -> float:
    """Thread blocks needed to keep every SM busy (≈3 resident blocks per SM)."""
    return device.sm_count * 3.0


#: Shared-memory reuse factor of the GEMM template per tile width, relative to
#: the default 16×16 tile: smaller tiles re-read operands more often, larger
#: tiles amortise better (until occupancy pushes back, handled separately).
_GEMM_TILE_REUSE = {8: 0.90, 16: 1.0, 32: 1.06}

#: ILP gain of thread coarsening on large grids / parallelism loss on small ones.
_COARSEN_GAIN = {1: 1.0, 2: 1.04, 4: 1.06}
_COARSEN_LOSS = {1: 1.0, 2: 0.96, 4: 0.90}


def gemm_schedule_efficiency(
    schedule, rows: int, cols: int, device: DeviceSpec = RTX_3090
) -> float:
    """Throughput factor of a GEMM schedule relative to the default schedule.

    Larger tiles improve shared-memory reuse but launch fewer, fatter blocks
    (hurting occupancy on small grids); coarsening adds per-thread ILP on
    large grids and starves parallelism on small ones.  Normalised so the
    default ``GemmSchedule()`` maps to exactly 1.0 on every grid and device.
    """
    def blocks(tile: int) -> float:
        return max(1.0, rows / tile) * max(1.0, cols / tile)

    def occupancy(tile: int) -> float:
        return min(1.0, blocks(tile) / _needed_blocks(device))

    default_tile = _DEFAULT_GEMM_SCHEDULE.tile_size
    reuse = _GEMM_TILE_REUSE.get(schedule.tile_size, 1.0) / _GEMM_TILE_REUSE.get(default_tile, 1.0)
    fill = min(1.0, rows / schedule.tile_size) * min(1.0, cols / schedule.tile_size)
    default_fill = min(1.0, rows / default_tile) * min(1.0, cols / default_tile)
    factor = reuse * (occupancy(schedule.tile_size) / occupancy(default_tile)) * (fill / default_fill)
    large_grid = rows * cols >= 1 << 18
    coarsen = _COARSEN_GAIN if large_grid else _COARSEN_LOSS
    factor *= coarsen.get(schedule.coarsening, 1.0) / coarsen.get(_DEFAULT_GEMM_SCHEDULE.coarsening, 1.0)
    return max(factor, 0.05)


def traversal_schedule_efficiency(
    schedule, rows: int, uses_atomics: bool, device: DeviceSpec = RTX_3090
) -> float:
    """Throughput factor of a traversal schedule relative to the default.

    Fewer rows per block means more blocks (better occupancy on small
    domains) but more per-block setup; skipping partial-result aggregation
    makes atomic kernels issue one atomic per element.  Normalised so the
    default ``TraversalSchedule()`` maps to exactly 1.0 on every domain and
    device.
    """
    def raw(rows_per_block: int) -> float:
        utilization = min(1.0, max(1.0, rows / rows_per_block) / _needed_blocks(device))
        amortization = rows_per_block / (rows_per_block + 4.0)
        return utilization * amortization

    def aggregation_penalty(partial_aggregation: bool) -> float:
        return 1.0 if partial_aggregation or not uses_atomics else 0.75

    factor = raw(schedule.rows_per_block) / raw(_DEFAULT_TRAVERSAL_SCHEDULE.rows_per_block)
    factor *= aggregation_penalty(schedule.partial_aggregation) / aggregation_penalty(
        _DEFAULT_TRAVERSAL_SCHEDULE.partial_aggregation
    )
    return max(factor, 0.05)


def schedule_efficiency_factor(
    kernel: KernelInstance, workload, device: DeviceSpec = RTX_3090
) -> float:
    """Schedule-relative throughput factor of a generated kernel instance."""
    rows = kernel.rows(workload)
    if isinstance(kernel, GemmKernel):
        return gemm_schedule_efficiency(kernel.schedule, rows, kernel.n_dim, device)
    if isinstance(kernel, TraversalKernel):
        return traversal_schedule_efficiency(kernel.schedule, rows, kernel.uses_atomics, device)
    return 1.0


def estimate_kernel_time(work: KernelWork, device: DeviceSpec = RTX_3090) -> KernelTime:
    """Estimate the execution time of one kernel-work record."""
    efficiency = _base_efficiency(work) * _occupancy(work, device)
    efficiency = max(efficiency, 0.01)
    compute_time = work.flops / (device.peak_flops * efficiency)
    memory_efficiency = max(0.25, min(1.0, 0.55 + 0.45 * _occupancy(work, device)))
    memory_time = work.bytes_total / (device.dram_bandwidth * memory_efficiency)
    body = max(compute_time, memory_time)
    if work.uses_atomics:
        fraction = min(max(work.atomic_fraction, 0.0), 1.0)
        body *= (1.0 - fraction) + fraction * device.atomic_penalty
    if work.has_outer_product:
        body *= device.outer_product_penalty
    body /= max(work.schedule_efficiency, 0.05)
    launch_time = work.launches * device.kernel_launch_overhead_us * 1e-6
    return KernelTime(
        work=work,
        compute_time=compute_time,
        memory_time=memory_time,
        launch_time=launch_time,
        total_time=body + launch_time,
    )


def estimate_execution(
    works: Sequence[KernelWork],
    device: DeviceSpec = RTX_3090,
    framework_overhead_per_op_us: Optional[float] = None,
) -> ExecutionEstimate:
    """Estimate the time of a kernel sequence plus host framework overhead.

    Args:
        works: kernel work records in launch order.
        device: device description.
        framework_overhead_per_op_us: host overhead per operator call; when
            ``None`` the device default is used (eager frameworks); pass a
            smaller value for compiled systems that avoid per-op dispatch.
    """
    per_op = (
        device.framework_op_overhead_us
        if framework_overhead_per_op_us is None
        else framework_overhead_per_op_us
    )
    kernel_times = [estimate_kernel_time(work, device) for work in works]
    framework_overhead = sum(w.host_ops for w in works) * per_op * 1e-6
    return ExecutionEstimate(kernel_times=kernel_times, framework_overhead=framework_overhead)


# ----------------------------------------------------------------------
# bridging Hector kernel instances to work records
# ----------------------------------------------------------------------
def kernel_work_from_instance(
    kernel: KernelInstance, workload, device: DeviceSpec = RTX_3090
) -> KernelWork:
    """Convert a generated kernel instance into a cost-model work record.

    ``device`` scopes the schedule-efficiency estimate (block counts needed
    for full occupancy differ per SM count); every other term is sized at
    :func:`estimate_kernel_time` time.
    """
    rows = kernel.rows(workload)
    if isinstance(kernel, GemmKernel):
        cols = kernel.n_dim
    elif isinstance(kernel, TraversalKernel):
        cols = max(workload.out_dim, 1)
    else:
        cols = max(workload.out_dim, 1)
    return KernelWork(
        name=kernel.name,
        category=kernel.category,
        flops=kernel.flops(workload),
        bytes_read=kernel.bytes_read(workload),
        bytes_written=kernel.bytes_written(workload),
        launches=kernel.launches(workload),
        host_ops=1,
        rows=rows,
        cols=cols,
        uses_atomics=kernel.uses_atomics,
        atomic_fraction=(
            kernel.atomic_work_fraction() if isinstance(kernel, TraversalKernel) else 1.0
        ),
        has_outer_product=kernel.has_outer_product,
        direction=kernel.direction,
        schedule_efficiency=schedule_efficiency_factor(kernel, workload, device),
    )


def plan_execution_estimate(
    plan,
    workload,
    device: DeviceSpec = RTX_3090,
    training: bool = False,
    framework_overhead_per_op_us: float = 4.0,
) -> ExecutionEstimate:
    """Estimate the execution time of a Hector kernel plan.

    Hector's generated host code launches precompiled kernels directly, so its
    per-operator host overhead is small compared to eager frameworks; the
    default of a few microseconds reflects that.
    """
    kernels = plan.kernels("all" if training else "forward")
    works = [kernel_work_from_instance(kernel, workload, device) for kernel in kernels]
    return estimate_execution(works, device, framework_overhead_per_op_us)
