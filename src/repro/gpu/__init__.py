"""Analytical GPU model.

Substitutes for the RTX 3090 testbed of the paper: a device description, a
roofline-plus-launch-overhead kernel cost model, and a profiler that derives
the architectural metrics of Figure 12 (achieved GFLOPs, IPC proxy, DRAM
throughput) from kernel specifications.  See DESIGN.md for why this
substitution preserves the comparative results.
"""

from repro.gpu.device import DeviceSpec, RTX_3090, A100_40GB
from repro.gpu.costmodel import (
    ExecutionEstimate,
    KernelWork,
    estimate_execution,
    estimate_kernel_time,
    kernel_work_from_instance,
    plan_execution_estimate,
)
from repro.gpu.profiler import KernelProfile, profile_kernels

__all__ = [
    "DeviceSpec",
    "RTX_3090",
    "A100_40GB",
    "KernelWork",
    "ExecutionEstimate",
    "estimate_kernel_time",
    "estimate_execution",
    "kernel_work_from_instance",
    "plan_execution_estimate",
    "KernelProfile",
    "profile_kernels",
]
