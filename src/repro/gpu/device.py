"""GPU device descriptions used by the cost model."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """Parameters of the modelled GPU.

    Attributes:
        name: marketing name.
        sm_count: number of streaming multiprocessors.
        peak_fp32_tflops: single-precision peak throughput (TFLOP/s).
        dram_bandwidth_gbps: DRAM bandwidth (GB/s).
        memory_bytes: device memory capacity (bytes).
        kernel_launch_overhead_us: CPU/driver latency per kernel launch.
        framework_op_overhead_us: extra host latency per framework operator
            call in eager frameworks (PyTorch dispatch, shape checks, …).
        atomic_penalty: multiplicative slowdown applied to kernels dominated
            by atomic updates (backward traversal, scattered accumulation).
        outer_product_penalty: multiplicative slowdown of per-type
            outer-product (weight gradient) kernels.
        min_reuse_for_peak: arithmetic intensity (FLOP/byte) needed to not be
            memory-bound; the paper quotes ≈16 floats of reuse for H100-class
            parts, similar for the 3090.
        schedulers_per_sm: warp schedulers per SM (ideal IPC in Figure 12).
    """

    name: str
    sm_count: int
    peak_fp32_tflops: float
    dram_bandwidth_gbps: float
    memory_bytes: float
    kernel_launch_overhead_us: float = 6.0
    framework_op_overhead_us: float = 30.0
    atomic_penalty: float = 2.2
    outer_product_penalty: float = 1.6
    min_reuse_for_peak: float = 16.0
    schedulers_per_sm: int = 4

    @property
    def peak_flops(self) -> float:
        """Peak FP32 throughput in FLOP/s."""
        return self.peak_fp32_tflops * 1e12

    @property
    def dram_bandwidth(self) -> float:
        """DRAM bandwidth in bytes/s."""
        return self.dram_bandwidth_gbps * 1e9


#: The GPU used throughout the paper's evaluation (24 GB).
RTX_3090 = DeviceSpec(
    name="NVIDIA GeForce RTX 3090",
    sm_count=82,
    peak_fp32_tflops=35.6,
    dram_bandwidth_gbps=936.0,
    memory_bytes=24 * 2**30,
)

#: A second device for what-if studies (Section 6 discusses per-architecture tuning).
A100_40GB = DeviceSpec(
    name="NVIDIA A100 40GB",
    sm_count=108,
    peak_fp32_tflops=19.5,
    dram_bandwidth_gbps=1555.0,
    memory_bytes=40 * 2**30,
    kernel_launch_overhead_us=5.0,
)
