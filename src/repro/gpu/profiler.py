"""Architectural metrics derived from kernel work records (Figure 12).

The paper profiles the generated kernels with Nsight Compute and reports, per
kernel category and propagation direction, the achieved GFLOP/s, executed
instructions per cycle (IPC), load-store-unit utilisation, and L1/L2/DRAM
throughputs.  The analytical profiler reproduces the same report from the cost
model: achieved GFLOP/s follows directly from the time estimate; the IPC proxy
scales with how close the kernel is to being latency-bound (atomics and low
occupancy depress it); DRAM throughput is the modelled traffic over the
modelled time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.gpu.costmodel import KernelWork, estimate_kernel_time
from repro.gpu.device import DeviceSpec, RTX_3090


@dataclass
class KernelProfile:
    """Per-kernel architectural metrics (Figure 12 rows)."""

    name: str
    category: str
    direction: str
    duration_s: float
    achieved_gflops: float
    executed_ipc: float
    lsu_utilization_pct: float
    l1_throughput_pct: float
    l2_throughput_pct: float
    dram_throughput_pct: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "name": self.name,
            "category": self.category,
            "direction": self.direction,
            "duration_s": self.duration_s,
            "achieved_gflops": self.achieved_gflops,
            "executed_ipc": self.executed_ipc,
            "lsu_utilization_pct": self.lsu_utilization_pct,
            "l1_throughput_pct": self.l1_throughput_pct,
            "l2_throughput_pct": self.l2_throughput_pct,
            "dram_throughput_pct": self.dram_throughput_pct,
        }


def profile_kernel(work: KernelWork, device: DeviceSpec = RTX_3090) -> KernelProfile:
    """Derive architectural metrics for one kernel-work record."""
    timing = estimate_kernel_time(work, device)
    duration = max(timing.total_time, 1e-9)
    achieved_gflops = work.flops / duration / 1e9
    dram_throughput_pct = min(100.0, 100.0 * (work.bytes_total / duration) / device.dram_bandwidth)

    # IPC proxy: ideal is one instruction per scheduler per cycle (4 per SM).
    # Latency-bound kernels (atomics, launch-dominated, low occupancy) issue
    # far fewer instructions per cycle.
    utilization = max(timing.compute_time, timing.memory_time) / duration
    ipc = device.schedulers_per_sm * utilization
    if work.uses_atomics:
        ipc *= 0.45
    if work.category != "gemm":
        ipc *= 0.75
    ipc = max(0.05, min(float(device.schedulers_per_sm), ipc))

    # Load/store unit usage tracks how memory-heavy the kernel is.
    memory_share = timing.memory_time / max(timing.compute_time + timing.memory_time, 1e-12)
    lsu = 100.0 * min(1.0, 0.15 + 0.75 * memory_share)
    l1 = min(100.0, dram_throughput_pct * 1.6 + (10.0 if work.category == "gemm" else 4.0))
    l2 = min(100.0, dram_throughput_pct * 1.25 + 3.0)
    return KernelProfile(
        name=work.name,
        category=work.category,
        direction=work.direction,
        duration_s=duration,
        achieved_gflops=achieved_gflops,
        executed_ipc=ipc,
        lsu_utilization_pct=lsu,
        l1_throughput_pct=l1,
        l2_throughput_pct=l2,
        dram_throughput_pct=dram_throughput_pct,
    )


def profile_kernels(works: Sequence[KernelWork], device: DeviceSpec = RTX_3090) -> List[KernelProfile]:
    """Profile a sequence of kernel-work records."""
    return [profile_kernel(work, device) for work in works]


def aggregate_profiles(profiles: Sequence[KernelProfile]) -> Dict[str, Dict[str, float]]:
    """Aggregate profiles by (category, direction), as in Figure 12.

    Returns a mapping ``"{category}/{direction}"`` → metrics, with the total
    duration summed and the remaining metrics duration-weighted averages.
    """
    groups: Dict[str, List[KernelProfile]] = {}
    for profile in profiles:
        groups.setdefault(f"{profile.category}/{profile.direction}", []).append(profile)
    result: Dict[str, Dict[str, float]] = {}
    for key, members in groups.items():
        total_duration = sum(p.duration_s for p in members)
        weights = [p.duration_s / total_duration if total_duration else 1.0 / len(members) for p in members]

        def weighted(attr: str) -> float:
            return float(sum(getattr(p, attr) * w for p, w in zip(members, weights)))

        result[key] = {
            "total_duration_s": total_duration,
            "avg_achieved_gflops": weighted("achieved_gflops"),
            "avg_executed_ipc": weighted("executed_ipc"),
            "avg_lsu_utilization_pct": weighted("lsu_utilization_pct"),
            "avg_l1_throughput_pct": weighted("l1_throughput_pct"),
            "avg_l2_throughput_pct": weighted("l2_throughput_pct"),
            "avg_dram_throughput_pct": weighted("dram_throughput_pct"),
            "num_kernels": float(len(members)),
        }
    return result
