"""End-to-end comparison of Hector with the baseline systems (Figure 8).

For every (dataset, model, system) cell the harness builds the full-scale
workload from Table 3's statistics, asks the system for its kernel plan and
memory footprint, and prices both with the shared GPU cost and memory models.
The output rows carry execution-time estimates, OOM flags, and unsupported
markers — exactly the information plotted in Figure 8(a)/(b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baselines.base import SystemEstimate
from repro.baselines.hector_system import HectorSystem
from repro.baselines.systems import ALL_BASELINES
from repro.evaluation.reporting import speedup
from repro.evaluation.workload import WorkloadSpec
from repro.frontend.config import CONFIGURATIONS
from repro.gpu.device import DeviceSpec, RTX_3090
from repro.graph.datasets import dataset_names
from repro.models import MODEL_NAMES

#: Systems measured in the inference comparison of Figure 8(b).
INFERENCE_SYSTEMS = ["DGL", "PyG", "Seastar", "Graphiler"]
#: Systems measured in the training comparison of Figure 8(a).
TRAINING_SYSTEMS = ["DGL", "PyG", "Seastar", "HGL"]


@dataclass
class EndToEndResult:
    """All system estimates for one (model, dataset, mode) cell."""

    model: str
    dataset: str
    mode: str
    estimates: Dict[str, SystemEstimate] = field(default_factory=dict)

    def best_baseline_time(self) -> Optional[float]:
        """Fastest non-OOM, supported baseline time (the paper's comparison point)."""
        times = [
            est.time_ms
            for name, est in self.estimates.items()
            if not name.startswith("Hector") and est.time_ms is not None
        ]
        return min(times) if times else None

    def hector_time(self, label: str = "best") -> Optional[float]:
        """Hector's time: a specific configuration label or the best of all present."""
        if label == "best":
            times = [
                est.time_ms for name, est in self.estimates.items()
                if name.startswith("Hector") and est.time_ms is not None
            ]
            return min(times) if times else None
        return self.estimates.get(f"Hector ({label})", SystemEstimate("", "", "", "", None, 0.0)).time_ms

    def hector_speedup(self, label: str = "best") -> Optional[float]:
        return speedup(self.best_baseline_time(), self.hector_time(label))

    def as_rows(self) -> List[Dict[str, object]]:
        rows = []
        for name, est in self.estimates.items():
            rows.append(
                {
                    "model": self.model,
                    "dataset": self.dataset,
                    "mode": self.mode,
                    "system": name,
                    "time_ms": est.time_ms,
                    "status": est.status(),
                    "memory_gib": est.memory_bytes / 2**30 if est.memory_bytes else None,
                }
            )
        return rows


def run_end_to_end(
    model: str,
    dataset: str,
    training: bool,
    hector_configs: Sequence[str] = ("U", "C+R"),
    in_dim: int = 64,
    out_dim: int = 64,
    device: DeviceSpec = RTX_3090,
    baseline_names: Optional[Sequence[str]] = None,
) -> EndToEndResult:
    """Evaluate every system on one (model, dataset, mode) cell."""
    workload = WorkloadSpec.from_dataset(dataset, in_dim=in_dim, out_dim=out_dim)
    mode = "training" if training else "inference"
    result = EndToEndResult(model=model, dataset=dataset, mode=mode)
    names = list(baseline_names) if baseline_names is not None else (
        TRAINING_SYSTEMS if training else INFERENCE_SYSTEMS
    )
    for name in names:
        system = ALL_BASELINES[name]
        result.estimates[name] = system.estimate(model, workload, training, device)
    for label in hector_configs:
        hector = HectorSystem(CONFIGURATIONS[label])
        result.estimates[hector.name] = hector.estimate(model, workload, training, device)
    return result


def run_full_comparison(
    models: Sequence[str] = tuple(MODEL_NAMES),
    datasets: Optional[Sequence[str]] = None,
    modes: Sequence[str] = ("inference", "training"),
    hector_configs: Sequence[str] = ("U", "C+R"),
    in_dim: int = 64,
    out_dim: int = 64,
    device: DeviceSpec = RTX_3090,
) -> List[EndToEndResult]:
    """The full Figure 8 sweep: every model × dataset × mode."""
    datasets = list(datasets) if datasets is not None else dataset_names()
    results: List[EndToEndResult] = []
    for mode in modes:
        training = mode == "training"
        for model in models:
            for dataset in datasets:
                results.append(
                    run_end_to_end(
                        model,
                        dataset,
                        training,
                        hector_configs=hector_configs,
                        in_dim=in_dim,
                        out_dim=out_dim,
                        device=device,
                    )
                )
    return results
