"""Architectural characteristics of the generated kernels (Figure 12)."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.baselines.hector_system import HectorSystem
from repro.evaluation.workload import WorkloadSpec
from repro.frontend.config import CONFIGURATIONS
from repro.gpu.device import DeviceSpec, RTX_3090
from repro.gpu.profiler import aggregate_profiles, profile_kernels


def architectural_metrics(
    model: str = "rgat",
    datasets: Sequence[str] = ("bgs", "am"),
    dims: Sequence[int] = (32, 64, 128),
    configs: Sequence[str] = ("U", "C"),
    device: DeviceSpec = RTX_3090,
) -> List[Dict[str, object]]:
    """Figure 12: per-kernel-category architectural metrics.

    For RGAT on bgs and am, with and without compaction, and for feature
    dimensions 32/64/128, the rows report — separately for GEMM and traversal
    kernels and for forward and backward propagation — the total duration and
    the duration-weighted average achieved GFLOP/s, IPC proxy, LSU
    utilisation, and L1/L2/DRAM throughput percentages.
    """
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        for dim in dims:
            workload = WorkloadSpec.from_dataset(dataset, in_dim=dim, out_dim=dim)
            for label in configs:
                system = HectorSystem(CONFIGURATIONS[label])
                works = system.works(model, workload, training=True)
                profiles = profile_kernels(works, device)
                aggregated = aggregate_profiles(profiles)
                for group, metrics in aggregated.items():
                    category, direction = group.split("/")
                    if category not in ("gemm", "traversal"):
                        continue
                    rows.append(
                        {
                            "dataset": dataset,
                            "dim": dim,
                            "config": label,
                            "category": category,
                            "direction": direction,
                            "total_duration_s": metrics["total_duration_s"],
                            "avg_achieved_gflops": metrics["avg_achieved_gflops"],
                            "avg_executed_ipc": metrics["avg_executed_ipc"],
                            "avg_lsu_utilization_pct": metrics["avg_lsu_utilization_pct"],
                            "avg_l1_throughput_pct": metrics["avg_l1_throughput_pct"],
                            "avg_l2_throughput_pct": metrics["avg_l2_throughput_pct"],
                            "avg_dram_throughput_pct": metrics["avg_dram_throughput_pct"],
                        }
                    )
    return rows
