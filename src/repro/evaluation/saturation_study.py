"""Saturation study: router behaviour as offered load crosses the capacity knee.

The router's overload story (ISSUE 10) is a claim about *shape*, not a single
number: below the capacity knee everything completes and latency is flat;
past the knee an admission-controlled router converts overload into a rising
**shed rate** while the latency of admitted requests stays bounded (wait is
capped by the deadline, so p99 ≈ deadline + one batch's service) and
weighted-round-robin keeps completed work split by endpoint weight.  Without
admission control the same sweep shows queues — and p99 — growing without
bound.

The sweep: calibrate the router's capacity (requests/s at saturation, one
worker, burst arrivals), then replay the same round-robin mixed stream at
``multiplier × capacity`` offered load for each multiplier, under a
queue-bound + deadline admission policy derived from the calibration.
Everything runs on the virtual clock with CPU-exclusive service times
(``time.thread_time``), so the knee is a property of the workload, not of
wall-clock noise on a busy CI host.

CI runs ``python -m repro.evaluation.saturation_study --markdown`` into
``$GITHUB_STEP_SUMMARY``; ``benchmarks/test_serving.py`` reuses the builders
here to gate the bounded-p99 / rising-shed / fairness behaviour.
"""

from __future__ import annotations

import argparse
import time
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.evaluation.reporting import format_markdown_table, format_table
from repro.frontend.compiler import compile_model
from repro.frontend.config import CompilerOptions
from repro.graph.generators import random_hetero_graph
from repro.graph.hetero_graph import HeteroGraph
from repro.runtime.module import CompiledRGNNModule
from repro.serving import AdmissionPolicy, Router
from repro.serving.stats import percentile

#: The study's tenants: ``(endpoint name, model, WRR weight)``.  Four lanes
#: so a 4-worker pool has enough lane parallelism to matter; one weight-2
#: tenant so fairness is measurable, not just round-robin.
TENANTS: Tuple[Tuple[str, str, int], ...] = (
    ("rgcn-a", "rgcn", 1),
    ("rgat-b", "rgat", 1),
    ("hgt-c", "hgt", 2),
    ("rgcn-d", "rgcn", 1),
)

IN_DIM = 32
OUT_DIM = 16


def tenant_graphs(seed: int = 23) -> Dict[str, HeteroGraph]:
    """One modest parent graph per tenant (deliberately similar sizes, so
    executor slots cost roughly the same across lanes)."""
    return {
        name: random_hetero_graph(
            num_nodes=220, num_edges=1100, num_node_types=2, num_edge_types=4,
            seed=seed + index, name=f"saturation-{name}",
        )
        for index, (name, _, _) in enumerate(TENANTS)
    }


def compile_tenants(graphs: Dict[str, HeteroGraph], seed: int = 7) -> Dict[str, CompiledRGNNModule]:
    """Compile each tenant's module once; routers adopt them (so a sweep over
    load multipliers pays compilation once, not once per router)."""
    options = CompilerOptions(emit_backward=False)
    return {
        name: compile_model(
            model, graphs[name], in_dim=IN_DIM, out_dim=OUT_DIM,
            options=options, seed=seed + index,
        )
        for index, (name, model, _) in enumerate(TENANTS)
    }


def build_router(
    modules: Dict[str, CompiledRGNNModule],
    graphs: Dict[str, HeteroGraph],
    *,
    num_workers: int = 1,
    admission: Optional[AdmissionPolicy] = None,
    max_batch_size: int = 8,
    batch_timeout_s: float = 0.002,
    block_cache_size: int = 32,
    seed: int = 5,
) -> Router:
    """A fresh 4-endpoint router over the study's tenants (cold caches and
    admission state, shared pre-compiled modules)."""
    router = Router(arena_capacity_bytes=64 << 20, num_workers=num_workers)
    for index, (name, _, priority) in enumerate(TENANTS):
        router.register(
            name, modules[name], graphs[name],
            in_dim=IN_DIM, out_dim=OUT_DIM,
            priority=priority,
            max_batch_size=max_batch_size,
            batch_timeout_s=batch_timeout_s,
            block_cache_size=block_cache_size,
            sampler_seed=seed + index,
            seed=seed + index,
            admission=admission,
        )
    return router


def mixed_stream(
    graphs: Dict[str, HeteroGraph],
    num_requests: int,
    *,
    seeds_per_request: int = 3,
    rate_rps: Optional[float] = None,
    seed: int = 0,
) -> List[Tuple[str, np.ndarray, float]]:
    """A round-robin mixed stream: request ``i`` targets tenant ``i mod 4``.

    ``rate_rps=None`` is a closed-loop burst (every arrival at t=0, the
    calibration and worker-scaling workload); otherwise arrivals are evenly
    spaced at the offered rate, so each tenant is offered exactly a quarter
    of the load.
    """
    rng = np.random.default_rng(seed)
    names = [name for name, _, _ in TENANTS]
    stream: List[Tuple[str, np.ndarray, float]] = []
    for index in range(num_requests):
        name = names[index % len(names)]
        seeds = rng.integers(0, graphs[name].num_nodes, size=seeds_per_request)
        arrival = 0.0 if rate_rps is None else index / rate_rps
        stream.append((name, seeds, arrival))
    return stream


def calibrate_capacity(
    modules: Dict[str, CompiledRGNNModule],
    graphs: Dict[str, HeteroGraph],
    *,
    num_requests: int = 96,
    seed: int = 11,
) -> Dict[str, float]:
    """Measure the single-worker saturation point: serve a burst (every
    request ready at t=0, no admission) and read the completion rate.

    Returns ``capacity_rps`` (requests per virtual second at saturation) and
    ``mean_service_s`` (mean batch service seconds) — the two numbers the
    admission policy and the sweep's offered rates are derived from.
    """
    # One throwaway warmup pass so cold-start costs (first binds, allocator
    # growth) do not inflate the calibrated capacity's denominator.
    warmup = build_router(modules, graphs, num_workers=1, seed=seed)
    warmup.serve(mixed_stream(graphs, 32, seed=seed + 99), timer=time.thread_time)
    router = build_router(modules, graphs, num_workers=1, seed=seed)
    stream = mixed_stream(graphs, num_requests, seed=seed)
    router.serve(stream, timer=time.thread_time)
    metrics = router.last_serve_metrics
    batches = sum(e.stats.num_batches for e in (router.endpoint(n) for n, _, _ in TENANTS))
    makespan = max(metrics["makespan_s"], 1e-9)
    return {
        "capacity_rps": metrics["completed"] / makespan,
        "mean_service_s": metrics["busy_s"] / max(batches, 1),
    }


def fairness_ratios(completed_by_endpoint: Dict[str, int]) -> Dict[str, float]:
    """Completed-share over weight-share per tenant (1.0 = perfectly fair).

    Only meaningful when the router is actually contended (under light load
    everything completes and shares follow the offered mix, not the
    weights).
    """
    total_completed = sum(completed_by_endpoint.values())
    total_weight = sum(weight for _, _, weight in TENANTS)
    if not total_completed:
        return {name: 0.0 for name, _, _ in TENANTS}
    return {
        name: (completed_by_endpoint.get(name, 0) / total_completed) / (weight / total_weight)
        for name, _, weight in TENANTS
    }


def saturation_study(
    *,
    multipliers: Sequence[float] = (0.25, 1.0, 2.0, 4.0),
    window_deadlines: float = 4.0,
    seeds_per_request: int = 3,
    num_workers: int = 1,
    max_batch_size: int = 8,
    max_queue_depth: int = 12,
    seed: int = 23,
) -> Dict[str, object]:
    """Sweep offered load across the capacity knee under admission control.

    Per multiplier ``m``: a fresh router (same pre-compiled modules, cold
    admission state) serves a round-robin stream at ``m × capacity`` offered
    rps, under a per-tenant policy of ``max_queue_depth`` and a deadline
    sized so a *full* queue on the slowest (weight-1) lane can still drain in
    time — so below the knee, deadlines are comfortable, and past it, the
    queue bound and deadline shed the excess instead of queueing it.

    Each row's stream lasts ``window_deadlines`` deadlines of arrivals (the
    request count scales with the offered rate), so overloaded rows reach
    steady state instead of being one queue-sized burst, and the fairness
    measurement has a real contended window to average over.
    """
    graphs = tenant_graphs(seed)
    modules = compile_tenants(graphs, seed=seed)
    calibration = calibrate_capacity(modules, graphs, seed=seed)
    capacity = max(calibration["capacity_rps"], 1e-9)
    mean_service = calibration["mean_service_s"]
    # A weight-1 lane drains ~its weight share of capacity; give a full
    # queue 1.5× the time that drain needs, plus a batch's service.
    total_weight = sum(weight for _, _, weight in TENANTS)
    min_share = min(weight for _, _, weight in TENANTS) / total_weight
    deadline_s = 1.5 * max_queue_depth / (capacity * min_share) + 2.0 * mean_service
    policy = AdmissionPolicy(max_queue_depth=max_queue_depth, deadline_s=deadline_s)
    window_s = window_deadlines * deadline_s

    rows: List[Dict[str, object]] = []
    for multiplier in multipliers:
        rate = multiplier * capacity
        num_requests = max(int(rate * window_s), 16 * len(TENANTS))
        router = build_router(
            modules, graphs, num_workers=num_workers,
            admission=policy, max_batch_size=max_batch_size,
            batch_timeout_s=0.004, seed=seed,
        )
        stream = mixed_stream(
            graphs, num_requests,
            seeds_per_request=seeds_per_request, rate_rps=rate, seed=seed + 1,
        )
        router.serve(stream, timer=time.thread_time)
        requests = router.last_served
        completed = [r for r in requests if r.done]
        shed = [r for r in requests if r.shed]
        latencies = [r.latency_s for r in completed]
        # Fairness is a steady-state property: once arrivals stop, the final
        # queue drain completes every lane's backlog regardless of weight, so
        # count only completions that finished while load was still arriving.
        last_arrival = max(r.arrival_s for r in requests) if requests else 0.0
        steady = [r for r in completed if r.arrival_s + r.latency_s <= last_arrival]
        ratios = fairness_ratios(Counter(r.endpoint for r in (steady or completed)))
        rows.append({
            "multiplier": multiplier,
            "offered_rps": round(rate, 1),
            "requests": len(requests),
            "completed": len(completed),
            "shed": len(shed),
            "shed_fraction": round(len(shed) / len(requests), 3) if requests else 0.0,
            "p50_ms": round(percentile(latencies, 50) * 1e3, 3),
            "p99_ms": round(percentile(latencies, 99) * 1e3, 3),
            "fairness_worst": round(max(abs(r - 1.0) for r in ratios.values()), 3),
            "queue_high_water": max(
                router.endpoint(name).stats.queue_depth_high_water for name, _, _ in TENANTS
            ),
        })
    return {
        "capacity_rps": round(capacity, 1),
        "mean_service_ms": round(mean_service * 1e3, 4),
        "deadline_ms": round(deadline_s * 1e3, 3),
        "max_queue_depth": max_queue_depth,
        "num_workers": num_workers,
        "rows": rows,
    }


def saturation_rows(study: Dict[str, object]) -> List[Dict[str, object]]:
    """The study's table rows (for ``format_table`` / markdown rendering)."""
    return list(study["rows"])


def main(argv: Optional[List[str]] = None) -> None:
    """CLI entry point; ``--markdown`` targets the CI job summary."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--window-deadlines", type=float, default=4.0,
                        help="stream length per row, in units of the admission deadline")
    parser.add_argument("--seeds-per-request", type=int, default=3)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--multipliers", type=float, nargs="+", default=[0.25, 1.0, 2.0, 4.0])
    parser.add_argument("--markdown", action="store_true",
                        help="emit a GitHub-flavoured markdown table (for $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args(argv)
    study = saturation_study(
        multipliers=tuple(args.multipliers),
        window_deadlines=args.window_deadlines,
        seeds_per_request=args.seeds_per_request,
        num_workers=args.workers,
    )
    header = (
        f"capacity {study['capacity_rps']} rps, mean batch service "
        f"{study['mean_service_ms']} ms, deadline {study['deadline_ms']} ms, "
        f"queue depth {study['max_queue_depth']}, workers {study['num_workers']}"
    )
    if args.markdown:
        print("### Saturation sweep — offered load vs the capacity knee")
        print()
        print(format_markdown_table(saturation_rows(study)))
        print()
        print(f"**{header}.** Past the knee the shed fraction rises while the "
              "p99 of admitted requests stays bounded by the deadline.")
    else:
        print(format_table(saturation_rows(study), title=f"Saturation sweep — {header}"))


if __name__ == "__main__":  # pragma: no cover - CLI
    main()
