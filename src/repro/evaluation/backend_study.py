"""Backend study: python-codegen / mixed vs python-interp throughput per plan.

The platform-characterisation companion of the backend registry
(:mod:`repro.ir.codegen.registry`): for each model it compiles the same plan
under every executing backend, verifies the outputs agree, and reports
compile-once-run-many throughput side by side — forward-only (serving) and
forward+backward (training).  ``benchmarks/test_perf_regression.py`` gates on
the forward speedup; CI publishes the table in the job summary
(``python -m repro.evaluation.backend_study --markdown``).
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List, Optional

import numpy as np

from repro.frontend.compiler import compile_model
from repro.frontend.config import CompilerOptions
from repro.graph.generators import random_hetero_graph
from repro.graph.hetero_graph import HeteroGraph
from repro.evaluation.reporting import format_markdown_table

#: The executing backends the study compares (registry names).
BACKENDS = ("python-interp", "python-codegen", "mixed")


def default_study_graph(seed: int = 23) -> HeteroGraph:
    """Dispatch-bound shape: the regime whole-plan codegen targets."""
    return random_hetero_graph(
        num_nodes=120,
        num_edges=500,
        num_node_types=3,
        num_edge_types=6,
        seed=seed,
        name="backend-study",
    )


def _best_time(step, iterations: int, repeats: int) -> float:
    """Best per-iteration seconds over ``repeats`` timed batches."""
    step()  # warm: arena slots, lazy numpy dispatch
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iterations):
            step()
        best = min(best, (time.perf_counter() - start) / iterations)
    return best


def backend_study(
    models: Optional[List[str]] = None,
    graph: Optional[HeteroGraph] = None,
    dim: int = 16,
    iterations: int = 100,
    repeats: int = 5,
    seed: int = 0,
) -> Dict[str, object]:
    """Compare the executing backends on compile-once-run-many throughput.

    Returns ``{"rows": [...], "best_forward_speedup": float}``; one row per
    (model, mode) with per-backend microseconds and the codegen/interp
    speedup.  Outputs are checked identical across backends before timing —
    the codegen backend is an optimisation, not an approximation.
    """
    models = models or ["rgcn", "rgat", "hgt"]
    graph = graph if graph is not None else default_study_graph()
    features = np.random.default_rng(seed).standard_normal((graph.num_nodes, dim))

    rows: List[Dict[str, object]] = []
    best_forward = 0.0
    for model in models:
        for mode in ("forward", "forward+backward"):
            train = mode == "forward+backward"
            times: Dict[str, float] = {}
            outputs: Dict[str, Dict[str, np.ndarray]] = {}
            for backend in BACKENDS:
                options = CompilerOptions(
                    fuse_elementwise=True, emit_backward=train, backend=backend
                )
                module = compile_model(
                    model, graph, in_dim=dim, out_dim=dim, options=options, seed=seed
                )
                out = module.forward(features)
                outputs[backend] = out
                seeds = {k: np.ones_like(v) for k, v in out.items()}

                def step(module=module, seeds=seeds, train=train):
                    module.forward(features)
                    if train:
                        module.backward(seeds)

                times[backend] = _best_time(step, iterations, repeats)
            for other in BACKENDS[1:]:
                for name in outputs[BACKENDS[0]]:
                    np.testing.assert_allclose(
                        outputs[BACKENDS[0]][name], outputs[other][name], atol=1e-12
                    )
            speedup = times["python-interp"] / times["python-codegen"]
            speedup_mixed = times["python-interp"] / times["mixed"]
            if not train:
                best_forward = max(best_forward, speedup)
            rows.append(
                {
                    "model": model,
                    "mode": mode,
                    "interp_us": round(times["python-interp"] * 1e6, 1),
                    "codegen_us": round(times["python-codegen"] * 1e6, 1),
                    "mixed_us": round(times["mixed"] * 1e6, 1),
                    "speedup": round(speedup, 2),
                    "speedup_mixed": round(speedup_mixed, 2),
                }
            )
    return {
        "graph": graph.name,
        "dim": dim,
        "rows": rows,
        "best_forward_speedup": round(best_forward, 2),
    }


def main(argv: Optional[List[str]] = None) -> None:
    """CLI entry point; ``--markdown`` targets the CI job summary."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--models", nargs="+", default=["rgcn", "rgat", "hgt"],
                        choices=["rgcn", "rgat", "hgt"])
    parser.add_argument("--dim", type=int, default=16)
    parser.add_argument("--iterations", type=int, default=100)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--markdown", action="store_true",
                        help="emit a GitHub-flavoured markdown table (for $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args(argv)
    study = backend_study(
        models=args.models, dim=args.dim, iterations=args.iterations, repeats=args.repeats
    )
    rows = list(study["rows"])
    if args.markdown:
        print(f"### Backend study — codegen / mixed vs interp on {study['graph']} (d={study['dim']})")
        print()
        print(format_markdown_table(rows))
        print()
        print(f"**Best forward speedup (python-codegen over python-interp): "
              f"{study['best_forward_speedup']}×**")
    else:
        from repro.evaluation.reporting import format_table

        print(format_table(rows, title="Backend study — python-codegen / mixed vs python-interp"))
        print(f"best forward speedup: {study['best_forward_speedup']}x")


if __name__ == "__main__":
    main()
