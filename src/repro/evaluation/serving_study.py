"""Serving study: micro-batched throughput vs batch-size-1 on one stream.

The platform-characterisation companion of the serving engine: it replays an
identical request stream through two engines — one forced to batch size 1
(per-request sample + bind + execute, the naive deployment) and one
micro-batching up to ``max_batch_size`` — and reports throughput, latency
percentiles, batch occupancy, plan-replay rate, and arena-pool reuse side by
side.  ``benchmarks/test_serving.py`` gates on the speedup; CI publishes the
table in the job summary (``python -m repro.evaluation.serving_study
--markdown``).
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional

import numpy as np

from repro.frontend.config import CompilerOptions
from repro.graph.generators import random_features, random_hetero_graph
from repro.graph.hetero_graph import HeteroGraph
from repro.serving.engine import ServingEngine
from repro.evaluation.reporting import format_markdown_table


def default_serving_graph(seed: int = 17) -> HeteroGraph:
    """The study's parent graph: big enough that per-request work dominates."""
    return random_hetero_graph(
        num_nodes=400,
        num_edges=2400,
        num_node_types=3,
        num_edge_types=6,
        seed=seed,
        name="serving",
        source_locality=0.4,
    )


def request_stream(
    graph: HeteroGraph,
    num_requests: int,
    seeds_per_request: int,
    seed: int = 0,
) -> List[np.ndarray]:
    """A reproducible stream of per-request seed-node queries."""
    rng = np.random.default_rng(seed)
    return [
        rng.choice(graph.num_nodes, size=seeds_per_request, replace=False)
        for _ in range(num_requests)
    ]


def serving_study(
    model: str = "rgat",
    graph: Optional[HeteroGraph] = None,
    num_requests: int = 64,
    seeds_per_request: int = 4,
    max_batch_size: int = 16,
    fanout: int = 8,
    in_dim: int = 16,
    out_dim: int = 16,
    seed: int = 0,
) -> Dict[str, object]:
    """Run the batched-vs-unbatched comparison on one request stream.

    Both engines share the model, options (inference, compact
    materialization — so blocks exercise the compaction machinery), feature
    store, fanout, and stream; only the batching policy differs.

    Returns ``{"rows": [...], "speedup": float, ...}`` where each row is one
    engine's :meth:`~repro.serving.engine.ServingEngine.report` plus a
    ``mode`` column.
    """
    graph = graph if graph is not None else default_serving_graph()
    options = CompilerOptions(emit_backward=False, compact_materialization=True)
    features = random_features(graph, in_dim, seed=seed)
    stream = request_stream(graph, num_requests, seeds_per_request, seed=seed)

    def build_engine(batch_size: int) -> ServingEngine:
        return ServingEngine(
            model,
            graph,
            in_dim=in_dim,
            out_dim=out_dim,
            options=options,
            features=features,
            fanouts=(fanout,),
            max_batch_size=batch_size,
            sampler_seed=seed,
            seed=seed,
        )

    single = build_engine(1)
    batched = build_engine(max_batch_size)
    # Warm both paths once (plan compile happened at engine construction; one
    # throwaway batch warms the arena pool and any lazy numpy dispatch), then
    # reset telemetry so the reported numbers cover only the measured stream.
    single.query(stream[0])
    batched.query(stream[0])
    single.reset_stats()
    batched.reset_stats()

    single_report = single.serve(stream)
    batched_report = batched.serve(stream)

    single_report["mode"] = "batch-1"
    batched_report["mode"] = f"micro-batch({max_batch_size})"
    speedup = (
        batched_report["throughput_rps"] / single_report["throughput_rps"]
        if single_report["throughput_rps"]
        else float("inf")
    )
    columns = ["mode"] + [key for key in single_report if key != "mode"]
    return {
        "model": model,
        "graph": graph.name,
        "rows": [
            {column: single_report.get(column) for column in columns},
            {column: batched_report.get(column) for column in columns},
        ],
        "speedup": round(speedup, 2),
        "zero_recompiles": single.plan_recompiles == 0 and batched.plan_recompiles == 0,
        "num_requests": num_requests,
        "seeds_per_request": seeds_per_request,
    }


def serving_rows(study: Dict[str, object]) -> List[Dict[str, object]]:
    """The study's table rows (for ``format_table`` / markdown rendering)."""
    return list(study["rows"])


def main(argv: Optional[List[str]] = None) -> None:
    """CLI entry point; ``--markdown`` targets the CI job summary."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="rgat", choices=["rgcn", "rgat", "hgt"])
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--seeds-per-request", type=int, default=4)
    parser.add_argument("--max-batch-size", type=int, default=16)
    parser.add_argument("--markdown", action="store_true",
                        help="emit a GitHub-flavoured markdown table (for $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args(argv)
    study = serving_study(
        model=args.model,
        num_requests=args.requests,
        seeds_per_request=args.seeds_per_request,
        max_batch_size=args.max_batch_size,
    )
    rows = serving_rows(study)
    if args.markdown:
        print(f"### Serving throughput — {study['model']} on {study['graph']}")
        print()
        print(format_markdown_table(rows))
        print()
        print(f"**Micro-batch speedup over batch-1: {study['speedup']}×** "
              f"(zero recompiles: {study['zero_recompiles']})")
    else:
        from repro.evaluation.reporting import format_table

        print(format_table(rows, title=f"Serving study — {study['model']} on {study['graph']}"))
        print(f"micro-batch speedup over batch-1: {study['speedup']}x; "
              f"zero recompiles: {study['zero_recompiles']}")


if __name__ == "__main__":  # pragma: no cover - CLI
    main()
