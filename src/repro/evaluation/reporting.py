"""Plain-text table formatting for benchmark output."""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence


def format_markdown_table(rows: Sequence[Mapping[str, object]]) -> str:
    """Render dict rows as a GitHub-flavoured markdown table.

    Used by the study CLIs' ``--markdown`` mode targeting
    ``$GITHUB_STEP_SUMMARY``; columns come from the first row's keys.
    """
    columns = list(rows[0].keys())
    lines = [
        "| " + " | ".join(columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(row.get(column, "-")) for column in columns) + " |")
    return "\n".join(lines)


def format_table(rows: Sequence[Mapping[str, object]], columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None, float_format: str = "{:.3g}") -> str:
    """Render a list of dict rows as an aligned plain-text table.

    Args:
        rows: the table rows.
        columns: column order; defaults to the keys of the first row.
        title: optional title line printed above the table.
        float_format: format applied to float cells.
    """
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    columns = list(columns) if columns is not None else list(rows[0].keys())

    def render(value: object) -> str:
        if value is None:
            return "-"
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column)) for column in columns] for row in rows]
    widths = [max(len(str(column)), max(len(r[i]) for r in rendered)) for i, column in enumerate(columns)]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (returns 0.0 for an empty input)."""
    values = [v for v in values if v is not None]
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= value
    return product ** (1.0 / len(values))


def speedup(baseline_time: Optional[float], new_time: Optional[float]) -> Optional[float]:
    """Speed-up of ``new`` over ``baseline`` (None if either is missing)."""
    if baseline_time is None or new_time is None or new_time <= 0:
        return None
    return baseline_time / new_time
