"""Workload specifications: the sizes every cost estimate is evaluated against.

A workload captures everything about (dataset × feature dimensions) that the
kernel cost and memory models need: node/edge counts, type counts, the number
of unique ``(source node, edge type)`` pairs (compact materialization), and
the per-relation edge-count distribution (per-relation-loop baselines launch
one kernel per relation, so the skew matters).

Workloads can be built from the full-scale dataset statistics of Table 3 (the
paper's actual sizes — used for every comparative figure) or from a concrete
:class:`repro.graph.HeteroGraph` (used when numerically executing the scaled
synthetic instantiations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.datasets import DatasetStats, get_dataset_stats
from repro.graph.hetero_graph import HeteroGraph


@dataclass
class WorkloadSpec:
    """Sizes of one evaluation workload."""

    name: str
    num_nodes: int
    num_edges: int
    num_node_types: int
    num_edge_types: int
    num_unique_pairs: int
    in_dim: int = 64
    out_dim: int = 64
    relation_edge_counts: Optional[np.ndarray] = None
    node_type_counts: Optional[np.ndarray] = None

    def __post_init__(self):
        if self.relation_edge_counts is None:
            base = self.num_edges // max(self.num_edge_types, 1)
            counts = np.full(self.num_edge_types, base, dtype=np.int64)
            counts[: self.num_edges - base * self.num_edge_types] += 1
            self.relation_edge_counts = counts
        else:
            self.relation_edge_counts = np.asarray(self.relation_edge_counts, dtype=np.int64)
        if self.node_type_counts is None:
            base = self.num_nodes // max(self.num_node_types, 1)
            counts = np.full(self.num_node_types, base, dtype=np.int64)
            counts[: self.num_nodes - base * self.num_node_types] += 1
            self.node_type_counts = counts
        else:
            self.node_type_counts = np.asarray(self.node_type_counts, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def average_degree(self) -> float:
        return self.num_edges / max(self.num_nodes, 1)

    @property
    def compaction_ratio(self) -> float:
        """Entity compaction ratio (unique pairs / edges)."""
        return self.num_unique_pairs / max(self.num_edges, 1)

    def with_dims(self, in_dim: int, out_dim: int) -> "WorkloadSpec":
        """A copy of this workload with different feature dimensions."""
        return WorkloadSpec(
            name=self.name,
            num_nodes=self.num_nodes,
            num_edges=self.num_edges,
            num_node_types=self.num_node_types,
            num_edge_types=self.num_edge_types,
            num_unique_pairs=self.num_unique_pairs,
            in_dim=in_dim,
            out_dim=out_dim,
            relation_edge_counts=self.relation_edge_counts,
            node_type_counts=self.node_type_counts,
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(cls, name: str, in_dim: int = 64, out_dim: int = 64) -> "WorkloadSpec":
        """Full-scale workload from a Table 3 dataset's published statistics."""
        stats = get_dataset_stats(name)
        return cls.from_stats(stats, in_dim=in_dim, out_dim=out_dim)

    @classmethod
    def from_stats(cls, stats: DatasetStats, in_dim: int = 64, out_dim: int = 64) -> "WorkloadSpec":
        return cls(
            name=stats.name,
            num_nodes=stats.num_nodes,
            num_edges=stats.num_edges,
            num_node_types=stats.num_node_types,
            num_edge_types=stats.num_edge_types,
            num_unique_pairs=stats.num_unique_src_etype_pairs,
            in_dim=in_dim,
            out_dim=out_dim,
            relation_edge_counts=stats.relation_edge_counts(),
            node_type_counts=stats.node_type_counts(),
        )

    @classmethod
    def from_graph(cls, graph: HeteroGraph, in_dim: int = 64, out_dim: int = 64) -> "WorkloadSpec":
        """Workload describing a concrete (scaled) graph instantiation."""
        return cls(
            name=graph.name,
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            num_node_types=graph.num_node_types,
            num_edge_types=graph.num_edge_types,
            num_unique_pairs=graph.compaction.num_unique,
            in_dim=in_dim,
            out_dim=out_dim,
            relation_edge_counts=graph.relation_edge_counts(),
            node_type_counts=np.array(
                [graph.num_nodes_per_type[n] for n in graph.node_type_names], dtype=np.int64
            ),
        )
