"""Memory footprint, compact materialization, and arena planning study (Figure 10)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines.hector_system import HectorSystem
from repro.evaluation.workload import WorkloadSpec
from repro.frontend.config import CONFIGURATIONS, CompilerOptions
from repro.graph.datasets import dataset_names, get_dataset_stats
from repro.runtime.planner import MemoryPlanner


def memory_footprint_study(
    model: str = "hgt",
    datasets: Optional[Sequence[str]] = None,
    in_dim: int = 64,
    out_dim: int = 64,
) -> List[Dict[str, object]]:
    """Figure 10: Hector memory use with and without compact materialization.

    For every dataset the row reports the unoptimised inference and training
    footprints (MiB), the fraction of that footprint remaining once compaction
    is enabled, the entity compaction ratio, and the dataset's size statistics
    that the paper overlays on the same plot.  Two additional columns report
    the buffer-arena memory planner: the inference footprint remaining once
    intermediate buffers with disjoint lifetimes share arena slots
    (``inference_planned_fraction``), and the arena size relative to naive
    whole-pass intermediate materialisation (``arena_sharing_fraction``).
    Slot sharing needs an inference-only plan — training pins every forward
    intermediate for the backward pass — so the planner columns are computed
    from the ``emit_backward=False`` compilation of the same configuration.
    """
    datasets = list(datasets) if datasets is not None else dataset_names()
    unopt = HectorSystem(CONFIGURATIONS["U"])
    compact = HectorSystem(CONFIGURATIONS["C"])
    inference_opts = CompilerOptions(emit_backward=False)
    inference_system = HectorSystem(inference_opts, name="Hector (U, inference)")
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        stats = get_dataset_stats(dataset)
        workload = WorkloadSpec.from_dataset(dataset, in_dim=in_dim, out_dim=out_dim)
        inference_unopt = unopt.memory_bytes(model, workload, training=False)
        training_unopt = unopt.memory_bytes(model, workload, training=True)
        inference_compact = compact.memory_bytes(model, workload, training=False)
        training_compact = compact.memory_bytes(model, workload, training=True)
        inference_plan = inference_system.compiled(model, in_dim, out_dim).plan
        planner = MemoryPlanner(inference_plan)
        planned = planner.planned_footprint_bytes(workload, training=False)
        naive_inference = inference_plan.memory_bytes(workload, training=False)
        memory_plan = planner.plan_memory(workload, training=False)
        rows.append(
            {
                "dataset": dataset,
                "num_nodes": stats.num_nodes,
                "num_edges": stats.num_edges,
                "average_degree": stats.average_degree,
                "entity_compaction_ratio": workload.compaction_ratio,
                "inference_mem_mib": inference_unopt / 2**20,
                "training_mem_mib": training_unopt / 2**20,
                "inference_compact_fraction": inference_compact / inference_unopt,
                "training_compact_fraction": training_compact / training_unopt,
                "inference_planned_fraction": planned / naive_inference,
                "arena_sharing_fraction": memory_plan.sharing_fraction(),
            }
        )
    return rows
