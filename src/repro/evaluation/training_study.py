"""Training study: sampled-minibatch vs full-graph training on the citation workload.

Two comparisons back the ``benchmarks/test_training.py`` gates:

* **loss parity** — the same model, initial parameters, optimizer, and epoch
  budget trained (a) full-graph and (b) over fanout-capped sampled
  minibatches must land at comparable training loss; sampling trades exact
  gradients for per-epoch block work, not for convergence;
* **per-hop work** — executing an L-layer stack layer-by-hop over
  :meth:`~repro.graph.sampler.NeighborSampler.sample_blocks` must do no more
  per-layer aggregation work (edges processed) than running every layer over
  the merged block, with strict savings on the inner layers.

CI publishes the tables in the job summary
(``python -m repro.evaluation.training_study --markdown``).
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional

import numpy as np

from repro.frontend.compiler import compile_model
from repro.graph import load_dataset
from repro.graph.generators import random_features, random_labels
from repro.graph.hetero_graph import HeteroGraph
from repro.graph.sampler import NeighborSampler
from repro.train import MinibatchTrainer
from repro.evaluation.reporting import format_markdown_table

DIM = 16
NUM_CLASSES = DIM  # layer outputs double as class logits


def citation_graph(max_edges: int = 4000) -> HeteroGraph:
    """The study's workload: a scaled instantiation of the aifb citation KG."""
    return load_dataset("aifb", max_edges=max_edges)


def _run_trainer(trainer: MinibatchTrainer, epochs: int, mode: str) -> Dict[str, object]:
    stats = trainer.train(epochs)
    row = {"mode": mode}
    row.update(trainer.summary())
    row["first_loss"] = round(stats.loss_curve()[0], 4)
    row["final_loss"] = round(stats.final_loss, 4)
    return row


def training_study(
    model: str = "rgat",
    graph: Optional[HeteroGraph] = None,
    epochs: int = 6,
    batch_size: int = 32,
    fanout: int = 8,
    lr: float = 0.02,
    seed: int = 0,
) -> Dict[str, object]:
    """Full-graph vs sampled-minibatch training, identical everything else.

    Both trainers share the model, initial parameters (same compile seed),
    features, labels, optimizer (Adam), and epoch budget; only the sampling
    policy differs.  Returns ``{"rows": [...], "loss_gap": float, ...}``.
    """
    graph = graph if graph is not None else citation_graph()
    features = random_features(graph, DIM, seed=seed)
    labels = random_labels(graph, NUM_CLASSES, seed=seed + 1)

    def build_trainer(**kwargs) -> MinibatchTrainer:
        module = compile_model(model, graph, in_dim=DIM, out_dim=DIM, seed=seed)
        return MinibatchTrainer(
            module, graph, features, labels,
            objective="cross_entropy", optimizer="adam", lr=lr,
            sampler_seed=seed, shuffle_seed=seed, **kwargs,
        )

    full = build_trainer(batch_size=None, accumulation_steps=None, fanouts=(None,))
    sampled = build_trainer(batch_size=batch_size, accumulation_steps=1, fanouts=(fanout,))

    rows = [
        _run_trainer(full, epochs, "full-graph"),
        _run_trainer(sampled, epochs, f"minibatch(b={batch_size}, fanout={fanout})"),
    ]
    full_loss = rows[0]["final_loss"]
    sampled_loss = rows[1]["final_loss"]
    return {
        "model": model,
        "graph": graph.name,
        "epochs": epochs,
        "rows": rows,
        "full_final_loss": full_loss,
        "sampled_final_loss": sampled_loss,
        "loss_gap": round(sampled_loss - full_loss, 4),
        "both_losses_improved": (
            rows[0]["final_loss"] < rows[0]["first_loss"]
            and rows[1]["final_loss"] < rows[1]["first_loss"]
        ),
    }


def perhop_work_study(
    model: str = "rgcn",
    graph: Optional[HeteroGraph] = None,
    num_layers: int = 2,
    fanout: int = 8,
    num_requests: int = 16,
    seeds_per_request: int = 8,
    seed: int = 0,
) -> Dict[str, object]:
    """Per-layer aggregation work: per-hop blocks vs one merged block.

    Samples a stream of seed sets; for each, builds both the per-hop block
    sequence and the merged block *within one sampler epoch* (shared draw
    memo, uniform fanout), so the outermost per-hop block contains exactly
    the merged edge set and the comparison is edge-for-edge fair.  Layer
    ``l`` of a per-hop execution aggregates over ``blocks[l-1].num_edges``
    edges while merged execution pays the whole merged block at every layer
    (``MultiLayerModule.layer_edge_counts`` reports exactly these counts for
    real runs — the accounting here needs only the blocks).  Returns
    per-layer totals and the aggregate savings fraction.
    """
    graph = graph if graph is not None else citation_graph()
    sampler = NeighborSampler(graph, fanouts=(fanout,) * num_layers, seed=seed)
    rng = np.random.default_rng(seed)

    per_hop_edges = [0] * num_layers
    merged_edges = [0] * num_layers
    for _ in range(num_requests):
        request = rng.choice(graph.num_nodes, size=seeds_per_request, replace=False)
        blocks = sampler.sample_blocks(request)
        merged = sampler.sample(request)
        for layer, block in enumerate(blocks):
            per_hop_edges[layer] += block.num_edges
            merged_edges[layer] += merged.num_edges

    rows: List[Dict[str, object]] = []
    for layer in range(num_layers):
        rows.append({
            "layer": layer + 1,
            "per_hop_edges": per_hop_edges[layer],
            "merged_edges": merged_edges[layer],
            "work_ratio": round(per_hop_edges[layer] / merged_edges[layer], 3)
            if merged_edges[layer] else 0.0,
        })
    total_per_hop = sum(per_hop_edges)
    total_merged = sum(merged_edges)
    return {
        "model": model,
        "graph": graph.name,
        "num_layers": num_layers,
        "fanout": fanout,
        "rows": rows,
        "total_per_hop_edges": total_per_hop,
        "total_merged_edges": total_merged,
        "aggregation_savings": round(1.0 - total_per_hop / total_merged, 3) if total_merged else 0.0,
        "no_layer_does_more_work": all(
            row["per_hop_edges"] <= row["merged_edges"] for row in rows
        ),
    }


def training_rows(study: Dict[str, object]) -> List[Dict[str, object]]:
    """The study's table rows (for ``format_table`` / markdown rendering)."""
    return list(study["rows"])


def main(argv: Optional[List[str]] = None) -> None:
    """CLI entry point; ``--markdown`` targets the CI job summary."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="rgat", choices=["rgcn", "rgat", "hgt"])
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument("--fanout", type=int, default=8)
    parser.add_argument("--markdown", action="store_true",
                        help="emit GitHub-flavoured markdown tables (for $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args(argv)
    study = training_study(model=args.model, epochs=args.epochs,
                           batch_size=args.batch_size, fanout=args.fanout)
    work = perhop_work_study(fanout=args.fanout)
    if args.markdown:
        print(f"### Training — {study['model']} on {study['graph']} ({study['epochs']} epochs)")
        print()
        print(format_markdown_table(training_rows(study)))
        print()
        print(f"**Sampled-vs-full final-loss gap: {study['loss_gap']}** "
              f"(both improved: {study['both_losses_improved']})")
        print()
        print(f"### Per-hop vs merged aggregation work — {work['num_layers']}-layer "
              f"{work['model']}, fanout {work['fanout']}")
        print()
        print(format_markdown_table(work["rows"]))
        print()
        print(f"**Aggregation savings: {work['aggregation_savings'] * 100:.1f}%** "
              f"(no layer does more work: {work['no_layer_does_more_work']})")
    else:
        from repro.evaluation.reporting import format_table

        print(format_table(training_rows(study),
                           title=f"Training study — {study['model']} on {study['graph']}"))
        print(f"sampled-vs-full final-loss gap: {study['loss_gap']}")
        print(format_table(work["rows"],
                           title=f"Per-hop vs merged work — {work['num_layers']}-layer {work['model']}"))
        print(f"aggregation savings: {work['aggregation_savings'] * 100:.1f}%")


if __name__ == "__main__":  # pragma: no cover - CLI
    main()
