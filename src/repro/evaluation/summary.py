"""Speed-up summary of Hector against the best baseline (Table 4)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.evaluation.end_to_end import EndToEndResult, run_full_comparison
from repro.evaluation.reporting import geometric_mean
from repro.models import MODEL_NAMES


def speedup_summary(
    results: Optional[Sequence[EndToEndResult]] = None,
    hector_labels: Sequence[str] = ("U", "C+R"),
    datasets: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Worst/average/best speed-ups of Hector vs the best baseline, per model and mode.

    Mirrors Table 4: the ``unopt.`` rows use the unoptimised configuration
    (``U``); the ``b. opt.`` rows use the best configuration available per
    cell (here ``C+R``); ``num_oom`` counts the datasets on which that Hector
    configuration itself runs out of memory.
    """
    if results is None:
        results = run_full_comparison(
            hector_configs=tuple(sorted(set(hector_labels))),
            datasets=datasets,
        )
    rows: List[Dict[str, object]] = []
    for label, row_name in (("U", "unopt."), ("C+R", "b. opt.")):
        if label not in hector_labels:
            continue
        for mode in ("training", "inference"):
            for model in MODEL_NAMES:
                cells = [r for r in results if r.model == model and r.mode == mode]
                speedups = []
                oom_count = 0
                for cell in cells:
                    hector_estimate = cell.estimates.get(f"Hector ({label})")
                    if hector_estimate is not None and hector_estimate.oom:
                        oom_count += 1
                    ratio = cell.hector_speedup(label)
                    if ratio is not None:
                        speedups.append(ratio)
                if not speedups:
                    continue
                rows.append(
                    {
                        "config": row_name,
                        "mode": mode,
                        "model": model.upper(),
                        "worst": min(speedups),
                        "average": geometric_mean(speedups),
                        "best": max(speedups),
                        "num_oom": oom_count,
                        "num_datasets": len(cells),
                    }
                )
    return rows
