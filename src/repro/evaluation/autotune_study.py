"""Autotuned vs. fixed-configuration ablation across models × datasets.

For every (model, dataset) cell of the Figure 8 suite the study prices each
fixed optimization configuration (U, C, R, C+R — Table 5) with the shared
roofline cost model, then lets the :mod:`repro.tuner` autotuner search the
full design space (the same pass switches plus elementwise fusion and the
per-template schedules) for that workload.  The resulting rows show where
tuning merely recovers the best fixed configuration and where the extra axes
— fusion, tile sizes, work assignment — beat every hand-picked point.

By default the study uses an ephemeral in-memory tuning database so repeated
studies (and benchmark runs) never touch the user's on-disk database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.evaluation.workload import WorkloadSpec
from repro.frontend.cache import CompilationCache
from repro.frontend.config import CONFIGURATIONS
from repro.gpu.device import DeviceSpec, RTX_3090
from repro.graph.datasets import dataset_names
from repro.models import MODEL_NAMES, build_program
from repro.tuner import TuningDatabase, TuningSpace, evaluate_candidate, tune_program


@dataclass
class AutotuneCell:
    """One (model, dataset, mode) cell of the ablation."""

    model: str
    dataset: str
    mode: str
    fixed_ms: Dict[str, Optional[float]] = field(default_factory=dict)
    auto_ms: float = 0.0
    auto_label: str = ""
    candidates_evaluated: int = 0
    db_hit: bool = False

    # ------------------------------------------------------------------
    @property
    def default_ms(self) -> Optional[float]:
        """Cost-model time of the default (unoptimised) configuration."""
        return self.fixed_ms.get("U")

    @property
    def best_fixed_label(self) -> Optional[str]:
        viable = {label: ms for label, ms in self.fixed_ms.items() if ms is not None}
        if not viable:
            return None
        return min(viable, key=viable.get)

    @property
    def best_fixed_ms(self) -> Optional[float]:
        label = self.best_fixed_label
        return None if label is None else self.fixed_ms[label]

    def speedup_vs_default(self) -> Optional[float]:
        if self.default_ms is None or self.auto_ms <= 0:
            return None
        return self.default_ms / self.auto_ms

    def speedup_vs_best_fixed(self) -> Optional[float]:
        best = self.best_fixed_ms
        if best is None or self.auto_ms <= 0:
            return None
        return best / self.auto_ms

    def as_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "model": self.model,
            "dataset": self.dataset,
            "mode": self.mode,
        }
        for label in CONFIGURATIONS:
            ms = self.fixed_ms.get(label)
            row[f"{label}_ms"] = None if ms is None else round(ms, 4)
        row["auto_ms"] = round(self.auto_ms, 4)
        row["auto_config"] = self.auto_label
        speedup = self.speedup_vs_best_fixed()
        row["auto_vs_best_fixed"] = None if speedup is None else round(speedup, 3)
        return row


def autotune_study(
    models: Sequence[str] = tuple(MODEL_NAMES),
    datasets: Optional[Sequence[str]] = None,
    mode: str = "inference",
    in_dim: int = 64,
    out_dim: int = 64,
    device: DeviceSpec = RTX_3090,
    space: Optional[TuningSpace] = None,
    search: str = "staged",
    db: Optional[TuningDatabase] = None,
) -> List[AutotuneCell]:
    """Run the autotuned-vs-fixed ablation over models × datasets.

    Args:
        models / datasets: the sweep; defaults to the paper's full suite.
        mode: ``"inference"`` or ``"training"`` (the tuning objective).
        in_dim / out_dim: feature dimensions (the paper uses 64/64).
        device: cost-model device.
        space / search: design space and strategy forwarded to the tuner.
        db: tuning database; defaults to a fresh in-memory one, so studies
            are self-contained and never write to disk.
    """
    datasets = list(datasets) if datasets is not None else dataset_names()
    db = db if db is not None else TuningDatabase(path=None)
    # Scoring compilations stay out of the process-global serving cache,
    # mirroring how the search itself uses a dedicated cache.
    scoring_cache = CompilationCache()
    cells: List[AutotuneCell] = []
    for model in models:
        program = build_program(model, in_dim=in_dim, out_dim=out_dim)
        for dataset in datasets:
            workload = WorkloadSpec.from_dataset(dataset, in_dim=in_dim, out_dim=out_dim)
            fixed: Dict[str, Optional[float]] = {}
            for label, options in CONFIGURATIONS.items():
                evaluation = evaluate_candidate(program, options, workload, device, mode, scoring_cache)
                fixed[label] = None if evaluation.oom else evaluation.estimated_ms
            result = tune_program(
                program,
                workload=workload,
                space=space,
                device=device,
                mode=mode,
                search=search,
                db=db,
            )
            cells.append(
                AutotuneCell(
                    model=model,
                    dataset=dataset,
                    mode=mode,
                    fixed_ms=fixed,
                    auto_ms=result.best.estimated_ms,
                    auto_label=result.best.label,
                    candidates_evaluated=len(result.candidates),
                    db_hit=result.db_hit,
                )
            )
    return cells


def autotune_rows(cells: Sequence[AutotuneCell]) -> List[Dict[str, object]]:
    """Flatten study cells into report rows (for ``reporting.format_table``)."""
    return [cell.as_row() for cell in cells]
