"""Evaluation harness: one module per table/figure of the paper's Section 4."""

from repro.evaluation.workload import WorkloadSpec
from repro.evaluation.end_to_end import EndToEndResult, run_end_to_end, run_full_comparison
from repro.evaluation.summary import speedup_summary
from repro.evaluation.optimizations import optimization_speedups
from repro.evaluation.breakdown import hector_kernel_breakdown, inference_time_breakdown
from repro.evaluation.memory_study import memory_footprint_study
from repro.evaluation.sweep import dimension_sweep
from repro.evaluation.arch_metrics import architectural_metrics
from repro.evaluation.loc_metric import programming_effort_metric
from repro.evaluation.autotune_study import AutotuneCell, autotune_rows, autotune_study
from repro.evaluation.artifact_cache_study import artifact_cache_study
from repro.evaluation.backend_study import backend_study
from repro.evaluation.multitenant_study import multitenant_rows, multitenant_study
from repro.evaluation.scaling_study import dispatch_bound_graph, scaling_rows, scaling_study
from repro.evaluation.serving_study import serving_rows, serving_study
from repro.evaluation.training_study import perhop_work_study, training_rows, training_study
from repro.evaluation import reporting

__all__ = [
    "WorkloadSpec",
    "EndToEndResult",
    "run_end_to_end",
    "run_full_comparison",
    "speedup_summary",
    "optimization_speedups",
    "inference_time_breakdown",
    "hector_kernel_breakdown",
    "memory_footprint_study",
    "dimension_sweep",
    "architectural_metrics",
    "programming_effort_metric",
    "AutotuneCell",
    "autotune_rows",
    "autotune_study",
    "artifact_cache_study",
    "backend_study",
    "multitenant_rows",
    "multitenant_study",
    "dispatch_bound_graph",
    "scaling_rows",
    "scaling_study",
    "serving_rows",
    "serving_study",
    "perhop_work_study",
    "training_rows",
    "training_study",
    "reporting",
]
