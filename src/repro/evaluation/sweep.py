"""Feature-dimension sweep of unoptimised Hector (Figure 11)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.hector_system import HectorSystem
from repro.evaluation.workload import WorkloadSpec
from repro.frontend.config import CONFIGURATIONS
from repro.gpu.device import DeviceSpec, RTX_3090
from repro.graph.datasets import dataset_names
from repro.models import MODEL_NAMES

#: The (input dimension, output dimension) points of Figure 11.
DIMENSION_POINTS: Tuple[Tuple[int, int], ...] = ((32, 32), (64, 64), (128, 128))


def dimension_sweep(
    models: Sequence[str] = tuple(MODEL_NAMES),
    datasets: Optional[Sequence[str]] = None,
    dimension_points: Sequence[Tuple[int, int]] = DIMENSION_POINTS,
    modes: Sequence[str] = ("inference", "training"),
    device: DeviceSpec = RTX_3090,
) -> List[Dict[str, object]]:
    """Figure 11: unoptimised Hector time per dataset × model × dimension.

    Vacant cells (``None`` time with ``OOM`` status) indicate out-of-memory,
    exactly as the empty cells of the paper's figure do.  The sub-linear time
    growth as dimensions double — the paper's headline observation from this
    figure — comes out of the occupancy-dependent efficiency of the cost
    model: larger GEMMs run closer to peak.
    """
    datasets = list(datasets) if datasets is not None else dataset_names()
    hector = HectorSystem(CONFIGURATIONS["U"])
    rows: List[Dict[str, object]] = []
    for model in models:
        for dataset in datasets:
            for in_dim, out_dim in dimension_points:
                workload = WorkloadSpec.from_dataset(dataset, in_dim=in_dim, out_dim=out_dim)
                for mode in modes:
                    training = mode == "training"
                    estimate = hector.estimate(model, workload, training, device)
                    rows.append(
                        {
                            "model": model.upper(),
                            "dataset": dataset,
                            "in_dim": in_dim,
                            "out_dim": out_dim,
                            "mode": mode,
                            "time_ms": estimate.time_ms,
                            "status": estimate.status(),
                        }
                    )
    return rows


def sublinearity_ratios(rows: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Time growth when dimensions double (should be < 4×, typically < 2×)."""
    ratios: List[Dict[str, object]] = []
    indexed = {
        (row["model"], row["dataset"], row["mode"], row["in_dim"]): row["time_ms"] for row in rows
    }
    for (model, dataset, mode, in_dim), time_ms in indexed.items():
        doubled = indexed.get((model, dataset, mode, in_dim * 2))
        if time_ms is None or doubled is None:
            continue
        ratios.append(
            {
                "model": model,
                "dataset": dataset,
                "mode": mode,
                "from_dim": in_dim,
                "to_dim": in_dim * 2,
                "time_ratio": doubled / time_ms,
            }
        )
    return ratios
