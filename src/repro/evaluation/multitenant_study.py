"""Multi-tenant serving study: 3-endpoint consolidation vs isolated engines.

The consolidation question GPU-sharing systems ask, posed to the serving
router: given three heterogeneous tenants — RGCN, RGAT, and HGT, each with
its own (different-sized, different-schema) parent graph — is one router
multiplexing all three under a shared arena budget better than three
isolated single-tenant deployments?

The study serves one mixed request stream (round-robin across endpoints,
with a fraction of *hot* seed sets that repeat, exercising the block cache)
through a consolidated router, then re-serves each endpoint's substream
through an isolated one-endpoint router, and reports:

* per-endpoint throughput/latency/cache rows for both configurations,
* the consolidated aggregate throughput vs. the *worst* isolated engine
  (the gate ``benchmarks/test_serving.py`` asserts ≥ 1.5×: a mixed stream
  amortises the heavy tenant's batches across the light tenants' fast ones),
* a bit-identical cross-check — every consolidated per-request result must
  equal the isolated one, i.e. zero cross-tenant corruption through the
  shared budget,
* the shared budget's per-tenant footprint/eviction counters.

All endpoints sample with ``fanout=None`` (full neighborhoods — one hop for
the light tenants, two for HGT), so sampling consumes no randomness and the
bit-identical check is exact, not approximate.

CI runs ``python -m repro.evaluation.multitenant_study --markdown`` and
publishes the table in the job summary.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.frontend.config import CompilerOptions
from repro.graph.generators import random_features, random_hetero_graph
from repro.graph.hetero_graph import HeteroGraph
from repro.serving.router import Router
from repro.evaluation.reporting import format_markdown_table

#: The three tenants: (endpoint name, model, priority, fanouts) — HGT is the
#: heavy tenant (largest graph, most expensive kernels, and a *two*-hop
#: sampler where the light tenants run one hop) and gets double weight.
#: ``fanout=None`` keeps full neighborhoods, so sampling stays deterministic
#: and the bit-identical cross-check below is exact.
TENANTS: Tuple[Tuple[str, str, int, Tuple[Optional[int], ...]], ...] = (
    ("rgcn-small", "rgcn", 1, (None,)),
    ("rgat-medium", "rgat", 1, (None,)),
    ("hgt-large", "hgt", 2, (None, None)),
)


def tenant_graphs(seed: int = 11) -> Dict[str, HeteroGraph]:
    """Three different-sized parent graphs, one per tenant (distinct schemas).

    The HGT tenant's graph is deliberately much larger: the consolidation
    headline is that mixing a heavy tenant with light ones beats the heavy
    tenant's isolated throughput, so the spread between tenants matters.
    """
    return {
        "rgcn-small": random_hetero_graph(
            num_nodes=160, num_edges=700, num_node_types=2, num_edge_types=4,
            seed=seed, name="tenant-small",
        ),
        "rgat-medium": random_hetero_graph(
            num_nodes=280, num_edges=1500, num_node_types=3, num_edge_types=6,
            seed=seed + 1, name="tenant-medium",
        ),
        "hgt-large": random_hetero_graph(
            num_nodes=1300, num_edges=16000, num_node_types=4, num_edge_types=10,
            seed=seed + 2, name="tenant-large",
        ),
    }


def mixed_stream(
    graphs: Dict[str, HeteroGraph],
    num_requests: int,
    seeds_per_request: int,
    hot_fraction: float,
    hot_sets_per_endpoint: int,
    seed: int,
    batch_size: int = 8,
) -> List[Tuple[str, np.ndarray]]:
    """A mixed request stream, round-robin across tenants, with hot bursts.

    Hot traffic is *bursty*, as trending content is in production: each
    tenant's sub-stream is generated in phases of ``batch_size`` requests,
    and a hot phase repeats one of the tenant's ``hot_sets_per_endpoint``
    fixed seed tuples for the whole phase.  A hot phase therefore fills one
    micro-batch whose seed-set union recurs exactly, which is the workload
    the per-endpoint block cache (keyed on the frozen union) accelerates.
    The first phase of every tenant is always hot (with hot set 0), so a
    hot-seed workload *provably* re-presents at least one union; remaining
    phases are hot with probability ``hot_fraction``.
    """
    rng = np.random.default_rng(seed)
    names = list(graphs)
    hot_pools = {
        name: [
            rng.choice(graphs[name].num_nodes, size=seeds_per_request, replace=False)
            for _ in range(hot_sets_per_endpoint)
        ]
        for name in names
    }
    per_tenant = {name: [] for name in names}
    quota = {name: num_requests // len(names) + (1 if i < num_requests % len(names) else 0)
             for i, name in enumerate(names)}
    for name in names:
        phase = 0
        while len(per_tenant[name]) < quota[name]:
            hot = phase == 0 or rng.random() < hot_fraction
            hot_set = hot_pools[name][phase % hot_sets_per_endpoint] if hot else None
            for _ in range(min(batch_size, quota[name] - len(per_tenant[name]))):
                seeds = hot_set if hot else rng.choice(
                    graphs[name].num_nodes, size=seeds_per_request, replace=False
                )
                per_tenant[name].append(np.asarray(seeds, dtype=np.int64))
            phase += 1
    # Interleave round-robin so admission alternates across tenants.
    stream: List[Tuple[str, np.ndarray]] = []
    cursors = {name: 0 for name in names}
    while any(cursors[name] < len(per_tenant[name]) for name in names):
        for name in names:
            if cursors[name] < len(per_tenant[name]):
                stream.append((name, per_tenant[name][cursors[name]]))
                cursors[name] += 1
    return stream


def _register_tenants(
    router: Router,
    graphs: Dict[str, HeteroGraph],
    features: Dict[str, np.ndarray],
    *,
    only: Optional[str],
    in_dim: int,
    out_dim: int,
    max_batch_size: int,
    block_cache_size: int,
    options: CompilerOptions,
) -> None:
    for index, (name, model, priority, fanouts) in enumerate(TENANTS):
        if only is not None and name != only:
            continue
        router.register(
            name,
            model,
            graphs[name],
            in_dim=in_dim,
            out_dim=out_dim,
            options=options,
            features=features[name],
            fanouts=fanouts,
            priority=priority,
            max_batch_size=max_batch_size,
            block_cache_size=block_cache_size,
            sampler_seed=index,
            seed=index,
        )


def multitenant_study(
    num_requests: int = 60,
    seeds_per_request: int = 3,
    hot_fraction: float = 0.35,
    hot_sets_per_endpoint: int = 3,
    in_dim: int = 16,
    out_dim: int = 16,
    max_batch_size: int = 8,
    block_cache_size: int = 16,
    arena_capacity_bytes: Optional[int] = 48 << 20,
    seed: int = 0,
) -> Dict[str, object]:
    """Run the consolidated-vs-isolated comparison on one mixed stream.

    Returns a dict with per-endpoint ``rows`` (consolidated + isolated
    throughput side by side), the ``aggregate`` consolidated report,
    ``speedup_vs_worst_isolated``, the ``bit_identical`` corruption check,
    and the shared ``arena_budget`` report.
    """
    graphs = tenant_graphs()
    features = {
        name: random_features(graph, in_dim, seed=seed + index)
        for index, (name, graph) in enumerate(graphs.items())
    }
    options = CompilerOptions(emit_backward=False, compact_materialization=True)
    stream = mixed_stream(
        graphs, num_requests, seeds_per_request, hot_fraction,
        hot_sets_per_endpoint, seed, batch_size=max_batch_size,
    )

    def build_router(only: Optional[str] = None) -> Router:
        router = Router(arena_capacity_bytes=arena_capacity_bytes)
        _register_tenants(
            router, graphs, features, only=only, in_dim=in_dim, out_dim=out_dim,
            max_batch_size=max_batch_size, block_cache_size=block_cache_size,
            options=options,
        )
        # Warm every endpoint once (compile happened at register; one
        # throwaway query warms arenas and numpy dispatch), then restart
        # telemetry so reported numbers cover only the measured stream.
        for name in router.endpoint_names:
            first = next(seeds for stream_name, seeds in stream if stream_name == name)
            router.query(name, first)
        router.reset_stats()
        return router

    # --- consolidated: one router, all tenants, one shared budget ---------
    # The stream goes through serve() (not submit+flush) so reported latency
    # is queueing + service: a light-tenant request that waited behind a
    # heavy tenant's batches shows that wait — the latency cost
    # consolidation introduces is part of the comparison, not hidden.
    consolidated = build_router()
    consolidated_report = consolidated.serve([(name, seeds) for name, seeds in stream])
    consolidated_requests = consolidated.last_served

    # --- isolated: one single-tenant router per endpoint -------------------
    isolated_reports: Dict[str, Dict[str, object]] = {}
    isolated_results: Dict[int, np.ndarray] = {}
    for name, _, _, _ in TENANTS:
        router = build_router(only=name)
        indices = [i for i, (n, _) in enumerate(stream) if n == name]
        router.serve([(name, stream[i][1]) for i in indices])
        isolated_reports[name] = router.report()["endpoints"][name]
        for i, request in zip(indices, router.last_served):
            isolated_results[i] = request.result

    # --- cross-checks and headline numbers ---------------------------------
    bit_identical = all(
        np.array_equal(consolidated_requests[i].result, isolated_results[i])
        for i in range(len(stream))
    )
    isolated_rps = {
        name: float(report["throughput_rps"]) for name, report in isolated_reports.items()
    }
    worst_isolated = min(isolated_rps, key=isolated_rps.get)
    consolidated_rps = float(consolidated_report["aggregate"]["throughput_rps"])
    speedup = (
        consolidated_rps / isolated_rps[worst_isolated]
        if isolated_rps[worst_isolated] else float("inf")
    )

    rows = []
    for name, model, priority, _ in TENANTS:
        consolidated_row = consolidated_report["endpoints"][name]
        isolated_row_rps = float(isolated_reports[name]["throughput_rps"])
        consolidated_row_rps = float(consolidated_row["throughput_rps"])
        rows.append({
            "endpoint": name,
            "model": model,
            "graph": graphs[name].name,
            "priority": priority,
            "requests": consolidated_row["requests"],
            "consolidated_rps": consolidated_row["throughput_rps"],
            "isolated_rps": isolated_reports[name]["throughput_rps"],
            # Per-tenant cost of sharing the executor: service rate under
            # consolidation relative to isolation (1.0 = no overhead).  The
            # benchmark floors this, so the headline speedup-vs-worst cannot
            # mask a scheduler regression that slows every tenant down.
            "consolidation_ratio": round(
                consolidated_row_rps / isolated_row_rps if isolated_row_rps else float("inf"), 3
            ),
            "latency_p95_ms": consolidated_row["latency_p95_ms"],
            "block_cache_hit_rate": consolidated_row.get("block_cache_hit_rate"),
            "arena_hits": consolidated_row.get("arena_hits"),
            "arena_evictions": consolidated_row.get("arena_evictions"),
        })

    return {
        "rows": rows,
        "aggregate": consolidated_report["aggregate"],
        "arena_budget": consolidated_report["arena_budget"],
        "bit_identical": bit_identical,
        "worst_isolated": worst_isolated,
        "speedup_vs_worst_isolated": round(speedup, 2),
        "num_requests": num_requests,
        "execution_log": list(consolidated.execution_log),
    }


def multitenant_rows(study: Dict[str, object]) -> List[Dict[str, object]]:
    """The study's table rows (for ``format_table`` / markdown rendering)."""
    return list(study["rows"])


def main(argv: Optional[List[str]] = None) -> None:
    """CLI entry point; ``--markdown`` targets the CI job summary."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=60)
    parser.add_argument("--seeds-per-request", type=int, default=3)
    parser.add_argument("--max-batch-size", type=int, default=8)
    parser.add_argument("--markdown", action="store_true",
                        help="emit a GitHub-flavoured markdown table (for $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args(argv)
    study = multitenant_study(
        num_requests=args.requests,
        seeds_per_request=args.seeds_per_request,
        max_batch_size=args.max_batch_size,
    )
    budget = study["arena_budget"]
    if args.markdown:
        print("### Multi-tenant serving — 3 endpoints, one shared arena budget")
        print()
        print(format_markdown_table(multitenant_rows(study)))
        print()
        aggregate = study["aggregate"]
        print(f"**Consolidated throughput: {aggregate['throughput_rps']} rps — "
              f"{study['speedup_vs_worst_isolated']}× the worst isolated engine "
              f"({study['worst_isolated']}).** "
              f"Bit-identical to isolation: {study['bit_identical']}. "
              f"Budget: {budget['live_bytes']}/{budget['capacity_bytes']} bytes live, "
              f"{budget['evictions']} evictions.")
    else:
        from repro.evaluation.reporting import format_table

        print(format_table(multitenant_rows(study),
                           title="Multi-tenant serving — consolidated vs isolated"))
        print(f"consolidated {study['aggregate']['throughput_rps']} rps = "
              f"{study['speedup_vs_worst_isolated']}x worst isolated "
              f"({study['worst_isolated']}); bit-identical: {study['bit_identical']}; "
              f"budget evictions: {budget['evictions']}")


if __name__ == "__main__":  # pragma: no cover - CLI
    main()
