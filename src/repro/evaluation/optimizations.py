"""Effect of compact materialization and linear operator reordering (Table 5).

For RGAT and HGT, each dataset, and each mode, the harness compares the three
optimised configurations (C, R, C+R) against the unoptimised Hector code.
Cells where the unoptimised configuration runs out of memory are normalised
against the compacted configuration instead, as the paper does for RGAT on
mag and wikikg2 (the ``*`` footnote of Table 5).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines.hector_system import HectorSystem
from repro.evaluation.reporting import geometric_mean
from repro.evaluation.workload import WorkloadSpec
from repro.frontend.config import CONFIGURATIONS
from repro.gpu.device import DeviceSpec, RTX_3090
from repro.graph.datasets import dataset_names

#: Table 5 studies the two attention models only.
OPTIMIZATION_MODELS = ("rgat", "hgt")
CONFIG_LABELS = ("U", "C", "R", "C+R")


def optimization_speedups(
    models: Sequence[str] = OPTIMIZATION_MODELS,
    datasets: Optional[Sequence[str]] = None,
    modes: Sequence[str] = ("training", "inference"),
    in_dim: int = 64,
    out_dim: int = 64,
    device: DeviceSpec = RTX_3090,
) -> List[Dict[str, object]]:
    """Speed-up of C / R / C+R over unoptimised Hector, per model × dataset × mode."""
    datasets = list(datasets) if datasets is not None else dataset_names()
    systems = {label: HectorSystem(CONFIGURATIONS[label]) for label in CONFIG_LABELS}
    rows: List[Dict[str, object]] = []
    for mode in modes:
        training = mode == "training"
        for model in models:
            per_config_speedups: Dict[str, List[float]] = {label: [] for label in CONFIG_LABELS[1:]}
            for dataset in datasets:
                workload = WorkloadSpec.from_dataset(dataset, in_dim=in_dim, out_dim=out_dim)
                estimates = {
                    label: systems[label].estimate(model, workload, training, device)
                    for label in CONFIG_LABELS
                }
                # Normalise against U, or against C when U itself is OOM (the
                # asterisked cells of Table 5).
                reference = estimates["U"].time_ms
                reference_label = "U"
                if reference is None and estimates["C"].time_ms is not None:
                    reference = estimates["C"].time_ms
                    reference_label = "C"
                row: Dict[str, object] = {
                    "model": model.upper(),
                    "mode": mode,
                    "dataset": dataset,
                    "reference": reference_label,
                }
                for label in CONFIG_LABELS[1:]:
                    time_ms = estimates[label].time_ms
                    if reference is None or time_ms is None:
                        row[label] = None
                        continue
                    ratio = reference / time_ms
                    row[label] = ratio
                    per_config_speedups[label].append(ratio)
                rows.append(row)
            average_row: Dict[str, object] = {
                "model": model.upper(),
                "mode": mode,
                "dataset": "AVERAGE",
                "reference": "U",
            }
            for label in CONFIG_LABELS[1:]:
                values = per_config_speedups[label]
                average_row[label] = geometric_mean(values) if values else None
            rows.append(average_row)
    return rows


def best_fixed_strategy(rows: Sequence[Dict[str, object]]) -> str:
    """The configuration with the highest average speed-up across all scenarios.

    The paper finds that enabling both compaction and reordering is the best
    fixed strategy on average in all four (model × mode) scenarios.
    """
    averages = [row for row in rows if row.get("dataset") == "AVERAGE"]
    totals: Dict[str, List[float]] = {label: [] for label in CONFIG_LABELS[1:]}
    for row in averages:
        for label in CONFIG_LABELS[1:]:
            value = row.get(label)
            if value is not None:
                totals[label].append(float(value))
    scores = {label: geometric_mean(values) if values else 0.0 for label, values in totals.items()}
    return max(scores, key=scores.get)
