"""Artifact-cache study: cold vs warm compile time-to-first-run.

The persistent codegen artifact cache
(:mod:`repro.ir.codegen.artifact_cache`) lets a warm process — one that
compiled the same (plan, options, schema) in an earlier run — skip source
generation and ``compile()`` entirely.  This study measures that effect per
model: each compile runs with the compilation cache disabled, so every call
pays the frontend pipeline, and the cold/warm delta isolates exactly the
work the artifact cache removes.  ``benchmarks/test_perf_regression.py``
gates the ≥5× warm speedup; CI publishes this table in the job summary
(``python -m repro.evaluation.artifact_cache_study --markdown``).
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time
from typing import Dict, List, Optional

from repro.frontend.compiler import compile_model
from repro.frontend.config import CompilerOptions
from repro.graph.hetero_graph import HeteroGraph
from repro.ir.codegen.artifact_cache import CACHE_ENV, artifact_cache_stats
from repro.evaluation.backend_study import default_study_graph
from repro.evaluation.reporting import format_markdown_table


def artifact_cache_study(
    models: Optional[List[str]] = None,
    graph: Optional[HeteroGraph] = None,
    dim: int = 16,
    backend: str = "mixed",
    warm_repeats: int = 5,
) -> Dict[str, object]:
    """Cold vs warm compile times against a private artifact directory.

    Repoints ``$REPRO_CODEGEN_CACHE`` at a fresh temporary directory (the
    override is re-resolved per compile, exactly so tools like this can do
    it), compiles each model once cold and ``warm_repeats`` times warm, and
    reports the best warm time plus the hit/miss counters.  The original
    environment is restored on exit.
    """
    models = models or ["rgcn", "rgat", "hgt"]
    graph = graph if graph is not None else default_study_graph()
    options = CompilerOptions(
        backend=backend, emit_backward=True, enable_compilation_cache=False
    )

    previous = os.environ.get(CACHE_ENV)
    rows: List[Dict[str, object]] = []
    try:
        with tempfile.TemporaryDirectory(prefix="repro-artifact-study-") as tmp:
            os.environ[CACHE_ENV] = tmp
            for model in models:
                start = time.perf_counter()
                compile_model(model, graph, in_dim=dim, out_dim=dim, options=options)
                cold = time.perf_counter() - start
                warm = float("inf")
                for _ in range(warm_repeats):
                    start = time.perf_counter()
                    compile_model(model, graph, in_dim=dim, out_dim=dim, options=options)
                    warm = min(warm, time.perf_counter() - start)
                rows.append(
                    {
                        "model": model,
                        "backend": backend,
                        "cold_ms": round(cold * 1e3, 2),
                        "warm_ms": round(warm * 1e3, 2),
                        "speedup": round(cold / warm, 1),
                    }
                )
            stats = artifact_cache_stats()
    finally:
        if previous is None:
            os.environ.pop(CACHE_ENV, None)
        else:
            os.environ[CACHE_ENV] = previous
    return {
        "graph": graph.name,
        "dim": dim,
        "rows": rows,
        "stats": stats,
        "min_speedup": min(row["speedup"] for row in rows),
    }


def main(argv: Optional[List[str]] = None) -> None:
    """CLI entry point; ``--markdown`` targets the CI job summary."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--models", nargs="+", default=["rgcn", "rgat", "hgt"],
                        choices=["rgcn", "rgat", "hgt"])
    parser.add_argument("--dim", type=int, default=16)
    parser.add_argument("--backend", default="mixed")
    parser.add_argument("--warm-repeats", type=int, default=5)
    parser.add_argument("--markdown", action="store_true",
                        help="emit a GitHub-flavoured markdown table (for $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args(argv)
    study = artifact_cache_study(
        models=args.models, dim=args.dim, backend=args.backend,
        warm_repeats=args.warm_repeats,
    )
    rows = list(study["rows"])
    stats = study["stats"]
    if args.markdown:
        print(f"### Artifact cache — cold vs warm compile on {study['graph']} (d={study['dim']})")
        print()
        print(format_markdown_table(rows))
        print()
        print(f"**Minimum warm speedup: {study['min_speedup']}×** "
              f"(cache: {stats['hits']} hits, {stats['misses']} misses, "
              f"{stats['stores']} stores)")
    else:
        from repro.evaluation.reporting import format_table

        print(format_table(rows, title="Artifact cache — cold vs warm compile"))
        print(f"min warm speedup: {study['min_speedup']}x; stats: {stats}")


if __name__ == "__main__":
    main()
