"""Execution-time breakdowns (Figures 3 and 9).

* :func:`inference_time_breakdown` — how Graphiler and Hector spend their
  inference time (matrix multiply vs indexing/copying vs other compute vs host
  overhead) on HGT and RGAT over FB15k and MUTAG (Figure 3).
* :func:`hector_kernel_breakdown` — Hector's RGAT inference time split into
  GEMM, traversal, and other kernels under the four optimization
  configurations on AM and FB15k (Figure 9).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.baselines.hector_system import HECTOR_HOST_OVERHEAD_US, HectorSystem
from repro.baselines.systems import ALL_BASELINES
from repro.evaluation.workload import WorkloadSpec
from repro.frontend.config import CONFIGURATIONS
from repro.gpu.costmodel import estimate_execution
from repro.gpu.device import DeviceSpec, RTX_3090

#: Category labels used by Figure 3.
FIGURE3_CATEGORIES = ("matrix_multiply_ms", "indexing_copy_ms", "other_compute_ms", "host_overhead_ms")


def _categorise_fig3(time_by_category: Dict[str, float]) -> Dict[str, float]:
    seconds = {
        "matrix_multiply_ms": time_by_category.get("gemm", 0.0),
        "indexing_copy_ms": time_by_category.get("index_copy", 0.0),
        "other_compute_ms": time_by_category.get("traversal", 0.0) + time_by_category.get("fallback", 0.0),
        "host_overhead_ms": time_by_category.get("host_overhead", 0.0),
    }
    return {key: value * 1e3 for key, value in seconds.items()}


def inference_time_breakdown(
    models: Sequence[str] = ("hgt", "rgat"),
    datasets: Sequence[str] = ("fb15k", "mutag"),
    in_dim: int = 64,
    out_dim: int = 64,
    device: DeviceSpec = RTX_3090,
) -> List[Dict[str, object]]:
    """Figure 3: Graphiler vs Hector inference-time breakdown."""
    graphiler = ALL_BASELINES["Graphiler"]
    hector = HectorSystem(CONFIGURATIONS["U"])
    rows: List[Dict[str, object]] = []
    for model in models:
        for dataset in datasets:
            workload = WorkloadSpec.from_dataset(dataset, in_dim=in_dim, out_dim=out_dim)
            graphiler_estimate = estimate_execution(
                graphiler.works(model, workload, training=False), device,
                graphiler.config.host_overhead_us,
            )
            hector_estimate = estimate_execution(
                hector.works(model, workload, training=False), device, HECTOR_HOST_OVERHEAD_US,
            )
            for system_name, estimate in (("Graphiler", graphiler_estimate), ("Hector", hector_estimate)):
                row: Dict[str, object] = {"model": model.upper(), "dataset": dataset, "system": system_name}
                row.update(_categorise_fig3(estimate.time_by_category()))
                row["total_ms"] = estimate.total_time_ms
                rows.append(row)
    return rows


def hector_kernel_breakdown(
    model: str = "rgat",
    datasets: Sequence[str] = ("am", "fb15k"),
    configs: Sequence[str] = ("U", "C", "R", "C+R"),
    training: bool = False,
    in_dim: int = 64,
    out_dim: int = 64,
    device: DeviceSpec = RTX_3090,
) -> List[Dict[str, object]]:
    """Figure 9: Hector kernel-category breakdown per optimization configuration."""
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        workload = WorkloadSpec.from_dataset(dataset, in_dim=in_dim, out_dim=out_dim)
        for label in configs:
            system = HectorSystem(CONFIGURATIONS[label])
            estimate = system.estimate(model, workload, training, device)
            if estimate.oom or estimate.estimate is None:
                rows.append({
                    "dataset": dataset, "config": label, "gemm_ms": None,
                    "traversal_ms": None, "others_ms": None, "total_ms": None, "status": "OOM",
                })
                continue
            by_category = estimate.estimate.time_by_category()
            rows.append(
                {
                    "dataset": dataset,
                    "config": label,
                    "gemm_ms": by_category.get("gemm", 0.0) * 1e3,
                    "traversal_ms": by_category.get("traversal", 0.0) * 1e3,
                    "others_ms": (by_category.get("fallback", 0.0) + by_category.get("host_overhead", 0.0)) * 1e3,
                    "total_ms": estimate.estimate.total_time_ms,
                    "status": "ok",
                }
            )
    return rows
