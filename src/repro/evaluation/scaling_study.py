"""Data-parallel scaling study: sharded training across worker counts.

For each worker count the study trains the *same* workload through
:class:`~repro.train.distributed.ShardedTrainer` and reports, per row:

* per-worker seed throughput (each shard's seeds over its own busy time,
  reported as the mean across shards);
* collective traffic (all-reduce operations, megabytes moved, reduce time);
* the modelled aggregate throughput — total seeds over the critical path
  (slowest shard's busy time plus the collective's reduce time), which is
  what data-parallel wall-clock converges to once workers stop contending
  for one interpreter lock;
* efficiency — aggregate speedup over the 1-worker row divided by the
  worker count.

Busy time is per-worker **CPU time** (``time.thread_time``), so in-process
thread workers are charged for their own compute, not for waiting out the
GIL — the study measures the sharding, not CPython's scheduler.  The
workload is the dispatch-bound cell of the backend study (many small typed
edge groups, tiny features), where per-minibatch Python dispatch dominates
and sharding pays off fastest.

``benchmarks/test_scaling.py`` gates the 4-worker aggregate at >= 1.8x the
1-worker row; CI publishes the 1/2/4/8-worker table in the job summary
(``python -m repro.evaluation.scaling_study --markdown``).
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence

from repro.frontend.compiler import compile_model
from repro.graph.generators import random_features, random_labels
from repro.graph.datasets import random_hetero_graph
from repro.graph.hetero_graph import HeteroGraph
from repro.train import ShardedTrainer
from repro.evaluation.reporting import format_markdown_table

DIM = 8
WORKER_COUNTS = (1, 2, 4, 8)


def dispatch_bound_graph(seed: int = 23) -> HeteroGraph:
    """The backend study's dispatch-bound cell: many tiny typed edge groups."""
    return random_hetero_graph(
        num_nodes=120, num_edges=500, num_node_types=3, num_edge_types=6, seed=seed,
        name="dispatch-bound",
    )


def scaling_study(
    model: str = "rgcn",
    graph: Optional[HeteroGraph] = None,
    worker_counts: Sequence[int] = WORKER_COUNTS,
    epochs: int = 2,
    batch_size: int = 10,
    collective: str = "local",
    lr: float = 0.1,
    seed: int = 0,
) -> Dict[str, object]:
    """Train the workload at every worker count; returns rows + speedups.

    Every row trains from identical initial parameters (same compile seed)
    over identical global minibatch streams — the runs differ only in how
    the minibatches are spread across workers.  Returns ``{"rows": [...],
    "aggregate_speedups": {workers: x}, "efficiencies": {workers: x}}``.
    """
    graph = graph if graph is not None else dispatch_bound_graph()
    features = random_features(graph, DIM, seed=seed)
    labels = random_labels(graph, DIM, seed=seed + 1)

    rows: List[Dict[str, object]] = []
    baseline_aggregate: Optional[float] = None
    for workers in worker_counts:
        trainer = ShardedTrainer(
            lambda: compile_model(model, graph, in_dim=DIM, out_dim=DIM, seed=seed),
            graph, features, labels,
            num_shards=workers, collective=collective,
            optimizer="adam", lr=lr, batch_size=batch_size,
            accumulation_steps=1, fanouts=(None,),
            sampler_seed=seed, shuffle_seed=seed,
        )
        trainer.train(epochs)
        summary = trainer.summary()
        shard_rows = trainer.stats.per_shard_summary()
        per_worker = [row["seeds_per_s"] for row in shard_rows if row["busy_s"] > 0]
        aggregate = float(summary["aggregate_seeds_per_s"])
        if baseline_aggregate is None:
            baseline_aggregate = aggregate
        speedup = aggregate / baseline_aggregate if baseline_aggregate else 0.0
        rows.append({
            "workers": workers,
            "final_loss": summary["final_loss"],
            "worker_seeds_per_s": round(sum(per_worker) / len(per_worker), 1) if per_worker else 0.0,
            "aggregate_seeds_per_s": round(aggregate, 1),
            "speedup": round(speedup, 2),
            "efficiency": round(speedup / workers, 2),
            "all_reduce_ops": summary["all_reduce_ops"],
            "all_reduce_mb": summary["all_reduce_mb"],
            "all_reduce_s": summary["all_reduce_s"],
            "max_shard_busy_s": summary["max_shard_busy_s"],
        })
    losses = {row["final_loss"] for row in rows}
    return {
        "model": model,
        "graph": graph.name,
        "epochs": epochs,
        "collective": collective,
        "rows": rows,
        "aggregate_speedups": {row["workers"]: row["speedup"] for row in rows},
        "efficiencies": {row["workers"]: row["efficiency"] for row in rows},
        # Exact sampling + identical seeds: every worker count must land on
        # the same loss (the bit-identity lockdown, visible in the table).
        "losses_identical": len(losses) == 1,
    }


def scaling_rows(study: Dict[str, object]) -> List[Dict[str, object]]:
    """The study's table rows (for ``format_table`` / markdown rendering)."""
    return list(study["rows"])


def main(argv: Optional[List[str]] = None) -> None:
    """CLI entry point; ``--markdown`` targets the CI job summary."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="rgcn", choices=["rgcn", "rgat", "hgt"])
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--batch-size", type=int, default=10)
    parser.add_argument("--workers", type=int, nargs="+", default=list(WORKER_COUNTS))
    parser.add_argument("--collective", default="local", choices=["local", "shm", "multiprocessing"])
    parser.add_argument("--markdown", action="store_true",
                        help="emit GitHub-flavoured markdown tables (for $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args(argv)
    study = scaling_study(model=args.model, epochs=args.epochs, batch_size=args.batch_size,
                          worker_counts=args.workers, collective=args.collective)
    if args.markdown:
        print(f"### Data-parallel scaling — {study['model']} on {study['graph']} "
              f"({study['epochs']} epochs, {study['collective']} collective)")
        print()
        print(format_markdown_table(scaling_rows(study)))
        print()
        print(f"**Losses identical across worker counts: {study['losses_identical']}** "
              f"(the bit-identity guarantee, visible end to end)")
    else:
        from repro.evaluation.reporting import format_table

        print(format_table(scaling_rows(study),
                           title=f"Scaling study — {study['model']} on {study['graph']}"))
        print(f"losses identical across worker counts: {study['losses_identical']}")


if __name__ == "__main__":  # pragma: no cover - CLI
    main()
