"""Programming-effort metric (Section 4.1).

The paper reports that expressing RGCN, RGAT, and HGT took 51 lines of code in
total, from which Hector generated more than 3K lines of CUDA kernels, 5K
lines of C++ host code, and 2K lines of Python glue.  This module measures the
same quantities for the reproduction: the size of the model definitions fed to
the compiler and the size of every generated artefact.
"""

from __future__ import annotations

import inspect
from typing import Dict, List, Sequence

from repro.frontend.compiler import compile_program
from repro.frontend.config import CompilerOptions
from repro.models import MODEL_BUILDERS, MODEL_NAMES, build_program


def _builder_source_lines(model: str) -> int:
    """Count the source lines of a model's IR-builder definition (sans blanks/comments)."""
    source = inspect.getsource(MODEL_BUILDERS[model])
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#") or stripped.startswith('"""') or stripped.startswith("'''"):
            continue
        count += 1
    return count


def programming_effort_metric(
    models: Sequence[str] = tuple(MODEL_NAMES),
    options: CompilerOptions = None,
) -> Dict[str, object]:
    """Input vs generated line counts for the three models."""
    options = options or CompilerOptions()
    per_model: List[Dict[str, object]] = []
    totals = {"input_lines": 0, "generated_python": 0, "generated_cuda": 0, "generated_host": 0}
    for model in models:
        program = build_program(model)
        result = compile_program(program, options)
        counts = result.generated_line_counts()
        row = {
            "model": model,
            "input_operator_lines": program.source_line_count(),
            "input_builder_lines": _builder_source_lines(model),
            "generated_python_lines": counts["python_kernels"],
            "generated_cuda_lines": counts["cuda_kernels"],
            "generated_host_lines": counts["host_code"],
        }
        per_model.append(row)
        totals["input_lines"] += row["input_operator_lines"]
        totals["generated_python"] += row["generated_python_lines"]
        totals["generated_cuda"] += row["generated_cuda_lines"]
        totals["generated_host"] += row["generated_host_lines"]
    totals["generated_total"] = (
        totals["generated_python"] + totals["generated_cuda"] + totals["generated_host"]
    )
    totals["expansion_factor"] = totals["generated_total"] / max(totals["input_lines"], 1)
    return {"per_model": per_model, "totals": totals}
