"""Backend registry: pluggable code-generation targets for kernel plans.

Execution used to be hardwired — ``frontend/compiler.py`` imported
``generate_python_module`` and ``generate_cuda_source`` directly.  The
registry decouples plan lowering from artifact generation behind a small
protocol, in the style of gt4py's ``BaseBackend`` + ``register`` pattern:

* :class:`Backend` — ``name``, ``generate(plan, options) -> module``, and the
  capability flags ``executes`` (produces runnable callables),
  ``emits_source`` (produces inspectable source text), and
  ``supports_training`` (generates backward artifacts).
* :func:`register_backend` / :func:`get_backend` / :func:`available_backends`
  — the registry surface, re-exported from :mod:`repro`.

Three backends are registered on import:

* ``python-interp`` — one Python function per kernel plus a fused dispatch
  program (:func:`repro.ir.codegen.python_backend.build_python_module`);
  today's :class:`~repro.runtime.executor.PlanExecutor` path.
* ``python-codegen`` — one specialised whole-plan ``main_forward`` /
  ``main_backward`` source function, kernels inlined and segment loops
  unrolled (:func:`repro.ir.codegen.codegen_backend.build_codegen_module`).
* ``mixed`` — per-kernel backend selection: interp functions for
  numpy-bound traversal kernels, whole-plan codegen segments for
  dispatch-bound chains, one dispatcher in plan order
  (:func:`repro.ir.codegen.mixed_backend.build_mixed_module`).
* ``cuda-emit`` — CUDA-like source text only
  (:func:`repro.ir.codegen.cuda_backend.build_cuda_source`); inspection and
  the programming-effort metric, never execution.

New executing targets (numba, C via ctypes, …) drop in as further
registrants: subclass :class:`Backend`, return an object exposing
``forward_program(env, ctx)`` / ``backward_program(env, ctx)``, and select it
with ``CompilerOptions(backend="<name>")``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.ir.intra_op.plan import KernelPlan


@dataclass(frozen=True)
class BackendOptions:
    """Generation-time knobs the compiler hands to :meth:`Backend.generate`.

    Attributes:
        num_edge_types / num_node_types: relation counts of the graph schema
            the plan is compiled against, or ``None`` when compiling without
            a graph.  Backends may use them to specialise the artifact (the
            codegen backend unrolls its per-relation launch loops); the cache
            key already includes the schema fingerprint, so schema-specialised
            artifacts never leak across schemas.
        workload: optional :class:`~repro.evaluation.workload.WorkloadSpec`
            of the compile-time graph; the mixed backend prices kernels with
            it to choose per-kernel executors.
        mixed_assignment: explicit per-kernel ``(name, "interp"|"codegen")``
            overrides (``CompilerOptions.mixed_assignment``) for the mixed
            backend; other backends ignore it.
        artifact_key: persistent artifact-cache key derived from the
            compilation-cache key (:func:`repro.ir.codegen.artifact_cache.
            artifact_key_for`); backends that generate-and-``exec`` use it to
            skip both on a warm process.  ``None`` disables persistence.
    """

    num_edge_types: Optional[int] = None
    num_node_types: Optional[int] = None
    workload: Optional[object] = None
    mixed_assignment: Optional[tuple] = None
    artifact_key: Optional[str] = None


@dataclass
class SourceModule:
    """Artifact of an emit-only backend: source text, nothing runnable."""

    source: str

    def line_count(self) -> int:
        """Number of generated source lines (for the programming-effort metric)."""
        return len(self.source.splitlines())


class Backend(abc.ABC):
    """One code-generation target for lowered kernel plans.

    Attributes:
        name: registry key, the value of ``CompilerOptions(backend=...)``.
        executes: whether :meth:`generate` returns a runnable module (an
            object with ``forward_program`` / ``backward_program`` callables
            the :class:`~repro.runtime.executor.PlanExecutor` can drive).
            Emit-only backends (``cuda-emit``) set this ``False`` and are
            rejected as execution backends by ``compile_program``.
        emits_source: whether the generated artifact carries inspectable
            source text in a ``source`` attribute.
        supports_training: whether the backend generates backward artifacts
            for plans compiled with ``emit_backward=True``.
    """

    name: str = ""
    executes: bool = False
    emits_source: bool = True
    supports_training: bool = False

    @abc.abstractmethod
    def generate(self, plan: KernelPlan, options: Optional[BackendOptions] = None):
        """Produce this backend's artifact for ``plan``."""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        flags = ",".join(
            flag
            for flag in ("executes", "emits_source", "supports_training")
            if getattr(self, flag)
        )
        return f"<{type(self).__name__} {self.name!r} [{flags}]>"


_REGISTRY: Dict[str, Backend] = {}


def register_backend(backend: Backend, replace: bool = False) -> Backend:
    """Register ``backend`` under its ``name``; returns it for chaining.

    Args:
        backend: a :class:`Backend` instance with a non-empty ``name``.
        replace: allow overwriting an existing registration (tests, or
            swapping in an instrumented backend); re-registering a taken name
            without it is an error, so typos never shadow a real backend.
    """
    if not backend.name:
        raise ValueError("backend must have a non-empty name")
    if backend.name in _REGISTRY and not replace:
        raise ValueError(
            f"backend {backend.name!r} is already registered; pass replace=True to override"
        )
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """Look up a registered backend by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        ) from None


def available_backends() -> Tuple[str, ...]:
    """Names of every registered backend, sorted (deterministic across runs)."""
    return tuple(sorted(_REGISTRY))


# ----------------------------------------------------------------------
# built-in registrants
# ----------------------------------------------------------------------
class PythonInterpBackend(Backend):
    """Per-kernel Python functions plus a fused dispatch program."""

    name = "python-interp"
    executes = True
    emits_source = True
    supports_training = True

    def generate(self, plan: KernelPlan, options: Optional[BackendOptions] = None):
        from repro.ir.codegen.python_backend import build_python_module

        return build_python_module(plan)


class PythonCodegenBackend(Backend):
    """One specialised whole-plan source function per direction."""

    name = "python-codegen"
    executes = True
    emits_source = True
    supports_training = True

    def generate(self, plan: KernelPlan, options: Optional[BackendOptions] = None):
        from repro.ir.codegen.codegen_backend import build_codegen_module

        options = options or BackendOptions()
        return build_codegen_module(
            plan,
            num_edge_types=options.num_edge_types,
            num_node_types=options.num_node_types,
            artifact_key=options.artifact_key,
        )


class MixedBackend(Backend):
    """Per-kernel interp/codegen selection behind one generated dispatcher."""

    name = "mixed"
    executes = True
    emits_source = True
    supports_training = True

    def generate(self, plan: KernelPlan, options: Optional[BackendOptions] = None):
        from repro.ir.codegen.mixed_backend import build_mixed_module

        options = options or BackendOptions()
        return build_mixed_module(
            plan,
            num_edge_types=options.num_edge_types,
            num_node_types=options.num_node_types,
            workload=options.workload,
            assignment=options.mixed_assignment,
            artifact_key=options.artifact_key,
        )


class CudaEmitBackend(Backend):
    """CUDA-like source text for inspection; emits but never executes."""

    name = "cuda-emit"
    executes = False
    emits_source = True
    supports_training = True

    def generate(self, plan: KernelPlan, options: Optional[BackendOptions] = None):
        from repro.ir.codegen.cuda_backend import build_cuda_source

        return SourceModule(source=build_cuda_source(plan))


register_backend(PythonInterpBackend())
register_backend(PythonCodegenBackend())
register_backend(MixedBackend())
register_backend(CudaEmitBackend())
