"""Per-kernel mixed-backend execution: interp kernels + whole-plan segments.

The registry's two executing backends are both all-or-nothing: ``python-interp``
pays a function call and env lookups per kernel but runs numpy-bound traversal
kernels at full speed, while ``python-codegen`` erases dispatch for the whole
plan but cannot beat the interpreter where numpy does all the work anyway.
Hector's cost model already prices kernels *individually* — so this backend
chooses per kernel, the way roofline-driven HPC characterisations pick an
implementation per primitive rather than one global winner:

* each kernel in the plan is assigned ``interp`` or ``codegen`` — explicitly
  (``CompilerOptions.mixed_assignment``, e.g. from the tuner's beam search),
  or from the cost model's per-kernel bound classification (dispatch/latency
  bound → codegen, memory/compute bound traversal → interp);
* maximal runs of codegen-assigned kernels become whole-plan segment
  functions (``_seg_forward_0`` …) emitted by the ``python-codegen``
  generator — inlined, localised, unrolled, with its whole-plan rewrites —
  while interp-assigned kernels keep their verbatim per-kernel functions;
* one ``main_forward``/``main_backward`` dispatcher calls them in plan
  order.  Everything lives in one generated source, compiled once.

All kernels communicate through the shared ``env`` dict exactly as both pure
backends do, so the hand-off across segment boundaries is bit-exact by
construction; the only whole-plan rewrite with cross-kernel reach —
fresh-scatter specialisation — is made boundary-aware by seeding each
segment's generator with the gradients earlier kernels may already have
written (``pre_touched``).  The mixed module declares
``seeds_gradients=False`` so the executor eagerly zero-seeds gradients the
way the interp kernels expect; the codegen segments' guarded reads find those
seeds and accumulate bit-identically.

On top of the per-kernel split, the module re-specialises *per bound graph*:
:meth:`MixedGeneratedModule.specialise_for_occupancy` re-emits the codegen
segments unrolled over only the *occupied* relations of the bound graph's
schema (``GraphBinding`` calls it at bind time), with a per-occupancy-
signature memo so rebinding to a same-shaped graph reuses the compiled
functions.  A 300-relation schema with four live relations runs four
straight-line blocks instead of a 300-iteration launch loop per GEMM.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.ir.intra_op.kernels import KernelInstance
from repro.ir.intra_op.plan import KernelPlan

from repro.ir.codegen.codegen_backend import (
    MAX_UNROLL_SEGMENTS,
    _CODEGEN_PREAMBLE,
    _WholePlanGenerator,
)
from repro.ir.codegen.python_backend import GeneratedModule

#: Assignment tokens: which executor a kernel runs on.
ASSIGN_INTERP = "interp"
ASSIGN_CODEGEN = "codegen"
ASSIGN_TOKENS = (ASSIGN_INTERP, ASSIGN_CODEGEN)


# ----------------------------------------------------------------------
# Assignment: explicit > cost model > structural default
# ----------------------------------------------------------------------
def resolve_assignment(
    plan: KernelPlan,
    workload=None,
    explicit: Optional[Sequence[Tuple[str, str]]] = None,
    device=None,
) -> Dict[str, str]:
    """Per-kernel backend assignment for every kernel in the plan.

    Explicit ``(kernel_name, token)`` pairs win; unnamed kernels fall back to
    the cost model when a workload is known (traversal kernels whose modelled
    time is launch-latency bound gain from inlining; memory/compute-bound
    ones keep the interpreter's plain numpy path), else to the structural
    default: GEMM/fallback chains → codegen, traversal → interp.
    """
    kernels = list(plan.forward_kernels) + list(plan.backward_kernels)
    names = {kernel.name for kernel in kernels}
    explicit_map = dict(explicit or ())
    unknown = sorted(set(explicit_map) - names)
    if unknown:
        raise ValueError(
            f"mixed_assignment names unknown kernels {unknown}; "
            f"plan kernels: {sorted(names)}"
        )
    bad = sorted({t for t in explicit_map.values() if t not in ASSIGN_TOKENS})
    if bad:
        raise ValueError(f"unknown mixed_assignment tokens {bad}; use one of {ASSIGN_TOKENS}")
    assignment: Dict[str, str] = {}
    for kernel in kernels:
        token = explicit_map.get(kernel.name)
        if token is None:
            token = _default_token(kernel, workload, device)
        assignment[kernel.name] = token
    return assignment


def _default_token(kernel: KernelInstance, workload, device) -> str:
    if getattr(kernel, "category", "fallback") != "traversal":
        return ASSIGN_CODEGEN
    if workload is None:
        return ASSIGN_INTERP
    from repro.gpu.costmodel import RTX_3090, estimate_kernel_time, kernel_work_from_instance

    device = device if device is not None else RTX_3090
    work = kernel_work_from_instance(kernel, workload, device=device)
    time = estimate_kernel_time(work, device)
    return ASSIGN_CODEGEN if time.bound == "latency" else ASSIGN_INTERP


def _partition_runs(
    kernels: Sequence[KernelInstance], assignment: Dict[str, str]
) -> List[Tuple[str, List[KernelInstance]]]:
    """Maximal runs of same-assignment kernels, in plan order."""
    runs: List[Tuple[str, List[KernelInstance]]] = []
    for kernel in kernels:
        token = assignment[kernel.name]
        if runs and runs[-1][0] == token:
            runs[-1][1].append(kernel)
        else:
            runs.append((token, [kernel]))
    return runs


def _grad_bases(kernel: KernelInstance) -> Set[str]:
    """Buffers whose gradients ``kernel`` may write (overapproximation-safe).

    Used to seed a following codegen segment's ``pre_touched`` set: a buffer
    wrongly included only disables fresh-scatter specialisation for it, a
    buffer wrongly *excluded* would corrupt gradients, so backward traversal
    kernels (which carry the forward micro-op list and write the adjoint of
    every statement input) contribute all their micro-op operands.
    """
    bases: Set[str] = set()
    for name in kernel.written_buffers():
        if name.startswith("grad_"):
            bases.add(name[len("grad_") :])
    micro_ops = getattr(kernel, "micro_ops", None)
    if micro_ops is not None and kernel.direction == "backward":
        for op in micro_ops:
            bases.update(op.inputs)
            bases.add(op.output)
    return bases


def occupancy_signature(ctx) -> Tuple[tuple, tuple]:
    """Which relations/node types of the bound graph hold any rows.

    Compact-space segment pointers share the edge mask: a relation has
    unique (source, type) pairs iff it has edges.
    """
    edge = tuple(bool(x) for x in np.diff(ctx.etype_ptr) > 0)
    node = tuple(bool(x) for x in np.diff(ctx.ntype_ptr) > 0)
    return edge, node


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------
class _MixedPlanGenerator(_WholePlanGenerator):
    """Emit interp kernel functions + codegen segments + plan-order dispatchers.

    Interp-assigned kernels reuse the parent interp templates *verbatim*
    (same functions the ``python-interp`` backend executes); codegen runs go
    through :class:`_WholePlanGenerator`'s whole-plan pipeline with
    ``pre_touched`` seeded from everything earlier in the plan.
    """

    def __init__(
        self,
        plan: KernelPlan,
        num_edge_types: Optional[int] = None,
        num_node_types: Optional[int] = None,
        assignment: Optional[Dict[str, str]] = None,
        occupancy: Optional[tuple] = None,
    ):
        super().__init__(plan, num_edge_types, num_node_types, occupancy=occupancy)
        self.assignment = dict(assignment or {})

    def generate(self) -> str:
        chunks = [_CODEGEN_PREAMBLE]
        for direction, kernels, main in (
            ("forward", self.plan.forward_kernels, "main_forward"),
            ("backward", self.plan.backward_kernels, "main_backward"),
        ):
            runs = _partition_runs(kernels, self.assignment)
            counts = {ASSIGN_INTERP: 0, ASSIGN_CODEGEN: 0}
            for kernel in kernels:
                counts[self.assignment[kernel.name]] += 1
            dispatch = [f"def {main}(env, ctx):"]
            dispatch.append(
                f'    """Mixed {direction} of {self.plan.name}: '
                f'{counts[ASSIGN_INTERP]} interp kernels, '
                f'{counts[ASSIGN_CODEGEN]} codegen-segment kernels."""'
            )
            touched: Set[str] = set()
            for index, (token, run) in enumerate(runs):
                if token == ASSIGN_CODEGEN:
                    seg_name = f"_seg_{direction}_{index}"
                    self.pre_touched = (
                        {f"_b_grad_{base}" for base in touched}
                        if direction == "backward"
                        else set()
                    )
                    chunks.append(self._generate_main(seg_name, direction, run))
                    dispatch.append(f"    {seg_name}(env, ctx)")
                else:
                    for kernel in run:
                        chunks.append(self._generate_kernel(kernel))
                        dispatch.append(f"    kernel_{kernel.name}(env, ctx)")
                if direction == "backward":
                    for kernel in run:
                        touched |= _grad_bases(kernel)
            dispatch.append("    return env")
            chunks.append("\n".join(dispatch))
        return "\n\n".join(chunks) + "\n"


class MixedGeneratedModule:
    """GeneratedModule-shaped mixed artifact plus bind-time respecialisation.

    Duck-typed to what :class:`~repro.runtime.executor.PlanExecutor` and the
    runtime introspection need (``source``, ``forward_program``,
    ``backward_program``, ``seeds_gradients``, ``line_count``), and carries
    the per-occupancy-signature memo that ``CompiledRGNNModule.
    generated_for`` consults at bind time.
    """

    def __init__(
        self,
        source: str,
        forward_program,
        backward_program,
        plan: KernelPlan,
        num_edge_types: Optional[int],
        num_node_types: Optional[int],
        assignment: Dict[str, str],
        artifact_key: Optional[str] = None,
    ):
        self.source = source
        self.forward_functions: Dict[str, object] = {}
        self.backward_functions: Dict[str, object] = {}
        self.forward_program = forward_program
        self.backward_program = backward_program
        self.seeds_gradients = False
        self.plan = plan
        self.num_edge_types = num_edge_types
        self.num_node_types = num_node_types
        self.assignment = dict(assignment)
        self.artifact_key = artifact_key
        self._lock = threading.Lock()
        self._occupancy_memo: Dict[tuple, GeneratedModule] = {}
        self.occupancy_hits = 0
        self.occupancy_misses = 0

    def line_count(self) -> int:
        return len(self.source.splitlines())

    def assignment_counts(self) -> Dict[str, int]:
        counts = {ASSIGN_INTERP: 0, ASSIGN_CODEGEN: 0}
        for token in self.assignment.values():
            counts[token] += 1
        return counts

    def occupancy_stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.occupancy_hits,
                "misses": self.occupancy_misses,
                "variants": len(self._occupancy_memo),
            }

    # ------------------------------------------------------------------
    def specialise_for_occupancy(self, ctx) -> object:
        """The variant of this module specialised to ``ctx``'s occupancy.

        Called at bind time.  Returns ``self`` when specialisation cannot
        change the emitted source (schema unknown at compile time, mask
        shape mismatch, or everything occupied within the unroll limit);
        otherwise a memoised per-signature :class:`GeneratedModule`.
        """
        if self.num_edge_types is None or self.num_node_types is None:
            return self
        sig = occupancy_signature(ctx)
        if len(sig[0]) != self.num_edge_types or len(sig[1]) != self.num_node_types:
            return self
        if (
            all(sig[0])
            and all(sig[1])
            and max(self.num_edge_types, self.num_node_types) <= MAX_UNROLL_SEGMENTS
        ):
            return self
        with self._lock:
            cached = self._occupancy_memo.get(sig)
            if cached is not None:
                self.occupancy_hits += 1
                return cached
            self.occupancy_misses += 1
        variant = self._build_variant(sig)
        with self._lock:
            return self._occupancy_memo.setdefault(sig, variant)

    def _build_variant(self, sig: tuple) -> GeneratedModule:
        from repro.ir.codegen.artifact_cache import artifact_key_for, load_or_generate

        key = None
        if self.artifact_key is not None:
            key = artifact_key_for(self.artifact_key, ("occupancy", sig))

        def generate() -> str:
            return _MixedPlanGenerator(
                self.plan,
                self.num_edge_types,
                self.num_node_types,
                assignment=self.assignment,
                occupancy=sig,
            ).generate()

        source, code = load_or_generate(key, f"<hector-mixed:{self.plan.name}:occupancy>", generate)
        namespace: Dict[str, object] = {}
        exec(code, namespace)
        return GeneratedModule(
            source=source,
            forward_functions={},
            backward_functions={},
            forward_program=namespace["main_forward"],
            backward_program=namespace["main_backward"],
            seeds_gradients=False,
        )


def build_mixed_module(
    plan: KernelPlan,
    num_edge_types: Optional[int] = None,
    num_node_types: Optional[int] = None,
    workload=None,
    assignment: Optional[Sequence[Tuple[str, str]]] = None,
    artifact_key: Optional[str] = None,
) -> MixedGeneratedModule:
    """Generate and compile the mixed module (the ``mixed`` registrant).

    Args:
        plan: the lowered kernel plan.
        num_edge_types / num_node_types: schema relation counts (as for
            ``build_codegen_module``).
        workload: optional :class:`~repro.evaluation.workload.WorkloadSpec`
            for cost-model-guided default assignment.
        assignment: explicit ``(kernel_name, token)`` overrides (the tuner's
            beam output); unnamed kernels fall back to the default policy.
        artifact_key: persistent-cache base key; the resolved assignment is
            folded in, since workload-derived assignments can differ under
            one compilation key.
    """
    from repro.ir.codegen.artifact_cache import artifact_key_for, load_or_generate

    resolved = resolve_assignment(plan, workload=workload, explicit=assignment)
    key = None
    if artifact_key is not None:
        key = artifact_key_for(artifact_key, ("assignment", tuple(sorted(resolved.items()))))

    def generate() -> str:
        return _MixedPlanGenerator(
            plan, num_edge_types, num_node_types, assignment=resolved
        ).generate()

    source, code = load_or_generate(key, f"<hector-mixed:{plan.name}>", generate)
    namespace: Dict[str, object] = {}
    exec(code, namespace)
    return MixedGeneratedModule(
        source=source,
        forward_program=namespace["main_forward"],
        backward_program=namespace["main_backward"],
        plan=plan,
        num_edge_types=num_edge_types,
        num_node_types=num_node_types,
        assignment=resolved,
        artifact_key=artifact_key,
    )
