"""Whole-plan Python source codegen: one specialised function per plan.

The ``python-interp`` backend emits one Python function per kernel instance
and a thin fused program that dispatches them; every serve and train step
still pays a function call, a set of ``env`` dict lookups, and a segment loop
per kernel.  This backend instead emits *one* specialised source function per
compiled plan and direction — ``main_forward(env, ctx)`` /
``main_backward(env, ctx)`` — with

* every kernel body inlined in plan order (no per-kernel dispatch),
* the graph index arrays (``ctx.edge_src``, ``ctx.etype_ptr``, …) resolved to
  function locals once per call,
* every buffer resolved to a function local on first use (arena-bound slots
  included), kept in sync with ``env`` so the executor, bindings, and
  ``module._last_env`` introspection see exactly what the interp backend
  produces, and
* the per-relation kernel launch loop unrolled over the schema's relations
  when the plan is compiled against a concrete graph schema.

On top of the inlining, the generator applies whole-plan rewrites that a
per-kernel backend cannot see — each one provably bit-preserving:

* **fresh-scatter specialisation** — an ``np.add.at`` whose target is known
  all-zeros (a ``scatter_add`` output, or a gradient's first accumulation
  site, tracked alias-aware in program order) becomes a ``np.bincount``
  segment sum (``_scatter_fresh``), which accumulates per bin in the same
  element order at a fraction of the cost;
* **merged adjoint pairs** — a dgrad/wgrad pair of one GEMM shares a single
  segment loop, deduplicating the ``rows``/``gY``/``Xg`` gathers (their
  writes are disjoint, so per-buffer accumulation order is unchanged);
* **merged forward projections** — adjacent forward GEMMs reading the same
  input over the same typed segments (HGT's K/Q/V) share one loop and one
  ``Xg`` gather per segment;
* **static ensure inlining** — ``_ensure``/``_ensure_grad`` helper calls
  expand to direct ``env.get`` + shape-check code (shapes are static text at
  generation time), fusing a gradient's zero seed into its first dense
  accumulation (``(expr) + 0.0`` ≡ ``zeros + expr`` elementwise) or
  allocating scatter targets uninitialised when ``_scatter_fresh`` fully
  overwrites them;
* **lazy gradient seeding** — the backward function seeds only the zero
  gradients it actually reads (``GeneratedModule.seeds_gradients``), so the
  executor skips its eager per-kernel seeding loop;
* **list-typed segment pointers** — ``etype_ptr``-style bounds are hoisted
  as Python lists, avoiding numpy scalar boxing on every segment index.

The emitted numpy operations are the interp backend's, in the same order and
on the same values, so the two backends are bit-identical — locked down by
the differential harness in ``tests/test_property_compiled.py``
(``tobytes`` equality across every tuner-reachable configuration).  The
source is compiled once with :func:`exec` and cached alongside the plan in
the compilation cache (``CompilerOptions.backend`` is part of the cache key,
so interp and codegen artifacts never collide).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Set

from repro.ir.intra_op.kernels import GemmKernel, KernelInstance
from repro.ir.intra_op.plan import KernelPlan

from repro.ir.codegen.python_backend import _PREAMBLE, GeneratedModule, _PythonKernelGenerator

#: Relation counts above this are left as runtime loops: unrolling a huge
#: type vocabulary would bloat the generated source past any dispatch saving.
MAX_UNROLL_SEGMENTS = 32

#: Extra helpers for the whole-plan functions: an ``_ensure`` variant for
#: outputs every segment assignment fully overwrites, and a segment-sum
#: scatter for targets known to be all-zeros at the call site.
_CODEGEN_PREAMBLE = _PREAMBLE + '''

def _ensure_out(env, name, shape):
    """Fetch (or allocate, uninitialised) a fully-overwritten output buffer.

    Mirrors ``_ensure``'s reuse decision exactly, but skips the zero fill:
    callers guarantee every row is written before being read, so the initial
    contents are unobservable and the fill is pure overhead.
    """
    if np.isscalar(shape):
        shape = (shape,)
    if name not in env or env[name].shape != tuple(shape):
        env[name] = np.empty(shape, dtype=_env_dtype(env))
    return env[name]


def _scatter_fresh(target, idx, contrib):
    """Scatter-add into an all-zeros target via ``np.bincount``.

    ``np.bincount`` accumulates its weights sequentially — the exact
    per-element addition order ``np.add.at`` applies — and every bin starts
    from the same +0.0 the zero-filled target holds, so the stores below are
    bit-identical to ``np.add.at(target, idx, contrib)`` at a fraction of the
    cost.  Callers guarantee the target is fresh: either all-zeros or fully
    overwritten below (the generator only emits this at a gradient's first
    accumulation site, or onto a ``scatter_add`` output buffer).  Non-float64
    and broadcasting scatters fall back to the ufunc path, zero-filling first
    since the fast paths overwrite every element.
    """
    if (
        target.dtype != np.float64
        or contrib.dtype != np.float64
        or contrib.ndim != target.ndim
        or len(contrib) != len(idx)
        or target.ndim > 2
    ):
        target[...] = 0.0
        np.add.at(target, idx, contrib)
        return
    n = target.shape[0]
    if target.ndim == 1:
        target[...] = np.bincount(idx, weights=contrib, minlength=n)
    elif target.shape[1] <= 4:
        for j in range(target.shape[1]):
            target[:, j] = np.bincount(idx, weights=contrib[:, j], minlength=n)
    else:
        d = target.shape[1]
        flat_idx = (np.asarray(idx)[:, None] * d + np.arange(d)).ravel()
        target[...] = np.bincount(
            flat_idx, weights=contrib.ravel(), minlength=n * d
        ).reshape(n, d)
'''

_ENSURE_STMT = re.compile(
    r"^(\s*)([A-Za-z_]\w*) = (_ensure(?:_out)?)\(env, '([A-Za-z_]\w*)', (.*)\)$"
)
_ENSURE_GRAD_STMT = re.compile(r"^(\s*)_ensure_grad\(env, '([A-Za-z_]\w*)'\)$")
_ENV_STORE = re.compile(r"^(\s*)env\['([A-Za-z_]\w*)'\] = ")
_ENV_AUGSTORE = re.compile(r"^(\s*)env\['([A-Za-z_]\w*)'\] \+= ")
_ENV_REF = re.compile(r"env\['([A-Za-z_]\w*)'\]")
_SYNC_STORE = re.compile(r"env\[__sync_([A-Za-z_]\w*)\]")
_CTX_REF = re.compile(r"ctx\.([A-Za-z_]\w*)")
_LOCAL_TOKEN = re.compile(r"_b_[A-Za-z_]\w*")
_SEG_PTR_STMT = re.compile(r"^(\s*)seg_ptr = _c_([A-Za-z_]\w*)$")
_SCATTER_STMT = re.compile(r"^(\s*)np\.add\.at\(([A-Za-z_]\w*), (.+)\)$")
_ALIAS_STMT = re.compile(r"^\s*([A-Za-z_]\w*) = (_b_[A-Za-z_]\w*)$")
_ACCUM_STMT = re.compile(r"^\s*([A-Za-z_]\w*)(\[[^\]]*\])? (\+=|=) ")
_ENSURE_CALL = re.compile(
    r"^(\s*)((?:[A-Za-z_]\w* = )+)(_ensure(?:_out)?)\(env, '([A-Za-z_]\w*)', (.*)\)$"
)
_ENSURE_GRAD_CALL = re.compile(
    r"^(\s*)(_b_grad_[A-Za-z_]\w*) = _ensure_grad\(env, '([A-Za-z_]\w*)'\)$"
)
#: Per-segment locals both halves of a dgrad/wgrad pair compute identically;
#: the second occurrence in a merged segment body is dropped.
_SHARED_SEG_LOCAL = re.compile(r"^\s*(rows|Xg|gY|W_t) = ")
#: The gather locals merged forward GEMMs share (same X, same segments).
_GATHER_LOCAL = re.compile(r"^\s*(rows|Xg) = ")
#: A graph index array gathered through the segment's ``rows`` — computed
#: once per merged segment when it appears more than once.
_ROWS_INDEX = re.compile(r"_c_([A-Za-z_]\w*)\[rows\]")
_SEGMENT_LOOP = "    for t in range(num_segments):"
_SEGMENT_PROLOGUE = [
    "        start, end = seg_ptr[t], seg_ptr[t + 1]",
    "        if end <= start:",
    "            continue",
]
#: The loop variable ``t`` as a standalone token — never inside an identifier
#: or a quoted buffer name.
_LOOP_VAR = re.compile(r"(?<![\w'])t(?![\w'])")


def build_codegen_module(
    plan: KernelPlan,
    num_edge_types: Optional[int] = None,
    num_node_types: Optional[int] = None,
    artifact_key: Optional[str] = None,
) -> GeneratedModule:
    """Generate and compile the whole-plan ``main_forward``/``main_backward``.

    This is the ``python-codegen`` registrant of the backend registry
    (:mod:`repro.ir.codegen.registry`); prefer selecting it through
    ``CompilerOptions(backend="python-codegen")``.

    Args:
        plan: the lowered kernel plan.
        num_edge_types / num_node_types: relation counts of the schema the
            plan is specialised for; when given, per-relation segment loops
            are unrolled into straight-line code.  ``None`` (no graph at
            compile time) keeps runtime loops.
        artifact_key: persistent-cache key for the generated artifact
            (:mod:`repro.ir.codegen.artifact_cache`); a warm process skips
            generation and source compilation.  ``None`` disables persistence.
    """
    from repro.ir.codegen.artifact_cache import load_or_generate

    def generate() -> str:
        return _WholePlanGenerator(plan, num_edge_types, num_node_types).generate()

    source, code = load_or_generate(artifact_key, f"<hector-codegen:{plan.name}>", generate)
    namespace: Dict[str, object] = {}
    exec(code, namespace)
    return GeneratedModule(
        source=source,
        forward_functions={},
        backward_functions={},
        forward_program=namespace["main_forward"],
        backward_program=namespace["main_backward"],
        seeds_gradients=True,
    )


class _WholePlanGenerator(_PythonKernelGenerator):
    """Rewrites the interp backend's kernel bodies into one function per pass.

    The parent class owns the numpy templates; this subclass inlines their
    emitted bodies, localises ``env``/``ctx`` accesses, and unrolls the
    segment loops.  Sharing the templates (rather than duplicating them)
    keeps the two backends numerically identical by construction.
    """

    def __init__(
        self,
        plan: KernelPlan,
        num_edge_types: Optional[int] = None,
        num_node_types: Optional[int] = None,
        occupancy: Optional[tuple] = None,
    ):
        super().__init__(plan)
        self.num_edge_types = num_edge_types
        self.num_node_types = num_node_types
        #: ``(edge_mask, node_mask)`` bool tuples from a bound graph, or
        #: ``None``: with a mask, only *occupied* relations are unrolled —
        #: even past ``MAX_UNROLL_SEGMENTS`` — so empty relations cost
        #: nothing per call (rebind-time occupancy specialisation).
        self.occupancy = occupancy
        #: Gradient locals (``_b_grad_*``) possibly written before this
        #: generator's output runs — the mixed backend sets this per segment
        #: so fresh-scatter specialisation stays sound across interp/codegen
        #: boundaries.
        self.pre_touched: Set[str] = set()

    # ------------------------------------------------------------------
    def generate(self) -> str:
        chunks = [_CODEGEN_PREAMBLE]
        chunks.append(self._generate_main("main_forward", "forward", self.plan.forward_kernels))
        chunks.append(self._generate_main("main_backward", "backward", self.plan.backward_kernels))
        return "\n\n".join(chunks) + "\n"

    def _generate_main(self, name: str, direction: str, kernels: Sequence[KernelInstance]) -> str:
        specialised = "schema-unrolled" if self.num_edge_types is not None else "runtime-looped"
        lines = [f"def {name}(env, ctx):"]
        lines.append(
            f'    """Whole-plan {direction} of {self.plan.name}: '
            f'{len(kernels)} kernels inlined, {specialised}."""'
        )
        if not kernels:
            lines.append("    return env")
            return "\n".join(lines)
        self._seg_lists: List[str] = []
        body: List[str] = []
        index = 0
        while index < len(kernels):
            kernel = kernels[index]
            group = self._forward_merge_group(kernels, index)
            if len(group) > 1:
                merged = self._merge_forward_gemms(group)
                if merged is not None:
                    names = " + ".join(k.name for k in group)
                    body.append(f"    # ---- {names}: merged forward segment loop ----")
                    body.extend(self._maybe_unroll(merged, kernel))
                    index += len(group)
                    continue
            if index + 1 < len(kernels) and self._is_adjoint_pair(kernel, kernels[index + 1]):
                merged = self._merge_adjoint_pair(kernel, kernels[index + 1])
                if merged is not None:
                    body.append(
                        f"    # ---- {kernel.name} + {kernels[index + 1].name}: "
                        f"merged adjoint segment loop ----"
                    )
                    body.extend(self._maybe_unroll(merged, kernel))
                    index += 2
                    continue
            body.append(f"    # ---- {kernel.name}: {kernel.describe()} ----")
            body.extend(self._inline_kernel(kernel))
            index += 1
        body = self._specialise_fresh_scatters(body, direction)
        body = self._inline_ensures(body)
        ctx_attrs = self._collect_ctx_attrs(body)
        header = [f"    _s_{attr} = ctx.{attr}.tolist()" for attr in self._seg_lists]
        header += [f"    _c_{attr} = ctx.{attr}" for attr in ctx_attrs]
        header += self._hoist_env_reads(body, lazy_gradients=direction == "backward")
        lines += header + body
        lines.append("    return env")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def _inline_kernel(self, kernel: KernelInstance) -> List[str]:
        """One kernel's body, localised and (for GEMMs) segment-unrolled."""
        return self._maybe_unroll(self._kernel_body(kernel), kernel)

    def _kernel_body(self, kernel: KernelInstance) -> List[str]:
        """One kernel's body, localised but not yet unrolled."""
        raw = self._generate_kernel(kernel).splitlines()
        # Drop the ``def`` line and the single-line docstring.
        body = [line for line in raw[1:] if not line.lstrip().startswith('"""')]
        if isinstance(kernel, GemmKernel) and kernel.role == "forward":
            body = [self._use_uninitialised_output(line, kernel.y.buffer) for line in body]
        return [self._list_seg_ptr(self._localise(line)) for line in body]

    def _maybe_unroll(self, body: List[str], kernel: KernelInstance) -> List[str]:
        count = self._segment_count(kernel)
        mask = self._segment_mask(kernel)
        if (
            mask is not None
            and count == len(mask)
            and sum(mask) <= MAX_UNROLL_SEGMENTS
        ):
            return self._unroll_segments(body, count, mask=mask)
        if count is not None and 0 < count <= MAX_UNROLL_SEGMENTS:
            body = self._unroll_segments(body, count)
        return body

    # ------------------------------------------------------------------
    def _is_adjoint_pair(self, a: KernelInstance, b: KernelInstance) -> bool:
        """Adjacent dgrad/wgrad kernels of the same forward GEMM."""
        return (
            isinstance(a, GemmKernel)
            and isinstance(b, GemmKernel)
            and a.role == "dgrad"
            and b.role == "wgrad"
            and a.name.endswith("_dgrad")
            and b.name.endswith("_wgrad")
            and a.name[: -len("_dgrad")] == b.name[: -len("_wgrad")]
        )

    def _merge_adjoint_pair(
        self, dgrad: KernelInstance, wgrad: KernelInstance
    ) -> Optional[List[str]]:
        """Fuse a dgrad/wgrad pair into one segment loop sharing its gathers.

        Both adjoints of one GEMM iterate the same segments of the same
        space; the interp backend runs them as two kernels, re-slicing
        ``rows`` and re-gathering the output gradient ``gY`` per segment.
        Their writes are disjoint (``grad_X`` vs ``grad_W``) and neither
        reads what the other writes, so interleaving the segment bodies —
        with the duplicate ``rows``/``gY``/``Xg`` assignments dropped —
        produces every buffer's accumulations in the original order,
        bit-identically, minus one full gather per segment.
        """
        body_d = self._kernel_body(dgrad)
        body_w = self._kernel_body(wgrad)
        if self._segment_count(dgrad) != self._segment_count(wgrad):
            return None
        try:
            loop_d = body_d.index(_SEGMENT_LOOP)
            loop_w = body_w.index(_SEGMENT_LOOP)
        except ValueError:
            return None
        if (
            body_d[loop_d + 1 : loop_d + 4] != _SEGMENT_PROLOGUE
            or body_w[loop_w + 1 : loop_w + 4] != _SEGMENT_PROLOGUE
        ):
            return None
        pre_d = body_d[:loop_d]
        pre_w = [line for line in body_w[:loop_w] if line not in pre_d]
        seg_d = body_d[loop_d + 4 :]
        seg_w = [
            line
            for line in body_w[loop_w + 4 :]
            if not (line in seg_d and _SHARED_SEG_LOCAL.match(line))
        ]
        merged_seg = self._cse_rows_indexes(seg_d + seg_w)
        return pre_d + pre_w + [_SEGMENT_LOOP] + _SEGMENT_PROLOGUE + merged_seg

    def _forward_merge_group(
        self, kernels: Sequence[KernelInstance], index: int
    ) -> List[KernelInstance]:
        """Maximal run of adjacent forward GEMMs over the same X and segments.

        HGT-style models project one feature through several weights
        (K/Q/V); the interp backend runs one kernel — one segment loop, one
        ``Xg`` gather — per projection.  Adjacent forward GEMMs reading the
        same untouched input over the same typed space can share one loop.
        """
        first = kernels[index]
        group = [first]
        if (
            not isinstance(first, GemmKernel)
            or first.role != "forward"
            or first.type_selector == "none"
        ):
            return group
        outputs = {first.y.buffer}
        reads = {first.x.buffer, first.weight.buffer}
        while index + len(group) < len(kernels):
            nxt = kernels[index + len(group)]
            if not (
                isinstance(nxt, GemmKernel)
                and nxt.role == "forward"
                and nxt.type_selector == first.type_selector
                and nxt.m_space == first.m_space
                and nxt.x.buffer == first.x.buffer
                and nxt.weight.buffer not in outputs
                and nxt.y.buffer not in outputs
                and nxt.y.buffer not in reads
            ):
                break
            outputs.add(nxt.y.buffer)
            reads.add(nxt.weight.buffer)
            group.append(nxt)
        return group

    def _merge_forward_gemms(self, group: List[KernelInstance]) -> Optional[List[str]]:
        """Fuse a run of forward GEMMs into one loop sharing ``rows``/``Xg``.

        Valid only when every kernel's per-segment gather lines are textually
        identical (same X buffer, same access scheme): the merged loop keeps
        each output's segment writes in order, the outputs are pairwise
        distinct, and none of them is the shared input, so interleaving is
        bit-identical.  The ``Y`` local of each kernel after the first is
        renamed so the merged body binds them side by side.
        """
        bodies: List[List[str]] = []
        for position, kernel in enumerate(group):
            body = self._kernel_body(kernel)
            if position:
                body = [re.sub(r"\bY\b", f"Y{position + 1}", line) for line in body]
            bodies.append(body)
        try:
            loops = [body.index(_SEGMENT_LOOP) for body in bodies]
        except ValueError:
            return None
        for body, loop in zip(bodies, loops):
            if body[loop + 1 : loop + 4] != _SEGMENT_PROLOGUE:
                return None
        segs = [body[loop + 4 :] for body, loop in zip(bodies, loops)]
        anchor = [line for line in segs[0] if _GATHER_LOCAL.match(line)]
        for seg in segs[1:]:
            if [line for line in seg if _GATHER_LOCAL.match(line)] != anchor:
                return None
        pre = list(bodies[0][: loops[0]])
        for body, loop in zip(bodies[1:], loops[1:]):
            pre += [line for line in body[:loop] if line not in pre]
        merged_seg = list(segs[0])
        for seg in segs[1:]:
            merged_seg += [line for line in seg if not _GATHER_LOCAL.match(line)]
        return pre + [_SEGMENT_LOOP] + _SEGMENT_PROLOGUE + merged_seg

    def _cse_rows_indexes(self, seg: List[str]) -> List[str]:
        """Hoist a graph index gathered through ``rows`` used more than once.

        A merged dgrad/wgrad loop both scatters through and gathers through
        e.g. ``_c_edge_src[rows]``; computing the gathered index once per
        segment drops one fancy-index pass.
        """
        counts: Dict[str, int] = {}
        for line in seg:
            for match in _ROWS_INDEX.finditer(line):
                counts[match.group(1)] = counts.get(match.group(1), 0) + 1
        repeated = [attr for attr, count in counts.items() if count > 1]
        if not repeated:
            return seg
        result: List[str] = []
        pending = list(repeated)
        for line in seg:
            result.append(line)
            if pending and re.match(r"^\s*rows = ", line):
                indent = line[: len(line) - len(line.lstrip())]
                for attr in pending:
                    result.append(f"{indent}_rows_{attr} = _c_{attr}[rows]")
                pending = []
        if pending:
            return seg
        return [
            _ROWS_INDEX.sub(
                lambda m: f"_rows_{m.group(1)}" if m.group(1) in repeated else m.group(0),
                line,
            )
            if not re.match(r"^\s*_rows_", line)
            else line
            for line in result
        ]

    def _list_seg_ptr(self, line: str) -> str:
        """Bind segment pointers as Python ``list``s of plain ints.

        ``seg_ptr[t]`` on an ndarray yields a numpy scalar; every segment
        bound then pays scalar boxing on the index and on the ``end > start``
        comparison.  Indexing a hoisted ``.tolist()`` copy yields plain ints
        (the values are identical — they only ever index and compare).
        """
        match = _SEG_PTR_STMT.match(line)
        if match:
            indent, attr = match.groups()
            if attr not in self._seg_lists:
                self._seg_lists.append(attr)
            return f"{indent}seg_ptr = _s_{attr}"
        return line

    def _use_uninitialised_output(self, line: str, output: str) -> str:
        """Forward GEMM outputs are fully overwritten — skip the zero fill."""
        return line.replace(f"_ensure(env, '{output}',", f"_ensure_out(env, '{output}',")

    def _localise(self, line: str) -> str:
        """Resolve ``env['x']`` / ``ctx.attr`` references to function locals.

        Buffer locals stay aliased to the ``env`` entries: rebinding
        statements also store into ``env`` (one dict write), and in-place
        mutation flows through shared arrays, so the environment the executor
        and bindings observe is identical to the interp backend's.
        """
        match = _ENSURE_STMT.match(line)
        if match:
            indent, target, helper, buf, shape = match.groups()
            line = f"{indent}{target} = _b_{buf} = {helper}(env, '{buf}', {shape})"
        match = _ENSURE_GRAD_STMT.match(line)
        if match:
            indent, buf = match.groups()
            line = f"{indent}_b_grad_{buf} = _ensure_grad(env, '{buf}')"
        line = _ENV_STORE.sub(lambda m: f"{m.group(1)}_b_{m.group(2)} = env[__sync_{m.group(2)}] = ", line)
        line = _ENV_AUGSTORE.sub(lambda m: f"{m.group(1)}_b_{m.group(2)} += ", line)
        line = _ENV_REF.sub(lambda m: f"_b_{m.group(1)}", line)
        line = _SYNC_STORE.sub(lambda m: f"env['{m.group(1)}']", line)
        line = _CTX_REF.sub(lambda m: f"_c_{m.group(1)}", line)
        return line

    # ------------------------------------------------------------------
    def _specialise_fresh_scatters(self, body: List[str], direction: str) -> List[str]:
        """Rewrite first-touch ``np.add.at`` sites to ``_scatter_fresh``.

        A scatter whose target is known to be all-zeros — a ``scatter_add``
        output ``_ensure`` just zero-filled, or a gradient buffer at its
        first accumulation site in program order — computes a plain segment
        sum, which ``np.bincount`` produces bit-identically (same per-bin
        addition order) and far faster than the unbuffered ufunc.  Tracking
        is alias-aware: the GEMM adjoint bodies accumulate through local
        aliases (``grad_X = env['grad_h']``), and any direct/subscripted
        ``+=`` or non-``_ensure_grad`` rebind marks the buffer touched so
        later sites keep the accumulating ``np.add.at``.  Output gradients
        are never specialised: their seed is caller data, not zeros.

        Sites inside a *runtime* segment loop (relation count unknown or past
        the unroll limit) are never specialised: the loop body executes once
        per segment, so even a first-in-program-order scatter re-touches its
        target on the second iteration — ``_scatter_fresh``'s full overwrite
        would clobber the earlier segments' contributions.  Unrolled bodies
        are unaffected (each per-relation copy is its own site).
        """
        outputs = set(self.plan.output_names)
        alias: Dict[str, str] = {}
        touched: Set[str] = set(self.pre_touched)
        result: List[str] = []
        last_y_ensure: Optional[int] = None
        in_loop = False
        for line in body:
            if line == _SEGMENT_LOOP:
                in_loop = True
            elif in_loop and line.strip() and len(line) - len(line.lstrip()) <= 4:
                in_loop = False
            match = _SCATTER_STMT.match(line)
            if match:
                indent, target, args = match.groups()
                buffer = alias.get(target, target)
                if in_loop:
                    touched.add(buffer)
                    result.append(line)
                    continue
                if direction == "forward":
                    fresh = target == "Y"
                    if fresh and last_y_ensure is not None:
                        # The fresh scatter fully overwrites Y, so the
                        # zero fill of its ``_ensure`` is unobservable.
                        result[last_y_ensure] = result[last_y_ensure].replace(
                            "_ensure(env, ", "_ensure_out(env, ", 1
                        )
                        last_y_ensure = None
                else:
                    fresh = (
                        buffer.startswith("_b_grad_")
                        and buffer not in touched
                        and buffer[len("_b_grad_") :] not in outputs
                    )
                if fresh:
                    line = f"{indent}_scatter_fresh({target}, {args})"
                touched.add(buffer)
                result.append(line)
                continue
            if " = _ensure(env, " in line and line.lstrip().startswith("Y = "):
                last_y_ensure = len(result)
            match = _ALIAS_STMT.match(line)
            if match:
                alias[match.group(1)] = match.group(2)
                result.append(line)
                continue
            match = _ACCUM_STMT.match(line)
            if match:
                name, subscript, op = match.groups()
                buffer = alias.get(name, name)
                if op == "+=" or subscript:
                    touched.add(buffer)
                elif buffer.startswith("_b_grad_") and "_ensure_grad(" not in line:
                    touched.add(buffer)
                elif name in alias:
                    del alias[name]
            result.append(line)
        return result

    # ------------------------------------------------------------------
    def _inline_ensures(self, body: List[str]) -> List[str]:
        """Expand ``_ensure``/``_ensure_out``/``_ensure_grad`` calls in place.

        The buffer shapes are static expressions at generation time, so the
        helper calls — and their per-call ``np.isscalar``/``isinstance``
        dispatch — reduce to an ``env.get`` plus a shape check on the hot
        path, allocating (or zero-filling, for ``_ensure``) exactly as the
        helpers do on the cold path.  An ``_ensure_grad`` immediately
        followed by its accumulation fuses with it: a dense ``+=`` onto the
        would-be zeros becomes ``(expr) + 0.0`` — elementwise ``0.0 + v``
        either way, so bit-identical — and a ``_scatter_fresh`` target is
        allocated uninitialised because every fast path overwrites it fully
        (the fallback path zero-fills first itself).
        """
        result: List[str] = []
        index = 0
        while index < len(body):
            line = body[index]
            match = _ENSURE_CALL.match(line)
            if match:
                indent, targets, helper, buf, shape = match.groups()
                first = targets.split(" = ", 1)[0]
                if "," not in shape:
                    shape = f"({shape.strip('()')},)"
                alloc = "np.zeros" if helper == "_ensure" else "np.empty"
                result += [
                    f"{indent}{targets}env.get('{buf}')",
                    f"{indent}if {first} is None or {first}.shape != {shape}:",
                    f"{indent}    {targets}env['{buf}'] = {alloc}({shape}, dtype=_env_dtype(env))",
                ]
                if helper == "_ensure":
                    result += [
                        f"{indent}else:",
                        f"{indent}    {first}[...] = 0.0",
                    ]
                index += 1
                continue
            match = _ENSURE_GRAD_CALL.match(line)
            if match:
                indent, target, buf = match.groups()
                nxt = body[index + 1] if index + 1 < len(body) else ""
                dense = re.match(
                    rf"^{re.escape(indent)}{re.escape(target)} \+= (.+)$", nxt
                )
                if dense:
                    expr = dense.group(1)
                    result += [
                        f"{indent}{target} = env.get('grad_{buf}')",
                        f"{indent}if {target} is None:",
                        f"{indent}    {target} = ({expr}) + 0.0",
                        f"{indent}    if {target}.shape != env['{buf}'].shape:",
                        f"{indent}        {target} = np.zeros_like(env['{buf}'])",
                        f"{indent}        {target} += {expr}",
                        f"{indent}    env['grad_{buf}'] = {target}",
                        f"{indent}else:",
                        f"{indent}    {target} += {expr}",
                    ]
                    index += 2
                    continue
                scattered = nxt.startswith(f"{indent}_scatter_fresh({target}, ")
                alloc_like = "np.empty_like" if scattered else "np.zeros_like"
                result += [
                    f"{indent}{target} = env.get('grad_{buf}')",
                    f"{indent}if {target} is None:",
                    f"{indent}    {target} = env['grad_{buf}'] = {alloc_like}(env['{buf}'])",
                ]
                index += 1
                continue
            result.append(line)
            index += 1
        return result

    # ------------------------------------------------------------------
    def _segment_count(self, kernel: KernelInstance) -> Optional[int]:
        """Compile-time segment count of the kernel's launch loop, if known."""
        if not isinstance(kernel, GemmKernel) or kernel.type_selector == "none":
            return None
        from repro.ir.inter_op.space import Space

        if kernel.m_space in (Space.EDGE, Space.COMPACT):
            return self.num_edge_types
        if kernel.m_space is Space.NODE and kernel.type_selector in (
            "ntype",
            "src_ntype",
            "dst_ntype",
        ):
            return self.num_node_types
        return None

    def _segment_mask(self, kernel: KernelInstance) -> Optional[tuple]:
        """Per-segment occupancy of the kernel's launch loop, if bound.

        Mirrors :meth:`_segment_count`'s space dispatch against the
        ``occupancy`` masks captured from a bound graph; ``None`` when the
        generator is not occupancy-specialised or the kernel has no typed
        segment loop.
        """
        if self.occupancy is None:
            return None
        if not isinstance(kernel, GemmKernel) or kernel.type_selector == "none":
            return None
        from repro.ir.inter_op.space import Space

        edge_mask, node_mask = self.occupancy
        if kernel.m_space in (Space.EDGE, Space.COMPACT):
            return edge_mask
        if kernel.m_space is Space.NODE and kernel.type_selector in (
            "ntype",
            "src_ntype",
            "dst_ntype",
        ):
            return node_mask
        return None

    def _unroll_segments(
        self, body: List[str], count: int, mask: Optional[tuple] = None
    ) -> List[str]:
        """Replace ``for t in range(num_segments)`` with per-relation blocks.

        With an occupancy ``mask``, empty relations emit nothing at all —
        each occupied relation's block is identical to the unmasked unroll
        (the ``end > start`` guard stays, so the occupied blocks are
        bit-identical text), which is what lets a 300-relation schema with a
        handful of occupied relations run as a handful of straight-line
        blocks.
        """
        try:
            loop_at = body.index("    for t in range(num_segments):")
        except ValueError:
            return body
        prologue = body[loop_at + 1 : loop_at + 3]
        if prologue != [
            "        start, end = seg_ptr[t], seg_ptr[t + 1]",
            "        if end <= start:",
        ] or body[loop_at + 3] != "            continue":
            return body
        segment_body = body[loop_at + 4 :]
        unrolled = body[:loop_at]
        for t in range(count):
            if mask is not None and not mask[t]:
                continue
            unrolled.append(f"    start, end = seg_ptr[{t}], seg_ptr[{t + 1}]")
            unrolled.append("    if end > start:")
            for line in segment_body:
                unrolled.append(_LOOP_VAR.sub(str(t), line))
        return unrolled

    # ------------------------------------------------------------------
    def _collect_ctx_attrs(self, body: List[str]) -> List[str]:
        attrs: List[str] = []
        for line in body:
            for match in re.finditer(r"_c_([A-Za-z_]\w*)", line):
                if match.group(1) not in attrs:
                    attrs.append(match.group(1))
        return attrs

    def _hoist_env_reads(self, body: List[str], lazy_gradients: bool = False) -> List[str]:
        """Bind every buffer local that is read before the body first writes it.

        Inputs, parameters, and arena-bound intermediates are all present in
        ``env`` on entry; a single dict read per buffer replaces one lookup
        per use in the interp backend.  With ``lazy_gradients`` (the backward
        function), gradient reads seed their own zeros when absent: the
        module declares ``seeds_gradients`` so the executor skips its eager
        zero-seeding loop, and only the gradients the backward actually reads
        before accumulating — adjoint roots — get allocated.  Caller-seeded
        output gradients are found by the ``env.get`` and used as-is.
        """
        written: Set[str] = set()
        hoists: List[str] = []
        hoisted: Set[str] = set()
        for line in body:
            parts = line.split(" = ")
            targets = [part.strip() for part in parts[:-1]] if len(parts) > 1 else []
            pure_targets = {part for part in targets if _LOCAL_TOKEN.fullmatch(part)}
            read_text = parts[-1] if len(parts) > 1 else line
            read_text = " ".join([read_text] + [part for part in targets if part not in pure_targets])
            for token in _LOCAL_TOKEN.findall(read_text):
                if token not in written and token not in hoisted:
                    name = token[3:]
                    if lazy_gradients and name.startswith("grad_"):
                        base = name[len("grad_") :]
                        hoists += [
                            f"    {token} = env.get('{name}')",
                            f"    if {token} is None:",
                            f"        {token} = env['{name}'] = np.zeros_like(env['{base}'])",
                        ]
                    else:
                        hoists.append(f"    {token} = env['{name}']")
                    hoisted.add(token)
            written.update(pure_targets)
        return hoists
