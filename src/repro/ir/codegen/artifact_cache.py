"""Persistent on-disk cache for generated backend sources and code objects.

The whole-plan backends (``python-codegen``, ``mixed``) pay their cost at
compile time: walking the plan, rewriting kernel bodies, and ``compile()``-ing
the emitted source.  That work is deterministic in the compilation-cache key
(program fingerprint × options × graph schema) and the emitter revision, so a
warm *process* — one that compiled the same (plan, options, schema) in an
earlier run — can skip generation and source compilation entirely by loading
the artifact from disk.

Layout: one JSON file per artifact under ``~/.cache/repro/codegen/`` (or
``$REPRO_CODEGEN_CACHE``), holding the source text, its SHA-256, and the
``marshal``-serialised code object.  Loads verify the format version, the
interpreter version (``marshal`` is CPython-version-specific), and the source
hash; any mismatch or corruption is a plain miss — the artifact is
regenerated, never trusted.  Keys fold in a fingerprint of the emitter
modules themselves, so editing the generators invalidates stale artifacts
automatically.

Like the tuning database (``REPRO_TUNING_DB``), the environment override is
re-resolved on every :func:`default_artifact_cache` call, so tests and tools
can repoint the cache mid-process.
"""

from __future__ import annotations

import base64
import hashlib
import json
import marshal
import os
import sys
import threading
from pathlib import Path
from types import CodeType
from typing import Callable, Dict, Optional, Tuple

#: Environment variable overriding the on-disk artifact directory.
CACHE_ENV = "REPRO_CODEGEN_CACHE"

#: Bumped when the on-disk record layout changes; old records become misses.
ARTIFACT_FORMAT_VERSION = 1

#: The emitter modules whose bytes fingerprint the generated-source dialect.
_EMITTER_MODULES = ("python_backend.py", "codegen_backend.py", "mixed_backend.py")


def default_cache_dir() -> Path:
    """The artifact directory: ``$REPRO_CODEGEN_CACHE`` or ``~/.cache/repro/codegen``."""
    override = os.environ.get(CACHE_ENV)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro" / "codegen"


_EMITTER_FINGERPRINT: Optional[str] = None


def emitter_fingerprint() -> str:
    """Hash of the emitter module sources; editing a generator invalidates artifacts."""
    global _EMITTER_FINGERPRINT
    if _EMITTER_FINGERPRINT is None:
        digest = hashlib.sha256()
        root = Path(__file__).parent
        for name in _EMITTER_MODULES:
            try:
                digest.update((root / name).read_bytes())
            except OSError:
                digest.update(name.encode())
        _EMITTER_FINGERPRINT = digest.hexdigest()[:16]
    return _EMITTER_FINGERPRINT


def artifact_key_for(cache_key: object, extra: object = None) -> str:
    """Derive the on-disk artifact key from a compilation-cache key.

    ``cache_key`` is the :func:`repro.frontend.cache.make_cache_key` tuple
    (already a deterministic ``repr``-able value); ``extra`` distinguishes
    artifacts that share a compilation key but not a source — e.g. the mixed
    backend's per-kernel assignment or an occupancy signature.
    """
    payload = repr((ARTIFACT_FORMAT_VERSION, emitter_fingerprint(), cache_key, extra))
    return hashlib.sha256(payload.encode()).hexdigest()


class ArtifactCache:
    """One artifact directory plus hit/miss/store counters (thread-safe)."""

    def __init__(self, directory: Path | str):
        self.directory = Path(directory)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.errors = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(self, key: str) -> Optional[Tuple[str, CodeType]]:
        """Load ``(source, code)`` for ``key``, or ``None`` on any miss.

        Corrupt files, format/interpreter mismatches, and stale source
        hashes all count as misses — the caller regenerates; nothing here
        raises.
        """
        try:
            raw = self._path(key).read_text()
        except OSError:
            with self._lock:
                self.misses += 1
            return None
        try:
            record = json.loads(raw)
            if record.get("version") != ARTIFACT_FORMAT_VERSION:
                raise ValueError("format version mismatch")
            if record.get("python") != list(sys.version_info[:2]):
                raise ValueError("interpreter version mismatch")
            source = record["source"]
            if not isinstance(source, str):
                raise ValueError("malformed source")
            digest = hashlib.sha256(source.encode()).hexdigest()
            if digest != record.get("source_sha"):
                raise ValueError("stale source hash")
            code = marshal.loads(base64.b64decode(record["code_b64"]))
            if not isinstance(code, CodeType):
                raise ValueError("not a code object")
        except Exception:
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return source, code

    def store(self, key: str, source: str, code: CodeType) -> None:
        """Persist an artifact atomically; filesystem errors are tolerated."""
        record = {
            "version": ARTIFACT_FORMAT_VERSION,
            "python": list(sys.version_info[:2]),
            "source_sha": hashlib.sha256(source.encode()).hexdigest(),
            "source": source,
            "code_b64": base64.b64encode(marshal.dumps(code)).decode("ascii"),
        }
        path = self._path(key)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp{os.getpid()}")
            tmp.write_text(json.dumps(record))
            os.replace(tmp, path)
        except OSError:
            with self._lock:
                self.errors += 1
            return
        with self._lock:
            self.stores += 1

    def load_or_generate(
        self, key: Optional[str], filename: str, generate: Callable[[], str]
    ) -> Tuple[str, CodeType]:
        """The backend entry point: cached ``(source, code)`` or a fresh pair.

        ``key=None`` disables persistence (generation without a compilation
        key); otherwise a hit skips both ``generate()`` and ``compile()``.
        """
        if key is not None:
            cached = self.load(key)
            if cached is not None:
                return cached
        source = generate()
        code = compile(source, filename, "exec")
        if key is not None:
            self.store(key, source, code)
        return source, code

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "errors": self.errors,
            }


_GLOBAL_CACHE: Optional[ArtifactCache] = None
_GLOBAL_CACHE_LOCK = threading.Lock()


def default_artifact_cache() -> ArtifactCache:
    """The process-wide artifact cache for the resolved directory.

    Mirrors ``repro.tuner.database.default_tuning_database``: the environment
    override is re-read on every call, and a changed path swaps in a fresh
    cache (with fresh counters) bound to the new directory.
    """
    global _GLOBAL_CACHE
    with _GLOBAL_CACHE_LOCK:
        directory = default_cache_dir()
        if _GLOBAL_CACHE is None or _GLOBAL_CACHE.directory != directory:
            _GLOBAL_CACHE = ArtifactCache(directory)
        return _GLOBAL_CACHE


def artifact_cache_stats() -> Dict[str, int]:
    """Hit/miss/store counters of the current process-wide cache."""
    return default_artifact_cache().stats()


def load_or_generate(
    key: Optional[str], filename: str, generate: Callable[[], str]
) -> Tuple[str, CodeType]:
    """Module-level convenience over :func:`default_artifact_cache`."""
    return default_artifact_cache().load_or_generate(key, filename, generate)
