"""Code generation backends (Section 3.6).

Backends are selected through the registry in
:mod:`repro.ir.codegen.registry` — ``get_backend(name)`` /
``register_backend`` / ``available_backends`` — or, one level up, through
``CompilerOptions(backend="...")``:

* ``python-interp`` (:mod:`repro.ir.codegen.python_backend`) — emits one
  executable Python/numpy function per kernel plus a fused dispatch program;
  the default runtime path, validated for numerical correctness.
* ``python-codegen`` (:mod:`repro.ir.codegen.codegen_backend`) — emits one
  specialised whole-plan ``main_forward``/``main_backward`` source function
  with kernels inlined, buffers and graph index arrays resolved to locals,
  and segment loops unrolled over the schema's relations; bit-identical to
  ``python-interp`` and faster on the compile-once-run-many path.
* ``mixed`` (:mod:`repro.ir.codegen.mixed_backend`) — per-kernel backend
  selection: numpy-bound traversal kernels keep their interp functions,
  dispatch-bound GEMM/projection chains run as whole-plan codegen segments,
  one generated dispatcher calls them in plan order; re-specialised per
  bound graph on the schema's segment occupancy.
* ``cuda-emit`` (:mod:`repro.ir.codegen.cuda_backend`) — emits CUDA-like
  source text for every kernel (specialisations of the GEMM and traversal
  templates); used for inspection and the programming-effort metric, never
  executed.
* :mod:`repro.ir.codegen.host` — emits the host-side dispatch/registration
  code text (the ``TORCH_LIBRARY_FRAGMENT``-style bindings of Figure 5).

Generated sources persist across processes through the on-disk artifact
cache (:mod:`repro.ir.codegen.artifact_cache`, ``$REPRO_CODEGEN_CACHE``).

``generate_python_module`` and ``generate_cuda_source`` remain importable as
deprecated aliases of the registry path.
"""

from repro.ir.codegen.python_backend import (
    GeneratedModule,
    build_python_module,
    generate_python_module,
)
from repro.ir.codegen.artifact_cache import (
    artifact_cache_stats,
    artifact_key_for,
    default_artifact_cache,
)
from repro.ir.codegen.codegen_backend import build_codegen_module
from repro.ir.codegen.cuda_backend import build_cuda_source, generate_cuda_source
from repro.ir.codegen.host import generate_host_source
from repro.ir.codegen.mixed_backend import MixedGeneratedModule, build_mixed_module
from repro.ir.codegen.registry import (
    Backend,
    BackendOptions,
    SourceModule,
    available_backends,
    get_backend,
    register_backend,
)

__all__ = [
    "Backend",
    "BackendOptions",
    "GeneratedModule",
    "MixedGeneratedModule",
    "SourceModule",
    "artifact_cache_stats",
    "artifact_key_for",
    "available_backends",
    "build_codegen_module",
    "build_cuda_source",
    "build_mixed_module",
    "build_python_module",
    "default_artifact_cache",
    "generate_cuda_source",
    "generate_host_source",
    "generate_python_module",
    "get_backend",
    "register_backend",
]
