"""Code generation backends (Section 3.6).

* :mod:`repro.ir.codegen.python_backend` — emits executable Python/numpy
  kernels from a :class:`repro.ir.intra_op.plan.KernelPlan`; this is the path
  the runtime actually runs and the one validated for numerical correctness.
* :mod:`repro.ir.codegen.cuda_backend` — emits CUDA-like source text for every
  kernel (specialisations of the GEMM and traversal templates) plus host
  wrapper functions; used for inspection and the programming-effort metric.
* :mod:`repro.ir.codegen.host` — emits the host-side dispatch/registration
  code text (the ``TORCH_LIBRARY_FRAGMENT``-style bindings of Figure 5).
"""

from repro.ir.codegen.python_backend import GeneratedModule, generate_python_module
from repro.ir.codegen.cuda_backend import generate_cuda_source
from repro.ir.codegen.host import generate_host_source

__all__ = [
    "GeneratedModule",
    "generate_python_module",
    "generate_cuda_source",
    "generate_host_source",
]
