"""Builder DSL for inter-operator level programs.

Models are expressed against this builder in a handful of lines (the paper's
"51 lines of code" for RGCN + RGAT + HGT); each builder call appends one
operator to the program.  The surface closely follows Listing 1 /
Table 2 of the paper: edgewise statements, nodewise aggregation with
``incoming_edges()`` semantics, weight slicing by ``e.etype`` / ``n.ntype``,
and an ``edge_softmax`` helper expanded into primitive operators.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.ir.inter_op.operators import Operator, OpKind
from repro.ir.inter_op.program import InterOpProgram
from repro.ir.inter_op.space import (
    LoopContext,
    NodeBinding,
    Space,
    TypeSelector,
    ValueInfo,
)


class ProgramBuilder:
    """Incrementally builds an :class:`InterOpProgram`.

    Args:
        name: program name.
        in_dim: input feature dimension.
        out_dim: output feature dimension.
    """

    def __init__(self, name: str, in_dim: int, out_dim: int):
        self.program = InterOpProgram(name=name, in_dim=in_dim, out_dim=out_dim)
        self._op_counter = 0

    # ------------------------------------------------------------------
    # value declarations
    # ------------------------------------------------------------------
    def input_node_feature(self, name: str = "h", dim: Optional[int] = None) -> str:
        """Declare the per-node input feature matrix."""
        dim = dim if dim is not None else self.program.in_dim
        self.program.add_value(
            ValueInfo(name=name, space=Space.NODE, feature_shape=(dim,), is_input=True)
        )
        return name

    def input_edge_scalar(self, name: str) -> str:
        """Declare a per-edge scalar input (e.g. RGCN normalisation factors)."""
        self.program.add_value(ValueInfo(name=name, space=Space.EDGE, feature_shape=(), is_input=True))
        return name

    def weight(
        self,
        name: str,
        shape: Tuple[int, ...],
        per_type: Optional[str] = "edge_type",
    ) -> str:
        """Declare a learnable weight.

        Args:
            name: weight name.
            shape: per-slice shape, e.g. ``(in_dim, out_dim)`` or ``(out_dim,)``.
            per_type: ``"edge_type"``, ``"node_type"``, or ``None`` for a
                single shared weight.
        """
        self.program.add_value(
            ValueInfo(
                name=name,
                space=Space.WEIGHT,
                feature_shape=tuple(shape),
                per_type=per_type,
                is_parameter=True,
            )
        )
        return name

    def mark_output(self, name: str) -> str:
        """Mark an existing value as a layer output."""
        self.program.values[name].is_output = True
        return name

    # ------------------------------------------------------------------
    # operator emission
    # ------------------------------------------------------------------
    def _next_name(self, stem: str) -> str:
        self._op_counter += 1
        return f"op{self._op_counter}_{stem}"

    def _emit(
        self,
        kind: OpKind,
        context: LoopContext,
        inputs,
        output_name: str,
        output_space: Space,
        output_shape: Tuple[int, ...],
        type_selector: TypeSelector = TypeSelector.NONE,
        bindings: Optional[Dict[str, NodeBinding]] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> str:
        if output_name not in self.program.values:
            self.program.add_value(
                ValueInfo(name=output_name, space=output_space, feature_shape=output_shape)
            )
        operator = Operator(
            name=self._next_name(kind.value),
            kind=kind,
            context=context,
            inputs=list(inputs),
            output=output_name,
            type_selector=type_selector,
            bindings=bindings or {},
            attrs=attrs or {},
        )
        self.program.add_operator(operator)
        return output_name

    # -- GEMM-eligible ---------------------------------------------------
    def typed_linear(
        self,
        x: str,
        weight: str,
        out: str,
        binding: NodeBinding = NodeBinding.SRC,
        type_selector: TypeSelector = TypeSelector.EDGE_TYPE,
        context: LoopContext = LoopContext.EDGEWISE,
    ) -> str:
        """``out[i] = x[i] @ weight[type(i)]`` — edgewise or nodewise typed linear."""
        out_dim = self.program.values[weight].feature_shape[-1]
        out_space = Space.EDGE if context is LoopContext.EDGEWISE else Space.NODE
        x_space = self.program.values[x].space
        bindings = {}
        if x_space is Space.NODE and context is LoopContext.EDGEWISE:
            bindings[x] = binding
        return self._emit(
            OpKind.TYPED_LINEAR,
            context,
            [x, weight],
            out,
            out_space,
            (out_dim,),
            type_selector=type_selector,
            bindings=bindings,
        )

    def linear(self, x: str, weight: str, out: str, context: LoopContext = LoopContext.NODEWISE) -> str:
        """``out[i] = x[i] @ weight`` — untyped linear layer (e.g. RGCN's W0)."""
        out_dim = self.program.values[weight].feature_shape[-1]
        out_space = self.program.values[x].space if context is not LoopContext.NODEWISE else Space.NODE
        return self._emit(OpKind.LINEAR, context, [x, weight], out, out_space, (out_dim,))

    # -- traversal-eligible ----------------------------------------------
    def dot_product(self, a: str, b: str, out: str, context: LoopContext = LoopContext.EDGEWISE,
                    bindings: Optional[Dict[str, NodeBinding]] = None) -> str:
        """Rowwise dot product producing a per-row scalar."""
        space = Space.EDGE if context is LoopContext.EDGEWISE else Space.NODE
        return self._emit(OpKind.DOT_PRODUCT, context, [a, b], out, space, (), bindings=bindings)

    def typed_vec_dot(
        self,
        a: str,
        weight_vec: str,
        out: str,
        binding: NodeBinding = NodeBinding.NONE,
        type_selector: TypeSelector = TypeSelector.EDGE_TYPE,
    ) -> str:
        """``out[e] = <a[e], weight_vec[type(e)]>`` — dot with a per-type vector."""
        bindings = {}
        if self.program.values[a].space is Space.NODE and binding is not NodeBinding.NONE:
            bindings[a] = binding
        return self._emit(
            OpKind.TYPED_VEC_DOT,
            LoopContext.EDGEWISE,
            [a, weight_vec],
            out,
            Space.EDGE,
            (),
            type_selector=type_selector,
            bindings=bindings,
        )

    def binary(self, op: str, a: str, b: str, out: str,
               context: LoopContext = LoopContext.EDGEWISE,
               bindings: Optional[Dict[str, NodeBinding]] = None) -> str:
        """Rowwise binary arithmetic (``add`` / ``sub`` / ``mul`` / ``div``)."""
        shape = self.program.values[a].feature_shape or self.program.values[b].feature_shape
        space = Space.EDGE if context is LoopContext.EDGEWISE else Space.NODE
        return self._emit(OpKind.BINARY, context, [a, b], out, space, shape,
                          bindings=bindings, attrs={"op": op})

    def unary(self, fn: str, x: str, out: str, context: LoopContext = LoopContext.EDGEWISE,
              **attrs) -> str:
        """Rowwise unary function (``exp`` / ``leaky_relu`` / ``relu``)."""
        value = self.program.values[x]
        space = value.space if context is LoopContext.EDGEWISE else Space.NODE
        merged = {"fn": fn}
        merged.update(attrs)
        return self._emit(OpKind.UNARY, context, [x], out, space, value.feature_shape, attrs=merged)

    def scale(self, x: str, scalar: str, out: str) -> str:
        """Multiply per-edge row vectors by a per-edge scalar."""
        shape = self.program.values[x].feature_shape
        return self._emit(OpKind.SCALE, LoopContext.EDGEWISE, [x, scalar], out, Space.EDGE, shape)

    def gather_dst(self, node_value: str, out: str) -> str:
        """Gather a per-destination-node value onto each edge."""
        shape = self.program.values[node_value].feature_shape
        return self._emit(
            OpKind.GATHER_DST,
            LoopContext.EDGEWISE,
            [node_value],
            out,
            Space.EDGE,
            shape,
            bindings={node_value: NodeBinding.DST},
        )

    def aggregate(self, edge_value: str, out: str, scale: Optional[str] = None) -> str:
        """Sum (optionally attention-weighted) edge data into destination nodes."""
        shape = self.program.values[edge_value].feature_shape
        inputs = [edge_value] + ([scale] if scale else [])
        attrs = {"weighted": scale is not None}
        return self._emit(OpKind.AGGREGATE, LoopContext.NODEWISE_AGG, inputs, out, Space.NODE, shape,
                          attrs=attrs)

    # -- manipulation / fallback ------------------------------------------
    def weight_product(self, weight_a: str, weight_b: str, out: str,
                       type_selector: TypeSelector = TypeSelector.EDGE_TYPE) -> str:
        """Product of two per-type weights (introduced by reordering)."""
        a_shape = self.program.values[weight_a].feature_shape
        b_shape = self.program.values[weight_b].feature_shape
        if len(b_shape) == 1:
            out_shape: Tuple[int, ...] = (a_shape[0],)
        else:
            out_shape = (a_shape[0], b_shape[-1])
        per_type = self.program.values[weight_a].per_type or self.program.values[weight_b].per_type
        if out not in self.program.values:
            self.program.add_value(
                ValueInfo(name=out, space=Space.WEIGHT, feature_shape=out_shape, per_type=per_type)
            )
        operator = Operator(
            name=self._next_name(OpKind.WEIGHT_PRODUCT.value),
            kind=OpKind.WEIGHT_PRODUCT,
            context=LoopContext.PRELUDE,
            inputs=[weight_a, weight_b],
            output=out,
            type_selector=type_selector,
        )
        self.program.add_operator(operator)
        return out

    def copy(self, x: str, out: str) -> str:
        """Identity copy (rename)."""
        value = self.program.values[x]
        return self._emit(OpKind.COPY, LoopContext.EDGEWISE if value.space is Space.EDGE
                          else LoopContext.NODEWISE, [x], out, value.space, value.feature_shape)

    # ------------------------------------------------------------------
    # composite helpers
    # ------------------------------------------------------------------
    def edge_softmax(self, scores: str, out: str) -> str:
        """Expand ``edge_softmax`` into primitive operators (Listing 1).

        ``exp`` per edge → per-destination sum → gather the sum back onto
        edges → divide.  The expansion mirrors lines 1-9 of Listing 1 so the
        later fusion/lowering passes see exactly the same structure.
        """
        exp_scores = self.unary("exp", scores, f"{out}_exp")
        att_sum = self.aggregate(exp_scores, f"{out}_sum")
        att_sum_on_edges = self.gather_dst(att_sum, f"{out}_sum_edges")
        return self.binary("div", exp_scores, att_sum_on_edges, out)

    # ------------------------------------------------------------------
    def finish(self) -> InterOpProgram:
        """Validate and return the built program."""
        self.program.validate()
        return self.program
