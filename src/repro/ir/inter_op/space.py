"""Value spaces, loop contexts, and value metadata for the inter-op IR.

A *space* says what a value is indexed by (one row per node, per edge, per
unique ``(source node, edge type)`` pair, per type for weights, …).  Compact
materialization is expressed purely as changing a value's space from
:attr:`Space.EDGE` to :attr:`Space.COMPACT`; the operator graph itself is
unchanged, exactly as the paper's decoupling of semantics and layout intends.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


class Space(enum.Enum):
    """What a value is indexed by."""

    #: One row per node (global node id order, nodes grouped by type).
    NODE = "node"
    #: One row per edge (edge id order, or sorted by edge type for segment MM).
    EDGE = "edge"
    #: One row per unique (source node, edge type) pair — compact materialization.
    COMPACT = "compact"
    #: One matrix / vector per type (edge type or node type); learnable weights.
    WEIGHT = "weight"
    #: A single value not indexed by graph elements (e.g. a scalar constant).
    GLOBAL = "global"


class LoopContext(enum.Enum):
    """Which for-each loop of the source program an operator belongs to."""

    #: ``for e in g.edges(): ...`` — one iteration per edge.
    EDGEWISE = "edgewise"
    #: ``for n in g.dst_nodes(): for e in n.incoming_edges(): ...`` — aggregation.
    NODEWISE_AGG = "nodewise_agg"
    #: ``for n in g.nodes(): ...`` — per-node computation (no neighbourhood).
    NODEWISE = "nodewise"
    #: Computation among weights only (no graph loop); e.g. reordered products.
    PRELUDE = "prelude"


class TypeSelector(enum.Enum):
    """Which type index selects the weight slice of a typed operator."""

    EDGE_TYPE = "etype"
    SRC_NODE_TYPE = "src_ntype"
    DST_NODE_TYPE = "dst_ntype"
    SELF_NODE_TYPE = "ntype"
    NONE = "none"


class NodeBinding(enum.Enum):
    """Which endpoint a node-space operand is read through inside an edge loop."""

    SRC = "src"
    DST = "dst"
    SELF = "self"
    NONE = "none"


@dataclass
class ValueInfo:
    """Metadata of a named IR value.

    Attributes:
        name: unique value name within a program.
        space: what the value is indexed by.
        feature_shape: trailing (per-row) shape; ``()`` for per-row scalars,
            ``(d,)`` for feature vectors, ``(d_in, d_out)`` for weight matrices.
        per_type: for :attr:`Space.WEIGHT` values, whether there is one slice
            per edge type (``"edge_type"``), per node type (``"node_type"``),
            or a single shared slice (``None``).
        is_input: graph-provided input (node features, normalisation factors).
        is_parameter: learnable parameter.
        is_output: value returned by the layer.
        dtype_bytes: element size in bytes (4 = float32, the paper's setting).
    """

    name: str
    space: Space
    feature_shape: Tuple[int, ...] = ()
    per_type: Optional[str] = None
    is_input: bool = False
    is_parameter: bool = False
    is_output: bool = False
    dtype_bytes: int = 4

    def elements_per_row(self) -> int:
        """Number of scalar elements in one row of this value."""
        total = 1
        for dim in self.feature_shape:
            total *= int(dim)
        return total

    def rows(self, workload) -> int:
        """Number of rows of this value under a given workload.

        Args:
            workload: an object exposing ``num_nodes``, ``num_edges``,
                ``num_unique_pairs``, ``num_edge_types``, ``num_node_types``
                (see :class:`repro.evaluation.workload.WorkloadSpec`).
        """
        if self.space is Space.NODE:
            return workload.num_nodes
        if self.space is Space.EDGE:
            return workload.num_edges
        if self.space is Space.COMPACT:
            return workload.num_unique_pairs
        if self.space is Space.WEIGHT:
            if self.per_type == "edge_type":
                return workload.num_edge_types
            if self.per_type == "node_type":
                return workload.num_node_types
            return 1
        return 1

    def num_bytes(self, workload) -> int:
        """Total size in bytes under a given workload."""
        return self.rows(workload) * self.elements_per_row() * self.dtype_bytes

    def copy_with(self, **overrides) -> "ValueInfo":
        """Return a copy with selected fields replaced."""
        data = {
            "name": self.name,
            "space": self.space,
            "feature_shape": self.feature_shape,
            "per_type": self.per_type,
            "is_input": self.is_input,
            "is_parameter": self.is_parameter,
            "is_output": self.is_output,
            "dtype_bytes": self.dtype_bytes,
        }
        data.update(overrides)
        return ValueInfo(**data)
