"""Inter-operator level transformation passes.

Implements the two headline optimizations of the paper plus the supporting
dead-code elimination:

* :class:`LinearOperatorReorderingPass` (Section 3.2.3) — when a linear
  operator is followed by another linear operator, switch their order whenever
  this produces an operator *between weights*, reducing a factor from
  ``num_edges`` to the hidden dimension.
* :class:`CompactMaterializationPass` (Section 3.2.2) — edgewise values that
  depend only on the source node and the edge type are re-laid-out with one
  row per unique ``(source node, edge type)`` pair instead of one row per
  edge.
* :class:`DeadCodeEliminationPass` — removes operators whose results can no
  longer reach an output (e.g. the typed linear layer that only fed a
  reordered dot product).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.ir.inter_op.operators import Operator, OpKind
from repro.ir.inter_op.program import InterOpProgram
from repro.ir.inter_op.space import (
    LoopContext,
    NodeBinding,
    Space,
    TypeSelector,
    ValueInfo,
)


class Pass:
    """Base class of inter-op IR passes."""

    name = "pass"

    def run(self, program: InterOpProgram) -> InterOpProgram:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass
class PassManager:
    """Applies a pipeline of passes to a (cloned) program."""

    passes: List[Pass] = field(default_factory=list)

    def add(self, pass_: Pass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(self, program: InterOpProgram) -> InterOpProgram:
        """Run all passes in order on a clone of ``program``."""
        current = program.clone()
        applied = list(current.metadata.get("applied_passes", []))
        for pass_ in self.passes:
            current = pass_.run(current)
            current.validate()
            applied.append(pass_.name)
        current.metadata["applied_passes"] = applied
        return current


class DeadCodeEliminationPass(Pass):
    """Remove operators and values that cannot reach any program output."""

    name = "dead_code_elimination"

    def run(self, program: InterOpProgram) -> InterOpProgram:
        live = program.live_values()
        doomed = [op.name for op in program.operators if op.output not in live]
        if doomed:
            program.remove_operators(doomed)
            program.remove_unused_values()
            removed = list(program.metadata.get("dce_removed_operators", []))
            removed.extend(doomed)
            program.metadata["dce_removed_operators"] = removed
        return program


class LinearOperatorReorderingPass(Pass):
    """Switch the order of chained linear operators to produce weight-weight products.

    Two patterns are rewritten (both arise in RGAT and HGT attention):

    1. ``typed_vec_dot(typed_linear(x, W), w_vec)`` →
       ``typed_vec_dot(x, weight_product(W, w_vec))``.
       The per-edge GEMM feeding the dot product is no longer needed for the
       attention term (dead-code elimination removes it when nothing else
       consumes it), replaced by a tiny per-type matrix-vector product.
    2. ``typed_linear(typed_linear(x, W1), W2)`` →
       ``typed_linear(x, weight_product(W1, W2))``.
       Two chained projections collapse into one GEMM over the edges plus a
       per-type matrix-matrix product among weights.

    Following the paper, rewritten weight products are computed by the
    PyTorch-BMM fallback (they are tiny: one ``d×d`` product per type).
    """

    name = "linear_operator_reordering"

    def run(self, program: InterOpProgram) -> InterOpProgram:
        rewrites = 0
        rewrites += self._reorder_vec_dots(program)
        rewrites += self._reorder_chained_linear(program)
        program.metadata["reordered_operators"] = program.metadata.get("reordered_operators", 0) + rewrites
        if rewrites:
            DeadCodeEliminationPass().run(program)
        return program

    # -- pattern 1: dot with a per-type vector ---------------------------
    def _reorder_vec_dots(self, program: InterOpProgram) -> int:
        rewrites = 0
        for operator in list(program.operators):
            if operator.kind is not OpKind.TYPED_VEC_DOT:
                continue
            projected_name, vec_name = operator.inputs
            producer = program.producer_of(projected_name)
            if producer is None or producer.kind is not OpKind.TYPED_LINEAR:
                continue
            if producer.type_selector is not operator.type_selector:
                continue
            x_name, weight_name = producer.inputs
            new_weight = self._emit_weight_product(
                program, weight_name, vec_name, operator.type_selector, producer
            )
            # Rewrite the dot product to consume the original input features.
            operator.inputs = [x_name, new_weight]
            operator.bindings = dict(producer.bindings)
            rewrites += 1
        return rewrites

    # -- pattern 2: chained typed linear layers --------------------------
    def _reorder_chained_linear(self, program: InterOpProgram) -> int:
        rewrites = 0
        for operator in list(program.operators):
            if operator.kind is not OpKind.TYPED_LINEAR:
                continue
            inner_name, outer_weight = operator.inputs
            producer = program.producer_of(inner_name)
            if producer is None or producer.kind is not OpKind.TYPED_LINEAR:
                continue
            if not self._selectors_composable(producer.type_selector, operator.type_selector):
                continue
            x_name, inner_weight = producer.inputs
            new_weight = self._emit_weight_product(
                program, inner_weight, outer_weight, operator.type_selector, producer
            )
            operator.inputs = [x_name, new_weight]
            operator.type_selector = TypeSelector.EDGE_TYPE
            if program.values[x_name].space is Space.NODE and operator.context is LoopContext.EDGEWISE:
                binding = producer.bindings.get(x_name, NodeBinding.SRC)
                operator.bindings = {x_name: binding}
            rewrites += 1
        return rewrites

    @staticmethod
    def _selectors_composable(inner: TypeSelector, outer: TypeSelector) -> bool:
        """Whether weight slices selected by ``inner`` and ``outer`` can be pre-multiplied.

        A per-source-node-type weight composes with a per-edge-type weight
        because each canonical edge type fixes its source node type; two
        per-edge-type weights trivially compose.
        """
        if outer is not TypeSelector.EDGE_TYPE:
            return False
        return inner in (TypeSelector.EDGE_TYPE, TypeSelector.SRC_NODE_TYPE, TypeSelector.SELF_NODE_TYPE)

    def _emit_weight_product(
        self,
        program: InterOpProgram,
        weight_a: str,
        weight_b: str,
        selector: TypeSelector,
        producer: Operator,
    ) -> str:
        """Insert a weight-product operator (prelude context) and return its output name."""
        a_info = program.values[weight_a]
        b_info = program.values[weight_b]
        if len(b_info.feature_shape) == 1:
            out_shape = (a_info.feature_shape[0],)
        else:
            out_shape = (a_info.feature_shape[0], b_info.feature_shape[-1])
        out_name = program.fresh_name(f"{weight_a}_x_{weight_b}")
        program.add_value(
            ValueInfo(name=out_name, space=Space.WEIGHT, feature_shape=out_shape, per_type="edge_type")
        )
        compose = None
        if a_info.per_type == "node_type" and b_info.per_type == "edge_type":
            compose = "src_ntype_x_etype"
        product = Operator(
            name=program.fresh_name(f"reorder_{weight_a}_{weight_b}"),
            kind=OpKind.WEIGHT_PRODUCT,
            context=LoopContext.PRELUDE,
            inputs=[weight_a, weight_b],
            output=out_name,
            type_selector=selector,
            attrs={"compose": compose} if compose else {},
        )
        # Weight products must run before any operator that reads their result:
        # insert at the front of the operator list (prelude).
        program.operators.insert(0, product)
        return out_name

    # ------------------------------------------------------------------
    @staticmethod
    def estimated_multiplies_saved(workload, in_dim: int, out_dim: int) -> float:
        """Multiply-count difference for pattern 1 under a workload (per edge-GEMM removed).

        Before: ``E·d_in·d_out`` (projection) + ``E·d_out`` (dot).
        After:  ``T·d_in·d_out`` (weight product) + ``E·d_in`` (dot).
        """
        before = workload.num_edges * in_dim * out_dim + workload.num_edges * out_dim
        after = workload.num_edge_types * in_dim * out_dim + workload.num_edges * in_dim
        return before - after


class CompactMaterializationPass(Pass):
    """Materialise source/edge-type-determined edgewise values compactly.

    An edgewise operator's output is re-laid-out into the
    :attr:`Space.COMPACT` space (one row per unique ``(source node, edge
    type)`` pair) when every operand is

    * a node value read through the *source* endpoint,
    * a weight sliced by the edge type or by the source node type,
    * an already-compacted value, or
    * a global constant.

    Operands bound to the destination node, per-edge non-compact values, or
    weights sliced by the destination node type keep the output per-edge.
    Downstream consumers that mix compact and per-edge operands keep working:
    the intra-operator access schemes gather compact rows through the
    ``edge → unique pair`` mapping.
    """

    name = "compact_materialization"

    def run(self, program: InterOpProgram) -> InterOpProgram:
        compacted: List[str] = list(program.metadata.get("compacted_values", []))
        for operator in program.operators:
            if operator.context is not LoopContext.EDGEWISE:
                continue
            output_info = program.values[operator.output]
            if output_info.space is not Space.EDGE:
                continue
            if output_info.is_output:
                # Layer outputs keep their documented per-edge shape.
                continue
            if self._is_compactable(program, operator):
                program.values[operator.output] = output_info.copy_with(space=Space.COMPACT)
                compacted.append(operator.output)
        program.metadata["compacted_values"] = compacted
        program.metadata["compaction_enabled"] = True
        return program

    @staticmethod
    def _is_compactable(program: InterOpProgram, operator: Operator) -> bool:
        if operator.kind is OpKind.GATHER_DST:
            return False
        if operator.type_selector is TypeSelector.DST_NODE_TYPE:
            return False
        for input_name in operator.inputs:
            info = program.values[input_name]
            if info.space is Space.NODE:
                if operator.binding_of(input_name) is not NodeBinding.SRC:
                    return False
            elif info.space is Space.EDGE:
                return False
            elif info.space is Space.COMPACT:
                continue
            elif info.space is Space.WEIGHT:
                if info.per_type == "node_type" and operator.type_selector is TypeSelector.DST_NODE_TYPE:
                    return False
            elif info.space is Space.GLOBAL:
                continue
        return True


class ElementwiseFusionPass(Pass):
    """Cluster traversal-eligible operators so the lowering fuses larger groups.

    The lowering driver (Section 3.2.5) fuses *adjacent* traversal-eligible
    operators that share an iteration domain into one kernel.  Program order
    as written frequently interleaves GEMMs and fallback operators between
    elementwise operators that are otherwise independent, which flushes the
    greedy fusion window and leaves each elementwise operator in its own
    kernel.  This pass re-schedules the program — a dependence-preserving
    topological sort that keeps an open cluster of operators sharing a fusion
    domain (edge / compact / node space) for as long as the dataflow allows —
    so the downstream greedy fusion merges whole clusters into single
    traversal kernels.  Semantics are unchanged: only the order of
    independent operators moves.
    """

    name = "elementwise_fusion"

    def run(self, program: InterOpProgram) -> InterOpProgram:
        program.operators = self._schedule(program)
        program.metadata["fusion_groups"] = self._count_groups(program)
        return program

    # ------------------------------------------------------------------
    def _fusion_key(self, program: InterOpProgram, operator: Operator) -> Optional[Space]:
        """Cluster key of an operator, or ``None`` if it cannot fuse."""
        if operator.is_gemm_eligible() or not operator.is_traversal_eligible():
            return None
        return program.iteration_domain(operator)

    def _schedule(self, program: InterOpProgram) -> List[Operator]:
        producer = {op.output: op.name for op in program.operators}
        remaining_deps: Dict[str, Set[str]] = {}
        dependants: Dict[str, List[str]] = {}
        by_name = {op.name: op for op in program.operators}
        for op in program.operators:
            deps = {producer[i] for i in op.inputs if i in producer}
            remaining_deps[op.name] = set(deps)
            for dep in deps:
                dependants.setdefault(dep, []).append(op.name)
        original_index = {op.name: idx for idx, op in enumerate(program.operators)}

        ready = [op.name for op in program.operators if not remaining_deps[op.name]]
        scheduled: List[Operator] = []
        current_key: Optional[Space] = None
        while ready:
            ready.sort(key=original_index.__getitem__)
            pick = None
            if current_key is not None:
                for name in ready:
                    if self._fusion_key(program, by_name[name]) is current_key:
                        pick = name
                        break
            if pick is None:
                # At a cluster boundary, drain GEMM/fallback operators first:
                # hoisting them unblocks their elementwise consumers, so the
                # next cluster can absorb operators that an interleaved GEMM
                # would otherwise have split apart.
                for name in ready:
                    if self._fusion_key(program, by_name[name]) is None:
                        pick = name
                        break
            if pick is None:
                pick = ready[0]
            ready.remove(pick)
            operator = by_name[pick]
            scheduled.append(operator)
            key = self._fusion_key(program, operator)
            # An aggregation closes its loop nest (global barrier): start a
            # fresh cluster after it, exactly like the lowering's fusion rule.
            current_key = None if operator.kind is OpKind.AGGREGATE else key
            for dependant in dependants.get(pick, []):
                remaining_deps[dependant].discard(pick)
                if not remaining_deps[dependant]:
                    ready.append(dependant)
        if len(scheduled) != len(program.operators):  # pragma: no cover - cycle guard
            raise RuntimeError("elementwise fusion scheduling dropped operators (dependency cycle?)")
        return scheduled

    def _count_groups(self, program: InterOpProgram) -> int:
        """Number of maximal fusable clusters in the scheduled order."""
        groups = 0
        previous_key: Optional[Space] = None
        for operator in program.operators:
            key = self._fusion_key(program, operator)
            if key is not None and key is not previous_key:
                groups += 1
            previous_key = None if operator.kind is OpKind.AGGREGATE else key
        return groups


def default_pipeline(
    enable_compaction: bool,
    enable_reordering: bool,
    enable_elementwise_fusion: bool = False,
) -> PassManager:
    """The standard pass pipeline for a given optimization configuration."""
    manager = PassManager()
    if enable_reordering:
        manager.add(LinearOperatorReorderingPass())
    if enable_compaction:
        manager.add(CompactMaterializationPass())
    manager.add(DeadCodeEliminationPass())
    if enable_elementwise_fusion:
        manager.add(ElementwiseFusionPass())
    return manager


def pipeline_for_options(options) -> PassManager:
    """The pass pipeline selected by a frontend ``CompilerOptions`` instance.

    Accepts anything exposing ``compact_materialization``,
    ``linear_operator_reordering``, and ``fuse_elementwise`` attributes (kept
    duck-typed to avoid an ir → frontend import cycle).  This is the single
    place the compiler and the autotuner translate option switches into a
    pass list, so every tuner candidate goes through exactly the pipeline a
    direct compilation with those switches would.
    """
    return default_pipeline(
        enable_compaction=options.compact_materialization,
        enable_reordering=options.linear_operator_reordering,
        enable_elementwise_fusion=options.fuse_elementwise,
    )
