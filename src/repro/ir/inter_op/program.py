"""The inter-operator level program: values + operators in dataflow order."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.ir.inter_op.operators import Operator, OpKind
from repro.ir.inter_op.space import LoopContext, NodeBinding, Space, TypeSelector, ValueInfo


class IRValidationError(ValueError):
    """Raised when an inter-op program violates a structural invariant."""


@dataclass
class InterOpProgram:
    """A single RGNN layer expressed at the inter-operator level.

    Attributes:
        name: model/layer name (e.g. ``"rgat_layer"``).
        values: all named values with their metadata.
        operators: operators in topological (program) order.
        in_dim / out_dim: feature dimensions of the layer.
        metadata: free-form annotations recorded by passes (for reporting).
    """

    name: str
    values: Dict[str, ValueInfo] = field(default_factory=dict)
    operators: List[Operator] = field(default_factory=list)
    in_dim: int = 0
    out_dim: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def add_value(self, value: ValueInfo) -> ValueInfo:
        """Register a value; raises on duplicate names."""
        if value.name in self.values:
            raise IRValidationError(f"duplicate value name {value.name!r}")
        self.values[value.name] = value
        return value

    def add_operator(self, operator: Operator) -> Operator:
        """Append an operator; all inputs and the output must be registered."""
        for input_name in operator.inputs:
            if input_name not in self.values:
                raise IRValidationError(
                    f"operator {operator.name!r} reads unknown value {input_name!r}"
                )
        if operator.output not in self.values:
            raise IRValidationError(
                f"operator {operator.name!r} writes unknown value {operator.output!r}"
            )
        self.operators.append(operator)
        return operator

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def value(self, name: str) -> ValueInfo:
        return self.values[name]

    def producer_of(self, value_name: str) -> Optional[Operator]:
        """The operator producing ``value_name``, or ``None`` for inputs."""
        for operator in self.operators:
            if operator.output == value_name:
                return operator
        return None

    def consumers_of(self, value_name: str) -> List[Operator]:
        """All operators reading ``value_name``."""
        return [op for op in self.operators if value_name in op.inputs]

    def input_values(self) -> List[ValueInfo]:
        return [v for v in self.values.values() if v.is_input]

    def parameter_values(self) -> List[ValueInfo]:
        return [v for v in self.values.values() if v.is_parameter]

    def output_values(self) -> List[ValueInfo]:
        return [v for v in self.values.values() if v.is_output]

    def operators_in_context(self, context: LoopContext) -> List[Operator]:
        return [op for op in self.operators if op.context is context]

    def iteration_domain(self, operator: Operator) -> Space:
        """The space an operator's kernel iterates over when lowered.

        Shared by the lowering driver's template grouping and the elementwise
        fusion pass's clustering, which must agree on domains for clusters to
        actually fuse.
        """
        if operator.kind is OpKind.AGGREGATE:
            return Space.EDGE
        if operator.context is LoopContext.NODEWISE:
            return Space.NODE
        return self.values[operator.output].space

    def count_kind(self, kind: OpKind) -> int:
        return sum(1 for op in self.operators if op.kind is kind)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raises :class:`IRValidationError`.

        * every operator input is either a program input, a parameter, or
          produced by an earlier operator (SSA-like ordering);
        * every value is produced at most once;
        * typed operators declare a type selector;
        * outputs are produced by some operator;
        * node-space inputs of edgewise operators carry an endpoint binding.
        """
        produced: Set[str] = set()
        for value in self.values.values():
            if value.is_input or value.is_parameter:
                produced.add(value.name)
        seen_outputs: Set[str] = set()
        for operator in self.operators:
            for input_name in operator.inputs:
                if input_name not in produced:
                    raise IRValidationError(
                        f"operator {operator.name!r} reads {input_name!r} before it is produced"
                    )
            if operator.output in seen_outputs:
                raise IRValidationError(f"value {operator.output!r} produced more than once")
            seen_outputs.add(operator.output)
            produced.add(operator.output)
            self._validate_operator(operator)
        for value in self.output_values():
            if value.name not in produced:
                raise IRValidationError(f"output value {value.name!r} is never produced")

    def _validate_operator(self, operator: Operator) -> None:
        if operator.kind in (OpKind.TYPED_LINEAR, OpKind.TYPED_VEC_DOT):
            if operator.type_selector is TypeSelector.NONE:
                raise IRValidationError(
                    f"typed operator {operator.name!r} must declare a type selector"
                )
        if operator.context is LoopContext.EDGEWISE:
            for input_name in operator.inputs:
                value = self.values[input_name]
                if value.space is Space.NODE and operator.binding_of(input_name) is NodeBinding.NONE:
                    raise IRValidationError(
                        f"edgewise operator {operator.name!r} reads node value {input_name!r} "
                        "without a src/dst binding"
                    )
        if operator.kind is OpKind.AGGREGATE and operator.context is not LoopContext.NODEWISE_AGG:
            raise IRValidationError(
                f"aggregate operator {operator.name!r} must run in the nodewise aggregation context"
            )

    # ------------------------------------------------------------------
    # transformations used by passes
    # ------------------------------------------------------------------
    def remove_operators(self, names: Iterable[str]) -> None:
        """Remove operators by name (used by dead-code elimination)."""
        doomed = set(names)
        self.operators = [op for op in self.operators if op.name not in doomed]

    def remove_unused_values(self) -> List[str]:
        """Drop values that are neither read, produced, inputs, nor outputs."""
        used: Set[str] = set()
        for operator in self.operators:
            used.update(operator.inputs)
            used.add(operator.output)
        removed = []
        for name in list(self.values):
            value = self.values[name]
            if name not in used and not (value.is_input or value.is_output):
                del self.values[name]
                removed.append(name)
        return removed

    def live_values(self) -> Set[str]:
        """Values reachable backwards from the program outputs."""
        live: Set[str] = {v.name for v in self.output_values()}
        changed = True
        while changed:
            changed = False
            for operator in self.operators:
                if operator.output in live:
                    for input_name in operator.inputs:
                        if input_name not in live:
                            live.add(input_name)
                            changed = True
        return live

    def fresh_name(self, stem: str) -> str:
        """Return a value/operator name not yet used in the program."""
        if stem not in self.values and all(op.name != stem for op in self.operators):
            return stem
        index = 1
        while True:
            candidate = f"{stem}_{index}"
            if candidate not in self.values and all(op.name != candidate for op in self.operators):
                return candidate
            index += 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def dump(self) -> str:
        """Human-readable IR listing (used by tests and the IR inspection example)."""
        lines = [f"program {self.name} (in_dim={self.in_dim}, out_dim={self.out_dim})"]
        lines.append("  values:")
        for value in self.values.values():
            flags = []
            if value.is_input:
                flags.append("input")
            if value.is_parameter:
                flags.append("param")
            if value.is_output:
                flags.append("output")
            per_type = f" per {value.per_type}" if value.per_type else ""
            lines.append(
                f"    {value.name}: {value.space.value}{per_type} shape={value.feature_shape}"
                + (f" [{', '.join(flags)}]" if flags else "")
            )
        lines.append("  operators:")
        for operator in self.operators:
            lines.append(f"    {operator.describe()}")
        return "\n".join(lines)

    def clone(self) -> "InterOpProgram":
        """Deep-enough copy for pass pipelines (operators/values duplicated)."""
        program = InterOpProgram(
            name=self.name,
            in_dim=self.in_dim,
            out_dim=self.out_dim,
            metadata=dict(self.metadata),
        )
        for value in self.values.values():
            program.values[value.name] = value.copy_with()
        for operator in self.operators:
            program.operators.append(
                Operator(
                    name=operator.name,
                    kind=operator.kind,
                    context=operator.context,
                    inputs=list(operator.inputs),
                    output=operator.output,
                    type_selector=operator.type_selector,
                    bindings=dict(operator.bindings),
                    attrs=dict(operator.attrs),
                )
            )
        return program

    def source_line_count(self) -> int:
        """Number of 'source lines' the model definition corresponds to.

        Used by the programming-effort metric (Section 4.1): one line per
        operator plus one per declared parameter.
        """
        return len(self.operators) + len(self.parameter_values())
