"""Lowering from the inter-operator level IR to a kernel plan.

Following Section 3.2.5, the driver scans the program three times:

1. every GEMM-eligible operator becomes an instance of the GEMM template;
2. remaining traversal-eligible operators are fused greedily — adjacent
   operators sharing a loop context and iteration domain become one traversal
   instance — after loop canonicalisation;
3. everything left falls back to the PyTorch-like runtime.

Backward kernels are emitted by walking the forward kernels in reverse and
asking each instance for its adjoint(s) (Section 3.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.ir.inter_op.operators import Operator, OpKind
from repro.ir.inter_op.program import InterOpProgram
from repro.ir.inter_op.space import LoopContext, NodeBinding, Space, ValueInfo
from repro.ir.intra_op.access import (
    AccessScheme,
    GatherKind,
    ScatterKind,
    gather_scheme,
    scatter_scheme,
)
from repro.ir.intra_op.kernels import (
    FallbackKernel,
    GemmKernel,
    GemmOperand,
    KernelInstance,
    MicroOp,
    TraversalKernel,
)
from repro.ir.intra_op.plan import KernelPlan
from repro.ir.intra_op.schedule import (
    GemmSchedule,
    TraversalSchedule,
    merge_traversal_schedules,
    traversal_schedules_compatible,
)


@dataclass
class LoweringOptions:
    """Knobs of the lowering driver.

    Attributes:
        gemm_schedule: schedule applied to GEMM-template instances.
        traversal_schedule: schedule applied to traversal-template instances.
        enable_fusion: fuse adjacent traversal operators into one kernel.
        merge_adjacent_kernels: after lowering, merge consecutive traversal
            kernels that share a domain and a compatible schedule into one
            fused kernel (see :func:`fuse_adjacent_traversal_kernels`).
        emit_backward: also emit the backward kernel list (training).
    """

    gemm_schedule: GemmSchedule = field(default_factory=GemmSchedule)
    traversal_schedule: TraversalSchedule = field(default_factory=TraversalSchedule)
    enable_fusion: bool = True
    merge_adjacent_kernels: bool = False
    emit_backward: bool = True


def lower_program(program: InterOpProgram, options: Optional[LoweringOptions] = None) -> KernelPlan:
    """Lower an inter-op program into a :class:`KernelPlan`."""
    options = options or LoweringOptions()
    plan = KernelPlan(name=program.name, metadata=dict(program.metadata))
    for value in program.values.values():
        plan.buffers[value.name] = value
        if value.is_parameter:
            plan.parameter_names.append(value.name)
        if value.is_input:
            plan.input_names.append(value.name)
        if value.is_output:
            plan.output_names.append(value.name)

    lowering = _LoweringContext(program, plan, options)
    lowering.run()

    if options.merge_adjacent_kernels and options.enable_fusion:
        fuse_adjacent_traversal_kernels(plan, program)

    if options.emit_backward:
        for kernel in reversed(plan.forward_kernels):
            plan.backward_kernels.extend(kernel.emit_backward())

    plan.validate()
    return plan


class _LoweringContext:
    """Implements the three-pass greedy lowering."""

    def __init__(self, program: InterOpProgram, plan: KernelPlan, options: LoweringOptions):
        self.program = program
        self.plan = plan
        self.options = options
        self._gemm_counter = 0
        self._traversal_counter = 0
        self._fallback_counter = 0

    # ------------------------------------------------------------------
    def run(self) -> None:
        decisions = self._decide_templates()
        pending_traversal: List[Operator] = []
        for operator in self.program.operators:
            decision = decisions[operator.name]
            if decision == "traversal":
                if pending_traversal and not self._can_fuse(pending_traversal[-1], operator):
                    self._emit_traversal_group(pending_traversal)
                    pending_traversal = []
                pending_traversal.append(operator)
                continue
            if pending_traversal:
                self._emit_traversal_group(pending_traversal)
                pending_traversal = []
            if decision == "gemm":
                self._emit_gemm(operator)
            else:
                self._emit_fallback(operator)
        if pending_traversal:
            self._emit_traversal_group(pending_traversal)

    def _decide_templates(self) -> Dict[str, str]:
        """First/second/third scan: record the template each operator lowers to."""
        decisions: Dict[str, str] = {}
        for operator in self.program.operators:
            if operator.is_gemm_eligible():
                decisions[operator.name] = "gemm"
        for operator in self.program.operators:
            if operator.name not in decisions and operator.is_traversal_eligible():
                decisions[operator.name] = "traversal"
        for operator in self.program.operators:
            decisions.setdefault(operator.name, "fallback")
        return decisions

    # ------------------------------------------------------------------
    # GEMM lowering
    # ------------------------------------------------------------------
    def _emit_gemm(self, operator: Operator) -> None:
        self._gemm_counter += 1
        x_name, weight_name = operator.inputs
        x_info = self.program.values[x_name]
        weight_info = self.program.values[weight_name]
        y_info = self.program.values[operator.output]

        m_space = y_info.space
        x_access = self._gemm_x_access(operator, x_info, m_space)
        y_access = self._gemm_y_access(m_space)
        selector = operator.type_selector.value if operator.kind is OpKind.TYPED_LINEAR else "none"

        kernel = GemmKernel(
            name=f"gemm_{self._gemm_counter}",
            x=GemmOperand(buffer=x_name, info=x_info, access=x_access),
            weight=GemmOperand(buffer=weight_name, info=weight_info),
            y=GemmOperand(buffer=operator.output, info=y_info, access=y_access),
            type_selector=selector,
            m_space=m_space,
            k_dim=x_info.feature_shape[-1] if x_info.feature_shape else 1,
            n_dim=y_info.feature_shape[-1] if y_info.feature_shape else 1,
            schedule=self.options.gemm_schedule,
            source_op=operator.name,
        )
        self.plan.forward_kernels.append(kernel)

    @staticmethod
    def _gemm_x_access(operator: Operator, x_info: ValueInfo, m_space: Space) -> AccessScheme:
        binding = operator.binding_of(x_info.name)
        if x_info.space is Space.NODE:
            if operator.context is LoopContext.NODEWISE or m_space is Space.NODE:
                return AccessScheme()
            if binding is NodeBinding.DST:
                return gather_scheme(GatherKind.EDGE_DST)
            if m_space is Space.COMPACT:
                return gather_scheme(GatherKind.UNIQUE_SRC)
            return gather_scheme(GatherKind.EDGE_SRC)
        if x_info.space is Space.EDGE:
            return gather_scheme(GatherKind.ETYPE_PERMUTATION)
        if x_info.space is Space.COMPACT:
            if m_space is Space.COMPACT:
                return AccessScheme()
            return gather_scheme(GatherKind.EDGE_TO_COMPACT)
        return AccessScheme()

    @staticmethod
    def _gemm_y_access(m_space: Space) -> AccessScheme:
        if m_space is Space.EDGE:
            return scatter_scheme(ScatterKind.ETYPE_SEGMENT)
        if m_space is Space.COMPACT:
            return scatter_scheme(ScatterKind.UNIQUE_ETYPE_SEGMENT)
        return AccessScheme()

    # ------------------------------------------------------------------
    # traversal lowering
    # ------------------------------------------------------------------
    def _domain_of(self, operator: Operator) -> Space:
        return self.program.iteration_domain(operator)

    def _can_fuse(self, previous: Operator, current: Operator) -> bool:
        if not self.options.enable_fusion:
            return False
        if previous.kind is OpKind.AGGREGATE:
            # An aggregation closes its loop nest: operators after it need the
            # fully accumulated per-node result, which a single fused kernel
            # could not provide without a global barrier.
            return False
        return self._domain_of(previous) is self._domain_of(current)

    def _emit_traversal_group(self, operators: Sequence[Operator]) -> None:
        self._traversal_counter += 1
        domain = self._domain_of(operators[0])
        micro_ops: List[MicroOp] = []
        buffer_infos: Dict[str, ValueInfo] = {}
        produced_in_group: Set[str] = set()

        for operator in operators:
            access: Dict[str, str] = {}
            scalar: Dict[str, bool] = {}
            for input_name in operator.inputs:
                info = self.program.values[input_name]
                buffer_infos[input_name] = info
                access[input_name] = self._traversal_access(operator, info, domain)
                scalar[input_name] = not info.feature_shape
            output_info = self.program.values[operator.output]
            buffer_infos[operator.output] = output_info
            produced_in_group.add(operator.output)
            micro_ops.append(self._micro_op_for(operator, access, scalar))

        local_values = self._fused_locals(operators, produced_in_group)
        kernel = TraversalKernel(
            name=f"traversal_{self._traversal_counter}",
            domain=domain,
            micro_ops=micro_ops,
            buffer_infos=buffer_infos,
            local_values=local_values,
            schedule=self.options.traversal_schedule,
            source_ops=[op.name for op in operators],
        )
        self.plan.forward_kernels.append(kernel)
        self.plan.fused_values.update(local_values)

    def _traversal_access(self, operator: Operator, info: ValueInfo, domain: Space) -> str:
        """How a traversal micro-op reads one operand, given the kernel domain."""
        binding = operator.binding_of(info.name)
        if info.space is Space.NODE:
            if domain is Space.NODE:
                return "direct"
            if binding is NodeBinding.DST:
                return "dst"
            return "src"
        if info.space is Space.EDGE:
            return "direct"
        if info.space is Space.COMPACT:
            return "direct" if domain is Space.COMPACT else "compact"
        if info.space is Space.WEIGHT:
            return "weight"
        return "direct"

    def _micro_op_for(self, operator: Operator, access: Dict[str, str], scalar: Dict[str, bool]) -> MicroOp:
        attrs: Dict[str, object] = {
            "access": access,
            "scalar": scalar,
            "type_selector": operator.type_selector.value,
        }
        attrs.update(operator.attrs)
        kind_map = {
            OpKind.DOT_PRODUCT: "dot",
            OpKind.TYPED_VEC_DOT: "typed_vec_dot",
            OpKind.BINARY: "binary",
            OpKind.UNARY: "unary",
            OpKind.SCALE: "scale",
            OpKind.GATHER_DST: "copy",
            OpKind.AGGREGATE: "scatter_add",
            OpKind.COPY: "copy",
        }
        return MicroOp(kind=kind_map[operator.kind], inputs=list(operator.inputs), output=operator.output, attrs=attrs)

    def _fused_locals(self, operators: Sequence[Operator], produced: Set[str]) -> Set[str]:
        """Values produced and consumed only inside this fused kernel."""
        locals_: Set[str] = set()
        group_names = {op.name for op in operators}
        for value_name in produced:
            info = self.program.values[value_name]
            if info.is_output or info.is_input or info.is_parameter:
                continue
            consumers = self.program.consumers_of(value_name)
            if consumers and all(consumer.name in group_names for consumer in consumers):
                locals_.add(value_name)
        return locals_

    # ------------------------------------------------------------------
    # fallback lowering
    # ------------------------------------------------------------------
    def _emit_fallback(self, operator: Operator) -> None:
        self._fallback_counter += 1
        inputs = [(name, self.program.values[name]) for name in operator.inputs]
        output_info = self.program.values[operator.output]
        flops = self._fallback_flops(operator, output_info)
        kernel = FallbackKernel(
            name=f"fallback_{self._fallback_counter}",
            op_kind=operator.kind.value,
            inputs=inputs,
            output=(operator.output, output_info),
            flop_count=flops,
            api_calls=1,
            attrs={"type_selector": operator.type_selector.value, **operator.attrs},
        )
        self.plan.forward_kernels.append(kernel)

    def _fallback_flops(self, operator: Operator, output_info: ValueInfo) -> float:
        if operator.kind is OpKind.WEIGHT_PRODUCT:
            a_info = self.program.values[operator.inputs[0]]
            b_info = self.program.values[operator.inputs[1]]
            k = a_info.feature_shape[-1] if len(a_info.feature_shape) > 1 else a_info.feature_shape[0]
            n = b_info.feature_shape[-1] if b_info.feature_shape else 1
            m = a_info.feature_shape[0]
            # One small product per edge type; the workload-dependent type
            # count is folded in by the cost model through rows().
            return 2.0 * m * k * n
        elements = output_info.elements_per_row()
        return float(elements)


# ======================================================================
# post-lowering kernel-level fusion
# ======================================================================
def _traversal_mergeable(previous: KernelInstance, current: KernelInstance) -> bool:
    if not isinstance(previous, TraversalKernel) or not isinstance(current, TraversalKernel):
        return False
    if previous.domain is not current.domain:
        return False
    if any(op.kind == "scatter_add" for op in previous.micro_ops):
        # Aggregations close their loop nest; statements after one need the
        # fully accumulated result, which one grid cannot provide.
        return False
    return traversal_schedules_compatible(previous.schedule, current.schedule)


def fuse_adjacent_traversal_kernels(plan: KernelPlan, program: Optional[InterOpProgram] = None) -> int:
    """Merge consecutive compatible traversal kernels of ``plan`` in place.

    Complements the greedy operator-level fusion: once the
    :class:`~repro.ir.inter_op.passes.ElementwiseFusionPass` (or any other
    rewrite) has brought traversal kernels next to each other, this pass
    concatenates their micro-op lists into a single kernel — one launch, one
    generated function — and, when the producing ``program`` is available,
    promotes values consumed only inside the merged group to fused locals so
    they stop being charged global-memory traffic and footprint.

    Returns the number of merges performed.  Must run before backward kernels
    are emitted (the merged kernel emits one fused adjoint).
    """
    merged: List[KernelInstance] = []
    merges = 0
    for kernel in plan.forward_kernels:
        if merged and _traversal_mergeable(merged[-1], kernel):
            previous = merged[-1]
            buffer_infos = dict(previous.buffer_infos)
            buffer_infos.update(kernel.buffer_infos)
            combined = TraversalKernel(
                name=previous.name,
                domain=previous.domain,
                micro_ops=list(previous.micro_ops) + list(kernel.micro_ops),
                buffer_infos=buffer_infos,
                local_values=set(previous.local_values) | set(kernel.local_values),
                schedule=merge_traversal_schedules(previous.schedule, kernel.schedule),
                source_ops=list(previous.source_ops) + list(kernel.source_ops),
            )
            merged[-1] = combined
            merges += 1
        else:
            merged.append(kernel)
    if not merges:
        return 0
    plan.forward_kernels[:] = merged
    if program is not None:
        for kernel in plan.forward_kernels:
            if isinstance(kernel, TraversalKernel):
                _promote_fused_locals(plan, program, kernel)
    plan.metadata["merged_traversal_kernels"] = plan.metadata.get("merged_traversal_kernels", 0) + merges
    return merges


def _promote_fused_locals(plan: KernelPlan, program: InterOpProgram, kernel: TraversalKernel) -> None:
    """Promote values consumed only within ``kernel``'s operator group to locals."""
    group_names = set(kernel.source_ops)
    produced = {op.output for op in kernel.micro_ops}
    for value_name in produced:
        info = program.values.get(value_name)
        if info is None or info.is_output or info.is_input or info.is_parameter:
            continue
        consumers = program.consumers_of(value_name)
        if consumers and all(consumer.name in group_names for consumer in consumers):
            kernel.local_values.add(value_name)
            plan.fused_values.add(value_name)
