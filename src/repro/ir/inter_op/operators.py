"""Operator kinds of the inter-operator level IR.

The paper groups operators into three families (Table 2): GEMM-eligible
computation (``linear``, ``outer_prod``), GEMM-ineligible computation
(``dot_prod`` and other per-edge/per-node arithmetic), and manipulation
(``reshape``, ``concat``).  The kinds below cover what RGCN, RGAT, and HGT
need, plus the ``WEIGHT_PRODUCT`` operator introduced by linear operator
reordering.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.ir.inter_op.space import LoopContext, NodeBinding, TypeSelector


class OpKind(enum.Enum):
    """Operator kinds understood by the passes and the lowering driver."""

    # --- GEMM-eligible (preferred lowering: GEMM template) -------------
    #: ``out[i] = x[i] @ W[type(i)]`` — the edgewise/nodewise typed linear layer.
    TYPED_LINEAR = "typed_linear"
    #: ``out[i] = x[i] @ W`` — untyped linear layer (e.g. RGCN's self-loop W0).
    LINEAR = "linear"

    # --- GEMM-ineligible per-row computation (traversal template) ------
    #: ``out[i] = <a[i], b[i]>`` — rowwise dot product.
    DOT_PRODUCT = "dot_product"
    #: ``out[i] = <a[i], w[type(i)]>`` — dot with a per-type vector.
    TYPED_VEC_DOT = "typed_vec_dot"
    #: Rowwise binary arithmetic: attrs["op"] in {"add", "sub", "mul", "div"}.
    BINARY = "binary"
    #: Rowwise unary function: attrs["fn"] in {"exp", "leaky_relu", "relu"}.
    UNARY = "unary"
    #: ``out[i] = x[i] * s[i]`` — scale a row vector by a per-row scalar.
    SCALE = "scale"
    #: Gather a per-destination-node value onto edges: ``out[e] = x[dst(e)]``.
    GATHER_DST = "gather_dst"
    #: ``out[v] = sum over incoming edges e of (scale[e] *) x[e]`` — aggregation.
    AGGREGATE = "aggregate"

    # --- weight-only computation introduced by reordering --------------
    #: ``out[t] = W_a[t] @ W_b[t]`` (or matrix-vector); executed via the
    #: PyTorch-BMM fallback exactly as Section 3.2.3 prescribes.
    WEIGHT_PRODUCT = "weight_product"

    # --- manipulation ----------------------------------------------------
    #: Concatenate per-row vectors along the feature dimension.
    CONCAT = "concat"
    #: Copy / rename a value (identity).
    COPY = "copy"


#: Operator kinds the GEMM template can implement.
GEMM_ELIGIBLE = frozenset({OpKind.TYPED_LINEAR, OpKind.LINEAR})

#: Operator kinds the traversal template can implement.
TRAVERSAL_ELIGIBLE = frozenset(
    {
        OpKind.DOT_PRODUCT,
        OpKind.TYPED_VEC_DOT,
        OpKind.BINARY,
        OpKind.UNARY,
        OpKind.SCALE,
        OpKind.GATHER_DST,
        OpKind.AGGREGATE,
        OpKind.COPY,
    }
)

#: Operator kinds that always fall back to the PyTorch-like runtime.
FALLBACK_ONLY = frozenset({OpKind.WEIGHT_PRODUCT, OpKind.CONCAT})


@dataclass
class Operator:
    """One operator of the inter-op IR dataflow graph.

    Attributes:
        name: unique operator name within the program.
        kind: operator kind.
        context: loop context (edgewise / nodewise aggregation / nodewise /
            weight prelude).
        inputs: names of consumed values, in positional order.
        output: name of the produced value.
        type_selector: for typed operators, which type index selects the
            weight slice.
        bindings: per input, which endpoint a :attr:`Space.NODE` operand is
            read through when the operator runs in an edge loop.
        attrs: kind-specific attributes (e.g. ``{"op": "add"}``).
    """

    name: str
    kind: OpKind
    context: LoopContext
    inputs: List[str]
    output: str
    type_selector: TypeSelector = TypeSelector.NONE
    bindings: Dict[str, NodeBinding] = field(default_factory=dict)
    attrs: Dict[str, Any] = field(default_factory=dict)

    def binding_of(self, value_name: str) -> NodeBinding:
        """Endpoint binding of an input value (defaults to ``NONE``)."""
        return self.bindings.get(value_name, NodeBinding.NONE)

    def is_gemm_eligible(self) -> bool:
        """Whether the GEMM template can implement this operator."""
        return self.kind in GEMM_ELIGIBLE

    def is_traversal_eligible(self) -> bool:
        """Whether the traversal template can implement this operator."""
        return self.kind in TRAVERSAL_ELIGIBLE

    def describe(self) -> str:
        """Single-line human-readable description (used in IR dumps)."""
        selector = f", type={self.type_selector.value}" if self.type_selector != TypeSelector.NONE else ""
        bindings = ""
        if self.bindings:
            parts = ", ".join(f"{k}←{v.value}" for k, v in self.bindings.items())
            bindings = f" [{parts}]"
        attrs = f" {self.attrs}" if self.attrs else ""
        return (
            f"{self.output} = {self.kind.value}({', '.join(self.inputs)}{selector})"
            f" @{self.context.value}{bindings}{attrs}"
        )
