"""Inter-operator level IR (Section 3.2 of the paper).

The IR expresses an RGNN layer as a dataflow graph of operators.  Each
operator carries a *loop context* (edgewise, nodewise aggregation, nodewise,
or weight prelude) corresponding to the for-each loops of the paper's
Listing 1, and reads/writes named values that live in a *space*
(per-node, per-edge, per unique ``(source node, edge type)`` pair, per-type
weights, or per-edge scalars).  Data layout is deliberately not part of the
operator semantics — it is decided later (compact materialization) and only
affects the access schemes chosen at the intra-operator level.
"""

from repro.ir.inter_op.space import LoopContext, Space, ValueInfo
from repro.ir.inter_op.operators import OpKind, Operator
from repro.ir.inter_op.program import InterOpProgram
from repro.ir.inter_op.builder import ProgramBuilder
from repro.ir.inter_op.passes import (
    CompactMaterializationPass,
    DeadCodeEliminationPass,
    LinearOperatorReorderingPass,
    Pass,
    PassManager,
)
from repro.ir.inter_op.lowering import lower_program

__all__ = [
    "LoopContext",
    "Space",
    "ValueInfo",
    "OpKind",
    "Operator",
    "InterOpProgram",
    "ProgramBuilder",
    "Pass",
    "PassManager",
    "LinearOperatorReorderingPass",
    "CompactMaterializationPass",
    "DeadCodeEliminationPass",
    "lower_program",
]
