"""Hector's two-level intermediate representation and code generator.

* :mod:`repro.ir.inter_op` — the inter-operator level IR: model semantics as a
  dataflow graph of operators over node/edge/compact value spaces, plus the
  transformation passes (linear operator reordering, compact materialization,
  dead-code elimination) and the greedy lowering driver.
* :mod:`repro.ir.intra_op` — the intra-operator level IR: GEMM-template and
  traversal-template kernel instances with schedules and data access schemes.
* :mod:`repro.ir.codegen` — backends that turn kernel instances into
  executable Python kernels and CUDA-like source text plus host functions.
"""

from repro.ir import inter_op
from repro.ir import intra_op
from repro.ir import codegen

__all__ = ["inter_op", "intra_op", "codegen"]
