"""The kernel plan: the lowered form of one RGNN layer.

A :class:`KernelPlan` is what the code generator consumes: an ordered list of
forward kernel instances, their paired backward instances, buffer metadata,
and bookkeeping about which values were compacted or fused away.  The GPU cost
model, the memory/OOM model, and the runtime executor all operate on plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.ir.inter_op.space import ValueInfo
from repro.ir.intra_op.kernels import KernelInstance


@dataclass
class KernelPlan:
    """Lowered kernels plus buffer metadata for one layer.

    Attributes:
        name: plan name (model + optimization configuration).
        forward_kernels: kernels executed in forward propagation, in order.
        backward_kernels: kernels executed in backward propagation, in order.
        buffers: metadata of every global buffer (inputs, parameters,
            intermediates, outputs).
        parameter_names / input_names / output_names: role bookkeeping.
        fused_values: intermediate values eliminated from global memory by
            kernel fusion (not charged footprint or traffic).
        metadata: propagated inter-op program metadata (applied passes,
            compacted values, …).
    """

    name: str
    forward_kernels: List[KernelInstance] = field(default_factory=list)
    backward_kernels: List[KernelInstance] = field(default_factory=list)
    buffers: Dict[str, ValueInfo] = field(default_factory=dict)
    parameter_names: List[str] = field(default_factory=list)
    input_names: List[str] = field(default_factory=list)
    output_names: List[str] = field(default_factory=list)
    fused_values: Set[str] = field(default_factory=set)
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # kernel queries
    # ------------------------------------------------------------------
    def kernels(self, direction: str = "forward") -> List[KernelInstance]:
        """Kernels of one direction (``"forward"``, ``"backward"``, or ``"all"``)."""
        if direction == "forward":
            return list(self.forward_kernels)
        if direction == "backward":
            return list(self.backward_kernels)
        if direction == "all":
            return list(self.forward_kernels) + list(self.backward_kernels)
        raise ValueError(f"unknown direction {direction!r}")

    def kernels_by_category(self, direction: str = "forward") -> Dict[str, List[KernelInstance]]:
        """Group kernels by template category (gemm / traversal / fallback)."""
        groups: Dict[str, List[KernelInstance]] = {"gemm": [], "traversal": [], "fallback": []}
        for kernel in self.kernels(direction):
            groups.setdefault(kernel.category, []).append(kernel)
        return groups

    def num_kernel_launches(self, workload, direction: str = "forward") -> int:
        """Total device kernel launches for one pass over the layer."""
        return sum(kernel.launches(workload) for kernel in self.kernels(direction))

    def total_flops(self, workload, direction: str = "forward") -> float:
        return sum(kernel.flops(workload) for kernel in self.kernels(direction))

    def total_bytes(self, workload, direction: str = "forward") -> float:
        return sum(
            kernel.bytes_read(workload) + kernel.bytes_written(workload)
            for kernel in self.kernels(direction)
        )

    # ------------------------------------------------------------------
    # memory model
    # ------------------------------------------------------------------
    def materialized_buffers(self) -> List[ValueInfo]:
        """Buffers that occupy global device memory (fused temporaries excluded)."""
        return [info for name, info in self.buffers.items() if name not in self.fused_values]

    def memory_bytes(self, workload, training: bool = False) -> float:
        """Peak device-memory footprint of one pass under a workload.

        Inference holds inputs, parameters, and all materialised
        intermediates.  Training additionally holds a gradient buffer for
        every materialised value (the backward pass reads forward
        intermediates, so they cannot be freed early), which is how weight
        replication in baselines inflates training memory (Section 4.2).
        """
        total = 0.0
        for info in self.materialized_buffers():
            total += info.num_bytes(workload)
        if training:
            for info in self.materialized_buffers():
                total += info.num_bytes(workload)
        # Graph structure arrays: COO src/dst/etype plus segment pointers.
        total += 3 * workload.num_edges * 8
        if self.metadata.get("compaction_enabled"):
            total += workload.num_edges * 8 + workload.num_unique_pairs * 16
        return total

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Compact description used by tests and reports."""
        categories = self.kernels_by_category("forward")
        return {
            "name": self.name,
            "num_forward_kernels": len(self.forward_kernels),
            "num_backward_kernels": len(self.backward_kernels),
            "num_gemm_kernels": len(categories["gemm"]),
            "num_traversal_kernels": len(categories["traversal"]),
            "num_fallback_kernels": len(categories["fallback"]),
            "num_buffers": len(self.buffers),
            "num_fused_values": len(self.fused_values),
            "compaction_enabled": bool(self.metadata.get("compaction_enabled", False)),
            "applied_passes": list(self.metadata.get("applied_passes", [])),
        }

    def schedule_descriptions(self) -> List[str]:
        """Distinct intra-op schedules of the forward kernels, in plan order.

        Used by the autotuner's leaderboard reports: two candidate plans with
        identical kernel structure still differ here when only their schedule
        point (tile size, coarsening, rows per block, …) changed.
        """
        seen: List[str] = []
        for kernel in self.forward_kernels:
            schedule = getattr(kernel, "schedule", None)
            if schedule is None:
                continue
            description = f"{kernel.category} {schedule.describe()}"
            if description not in seen:
                seen.append(description)
        return seen

    def dump(self) -> str:
        """Readable listing of the plan's kernels."""
        lines = [f"kernel plan {self.name}"]
        lines.append("  forward:")
        for kernel in self.forward_kernels:
            lines.append(f"    {kernel.describe()}")
        lines.append("  backward:")
        for kernel in self.backward_kernels:
            lines.append(f"    {kernel.describe()}")
        return "\n".join(lines)

    def validate(self) -> None:
        """Structural checks: every kernel buffer has metadata, outputs are written."""
        for kernel in self.kernels("all"):
            for name in kernel.read_buffers() + kernel.written_buffers():
                base = name[5:] if name.startswith("grad_") else name
                if base not in self.buffers:
                    raise ValueError(f"kernel {kernel.name} references unknown buffer {name!r}")
        written = set()
        for kernel in self.forward_kernels:
            written.update(kernel.written_buffers())
        for output in self.output_names:
            if output not in written and output not in self.input_names:
                raise ValueError(f"plan output {output!r} is never written by a forward kernel")
