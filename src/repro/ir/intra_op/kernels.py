"""Kernel instances derived from the GEMM and traversal templates.

Every instance knows

* its iteration domain and operand buffers, so the Python/CUDA backends can
  generate code for it,
* its arithmetic and memory-traffic volume under a workload, so the GPU cost
  model can price it, and
* how to emit its backward counterpart(s), mirroring how Hector pairs forward
  and backward kernels inside ``autograd.Function`` definitions (Section 3.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.inter_op.space import Space, ValueInfo
from repro.ir.intra_op.access import AccessScheme, GatherKind
from repro.ir.intra_op.schedule import GemmSchedule, TraversalSchedule

FLOAT_BYTES = 4
INDEX_BYTES = 8


def _rows_of_space(space: Space, workload) -> int:
    if space is Space.NODE:
        return workload.num_nodes
    if space is Space.EDGE:
        return workload.num_edges
    if space is Space.COMPACT:
        return workload.num_unique_pairs
    if space is Space.WEIGHT:
        return workload.num_edge_types
    return 1


def _types_of_selector(selector: str, workload) -> int:
    if selector in ("etype",):
        return workload.num_edge_types
    if selector in ("src_ntype", "dst_ntype", "ntype"):
        return workload.num_node_types
    return 1


class KernelInstance:
    """Common interface of generated kernels."""

    #: ``"gemm"``, ``"traversal"``, or ``"fallback"`` — used by breakdowns.
    category: str = "kernel"

    def __init__(self, name: str, direction: str = "forward"):
        self.name = name
        self.direction = direction
        self.uses_atomics: bool = False
        self.has_outer_product: bool = False

    # -- cost interface -------------------------------------------------
    def rows(self, workload) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def flops(self, workload) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def bytes_read(self, workload) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def bytes_written(self, workload) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def launches(self, workload) -> int:
        """Number of device kernel launches this instance issues."""
        return 1

    # -- buffers ----------------------------------------------------------
    def read_buffers(self) -> List[str]:  # pragma: no cover - abstract
        raise NotImplementedError

    def written_buffers(self) -> List[str]:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- backward ---------------------------------------------------------
    def emit_backward(self) -> List["KernelInstance"]:  # pragma: no cover - abstract
        raise NotImplementedError

    def describe(self) -> str:
        return f"{self.name} [{self.category}/{self.direction}]"


# ======================================================================
# GEMM template
# ======================================================================
@dataclass
class GemmOperand:
    """One operand of a GEMM instance: a buffer name plus its access scheme."""

    buffer: str
    info: ValueInfo
    access: AccessScheme = field(default_factory=AccessScheme)


class GemmKernel(KernelInstance):
    """Instance of the GEMM template ``Y[S] = X[G] × W[T]``.

    Args:
        name: unique kernel name (``gemm_<k>``).
        x / weight / y: operands.  ``weight.info.per_type`` and
            ``type_selector`` determine how ``T`` is resolved.
        type_selector: ``"etype"``, ``"src_ntype"``, ``"dst_ntype"``,
            ``"ntype"``, or ``"none"`` for an untyped linear layer.
        m_space: the iteration/output row space (edges, unique pairs, nodes).
        k_dim / n_dim: inner and output feature dimensions.
        schedule: GEMM schedule (tile size, coarsening, launch bounds).
        role: ``"forward"``, ``"dgrad"`` (input gradient), or ``"wgrad"``
            (weight gradient — the outer-product kernel).
    """

    category = "gemm"

    def __init__(
        self,
        name: str,
        x: GemmOperand,
        weight: GemmOperand,
        y: GemmOperand,
        type_selector: str,
        m_space: Space,
        k_dim: int,
        n_dim: int,
        schedule: Optional[GemmSchedule] = None,
        role: str = "forward",
        direction: str = "forward",
        source_op: Optional[str] = None,
    ):
        super().__init__(name, direction)
        self.x = x
        self.weight = weight
        self.y = y
        self.type_selector = type_selector
        self.m_space = m_space
        self.k_dim = int(k_dim)
        self.n_dim = int(n_dim)
        self.schedule = schedule or GemmSchedule()
        self.role = role
        self.source_op = source_op
        if role == "wgrad":
            self.has_outer_product = True
            self.uses_atomics = True
        if role == "dgrad" and x.access.gather in (
            GatherKind.EDGE_SRC,
            GatherKind.UNIQUE_SRC,
            GatherKind.EDGE_TO_COMPACT,
        ):
            self.uses_atomics = True

    # -- cost -------------------------------------------------------------
    def rows(self, workload) -> int:
        return _rows_of_space(self.m_space, workload)

    def num_types(self, workload) -> int:
        return _types_of_selector(self.type_selector, workload)

    def flops(self, workload) -> float:
        return 2.0 * self.rows(workload) * self.k_dim * self.n_dim

    def bytes_read(self, workload) -> float:
        rows = self.rows(workload)
        x_bytes = rows * self.k_dim * FLOAT_BYTES
        w_bytes = self.num_types(workload) * self.k_dim * self.n_dim * FLOAT_BYTES
        index_bytes = 0.0
        if self.x.access.needs_index_traffic():
            index_bytes += rows * INDEX_BYTES
        if self.y.access.needs_index_traffic():
            index_bytes += rows * INDEX_BYTES
        if self.role == "wgrad":
            # Reads both the input rows and the upstream gradient rows.
            x_bytes += rows * self.n_dim * FLOAT_BYTES
        return x_bytes + w_bytes + index_bytes

    def bytes_written(self, workload) -> float:
        if self.role == "wgrad":
            return self.num_types(workload) * self.k_dim * self.n_dim * FLOAT_BYTES
        return self.rows(workload) * self.n_dim * FLOAT_BYTES

    def read_buffers(self) -> List[str]:
        return [self.x.buffer, self.weight.buffer]

    def written_buffers(self) -> List[str]:
        return [self.y.buffer]

    # -- backward ---------------------------------------------------------
    def emit_backward(self) -> List[KernelInstance]:
        """Emit the input-gradient and weight-gradient kernels.

        ``dX[G] += dY[S] × Wᵀ[T]`` and ``dW[T] += Xᵀ[G] × dY[S]``.
        The weight-gradient kernel performs per-type outer products with
        atomic accumulation — the latency bottleneck Section 4.4 profiles.
        """
        if self.role != "forward":
            raise ValueError("backward kernels are emitted from forward GEMM instances only")
        grad_y = GemmOperand(
            buffer=f"grad_{self.y.buffer}",
            info=self.y.info.copy_with(name=f"grad_{self.y.buffer}"),
            access=self.y.access,
        )
        grad_x = GemmOperand(
            buffer=f"grad_{self.x.buffer}",
            info=self.x.info.copy_with(name=f"grad_{self.x.buffer}"),
            access=self.x.access,
        )
        grad_w = GemmOperand(
            buffer=f"grad_{self.weight.buffer}",
            info=self.weight.info.copy_with(name=f"grad_{self.weight.buffer}"),
            access=self.weight.access,
        )
        dgrad = GemmKernel(
            name=f"{self.name}_dgrad",
            x=grad_y,
            weight=self.weight,
            y=grad_x,
            type_selector=self.type_selector,
            m_space=self.m_space,
            k_dim=self.n_dim,
            n_dim=self.k_dim,
            schedule=self.schedule,
            role="dgrad",
            direction="backward",
            source_op=self.source_op,
        )
        wgrad = GemmKernel(
            name=f"{self.name}_wgrad",
            x=self.x,
            weight=grad_y,
            y=grad_w,
            type_selector=self.type_selector,
            m_space=self.m_space,
            k_dim=self.k_dim,
            n_dim=self.n_dim,
            schedule=self.schedule,
            role="wgrad",
            direction="backward",
            source_op=self.source_op,
        )
        return [dgrad, wgrad]

    def describe(self) -> str:
        return (
            f"{self.name}: Y:({self.y.buffer}{self.y.access.describe()}) = "
            f"X:({self.x.buffer}{self.x.access.describe()}) × W:({self.weight.buffer}, {self.type_selector}) "
            f"M={self.m_space.value} K={self.k_dim} N={self.n_dim} "
            f"schedule {self.schedule.describe()} role={self.role}"
        )


# ======================================================================
# Traversal template
# ======================================================================
@dataclass
class MicroOp:
    """One fused statement inside a traversal-template instance.

    Kinds: ``gather_src``, ``gather_dst``, ``gather_compact``, ``read_edge``,
    ``dot``, ``typed_vec_dot``, ``binary``, ``unary``, ``scale``,
    ``scatter_add``, ``copy``.
    """

    kind: str
    inputs: List[str]
    output: str
    attrs: Dict[str, object] = field(default_factory=dict)

    def flops_per_row(self, feature_dim: int) -> float:
        """Floating-point operations per iteration-domain row."""
        if self.kind in ("dot", "typed_vec_dot"):
            return 2.0 * feature_dim
        if self.kind in ("binary", "scale"):
            return float(feature_dim)
        if self.kind == "unary":
            fn = self.attrs.get("fn", "relu")
            return (4.0 if fn == "exp" else 1.0) * feature_dim
        if self.kind == "scatter_add":
            return float(feature_dim)
        return 0.0


class TraversalKernel(KernelInstance):
    """Instance of the node/edge traversal template: fused per-row micro-ops.

    Args:
        name: unique kernel name (``traversal_<k>``).
        domain: iteration domain (edges, unique pairs, or nodes).
        micro_ops: fused statements executed per row.
        buffer_infos: metadata of every global buffer the kernel touches.
        local_values: names of values that exist only inside the fused kernel
            (they are not charged global-memory traffic or footprint).
        schedule: traversal schedule.
    """

    category = "traversal"

    def __init__(
        self,
        name: str,
        domain: Space,
        micro_ops: Sequence[MicroOp],
        buffer_infos: Dict[str, ValueInfo],
        local_values: Optional[Sequence[str]] = None,
        schedule: Optional[TraversalSchedule] = None,
        direction: str = "forward",
        source_ops: Optional[List[str]] = None,
    ):
        super().__init__(name, direction)
        self.domain = domain
        self.micro_ops = list(micro_ops)
        self.buffer_infos = dict(buffer_infos)
        self.local_values = set(local_values or [])
        self.schedule = schedule or TraversalSchedule()
        self.source_ops = source_ops or []
        self.uses_atomics = any(op.kind == "scatter_add" for op in self.micro_ops)

    # -- cost -------------------------------------------------------------
    def rows(self, workload) -> int:
        return _rows_of_space(self.domain, workload)

    def _feature_dim(self, name: str) -> int:
        info = self.buffer_infos.get(name)
        if info is None or not info.feature_shape:
            return 1
        dim = 1
        for d in info.feature_shape:
            dim *= int(d)
        return dim

    def flops(self, workload) -> float:
        rows = self.rows(workload)
        total = 0.0
        for op in self.micro_ops:
            dim = max(self._feature_dim(op.output), max((self._feature_dim(i) for i in op.inputs), default=1))
            total += op.flops_per_row(dim) * rows
        if self.direction == "backward":
            # Each forward statement yields adjoint updates to all operands.
            total *= 2.0
        return total

    def atomic_work_fraction(self) -> float:
        """Share of this kernel's per-row work issued as atomic updates.

        Forward kernels only pay the atomic penalty on their ``scatter_add``
        statements (weighted by feature width); backward kernels accumulate
        every adjoint atomically.  Feeds ``KernelWork.atomic_fraction`` so
        fusing non-atomic micro-ops into an atomic kernel never makes the
        non-atomic share of the work more expensive.
        """
        if not self.uses_atomics:
            return 0.0
        if self.direction == "backward":
            return 1.0
        total = 0.0
        atomic = 0.0
        for op in self.micro_ops:
            dim = max(self._feature_dim(op.output), max((self._feature_dim(i) for i in op.inputs), default=1))
            total += dim
            if op.kind == "scatter_add":
                atomic += dim
        return atomic / total if total else 1.0

    def read_buffers(self) -> List[str]:
        written = {op.output for op in self.micro_ops}
        reads: List[str] = []
        for op in self.micro_ops:
            for name in op.inputs:
                if name in self.buffer_infos and name not in written and name not in reads:
                    reads.append(name)
        return reads

    def written_buffers(self) -> List[str]:
        writes: List[str] = []
        for op in self.micro_ops:
            name = op.output
            if name in self.buffer_infos and name not in self.local_values and name not in writes:
                writes.append(name)
        return writes

    def bytes_read(self, workload) -> float:
        rows = self.rows(workload)
        total = 0.0
        for name in self.read_buffers():
            if name in self.local_values:
                continue
            total += rows * self._feature_dim(name) * FLOAT_BYTES
        # Index traffic: gathers and scatters read one index per row.
        index_ops = sum(
            1 for op in self.micro_ops if op.kind in ("gather_src", "gather_dst", "gather_compact", "scatter_add")
        )
        total += index_ops * rows * INDEX_BYTES
        if self.direction == "backward":
            total *= 2.0
        return total

    def bytes_written(self, workload) -> float:
        rows = self.rows(workload)
        total = 0.0
        for name in self.written_buffers():
            info = self.buffer_infos.get(name)
            out_rows = _rows_of_space(info.space, workload) if info is not None else rows
            total += out_rows * self._feature_dim(name) * FLOAT_BYTES
        if self.direction == "backward":
            total *= 2.0
        return total

    # -- backward ---------------------------------------------------------
    def emit_backward(self) -> List[KernelInstance]:
        """Adjoint traversal kernel.

        The backward instance carries the *forward* micro-op list with
        ``direction="backward"``; the code generator walks the list in reverse
        and emits the adjoint of each statement.  Gradients are accumulated
        with atomic updates (the adjoint of a gather is a scatter-add), which
        is why the paper finds backward traversal kernels latency-bound
        (Section 4.4); arithmetic and traffic are roughly doubled relative to
        the forward kernel.
        """
        grad_infos = dict(self.buffer_infos)
        for name, info in self.buffer_infos.items():
            grad_infos[f"grad_{name}"] = info.copy_with(name=f"grad_{name}")
        backward = TraversalKernel(
            name=f"{self.name}_bwd",
            domain=self.domain,
            micro_ops=self.micro_ops,
            buffer_infos=grad_infos,
            local_values=set(self.local_values),
            schedule=self.schedule,
            direction="backward",
            source_ops=self.source_ops,
        )
        backward.uses_atomics = True
        return [backward]

    def describe(self) -> str:
        ops = "; ".join(f"{op.output}={op.kind}({', '.join(op.inputs)})" for op in self.micro_ops)
        return (
            f"{self.name}: traversal over {self.domain.value} {self.schedule.describe()} "
            f"atomics={self.uses_atomics} | {ops}"
        )


# ======================================================================
# Fallback (PyTorch-call) kernels
# ======================================================================
class FallbackKernel(KernelInstance):
    """An operator executed by the PyTorch-like runtime instead of generated code.

    Hector assigns these the lowest preference level; the reproduction uses
    them for the weight-weight products created by linear operator reordering
    (computed with batched matmul over the type dimension) and any other
    operator the two templates do not cover.
    """

    category = "fallback"

    def __init__(
        self,
        name: str,
        op_kind: str,
        inputs: Sequence[Tuple[str, ValueInfo]],
        output: Tuple[str, ValueInfo],
        flop_count: float,
        api_calls: int = 1,
        direction: str = "forward",
        attrs: Optional[Dict[str, object]] = None,
    ):
        super().__init__(name, direction)
        self.op_kind = op_kind
        self.inputs = list(inputs)
        self.output = output
        self._flops = float(flop_count)
        self.api_calls = api_calls
        self.attrs = attrs or {}

    def rows(self, workload) -> int:
        return _rows_of_space(self.output[1].space, workload)

    def flops(self, workload) -> float:
        return self._flops

    def bytes_read(self, workload) -> float:
        return sum(info.num_bytes(workload) for _, info in self.inputs)

    def bytes_written(self, workload) -> float:
        return self.output[1].num_bytes(workload)

    def launches(self, workload) -> int:
        return self.api_calls

    def read_buffers(self) -> List[str]:
        return [name for name, _ in self.inputs]

    def written_buffers(self) -> List[str]:
        return [self.output[0]]

    def emit_backward(self) -> List[KernelInstance]:
        grad_inputs = [(f"grad_{self.output[0]}", self.output[1])] + list(self.inputs)
        grad_output = (f"grad_{self.inputs[0][0]}", self.inputs[0][1])
        backward = FallbackKernel(
            name=f"{self.name}_bwd",
            op_kind=f"{self.op_kind}_backward",
            inputs=grad_inputs,
            output=grad_output,
            flop_count=self._flops * 2,
            api_calls=self.api_calls * 2,
            direction="backward",
            attrs=dict(self.attrs),
        )
        return [backward]

    def describe(self) -> str:
        return f"{self.name}: fallback {self.op_kind} ({self.output[0]})"
