"""Data access schemes for generated kernels.

The GEMM template is ``Y[S] = X[G] × W[T]`` (Section 3.3.1): ``G`` is a gather
list locating the rows of ``X``, ``S`` a scatter list locating the rows of
``Y``, and ``T`` selects the weight slice.  This module enumerates the gather
and scatter schemes the reproduction's code generator can specialise, which is
exactly the set the paper's Figure 7 uses (``row_idx`` vs ``unique_row_idx``
gather, ``etype_ptr`` vs ``unique_etype_ptr`` segmented scatter).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class GatherKind(enum.Enum):
    """How input rows are located."""

    #: Rows are already contiguous in the iteration order (no indirection).
    IDENTITY = "identity"
    #: Gather node rows through the per-edge source index (``row_idx``).
    EDGE_SRC = "edge_src"
    #: Gather node rows through the per-edge destination index.
    EDGE_DST = "edge_dst"
    #: Gather node rows through the unique-pair source index (``unique_row_idx``).
    UNIQUE_SRC = "unique_src"
    #: Gather compact rows through the edge → unique-pair mapping.
    EDGE_TO_COMPACT = "edge_to_compact"
    #: Gather per-edge rows through the edges-sorted-by-type permutation.
    ETYPE_PERMUTATION = "etype_permutation"


class ScatterKind(enum.Enum):
    """How output rows are stored."""

    #: Rows are stored contiguously in iteration order.
    IDENTITY = "identity"
    #: Rows are scattered back to edge-id order (``entry_idx_per_etype + etype_ptr``).
    ETYPE_SEGMENT = "etype_segment"
    #: Rows are stored per unique pair (``unique_etype_ptr`` segments).
    UNIQUE_ETYPE_SEGMENT = "unique_etype_segment"
    #: Rows are accumulated into destination nodes with atomic adds.
    SCATTER_ADD_DST = "scatter_add_dst"


@dataclass
class AccessScheme:
    """Gather/scatter/transpose specification of one GEMM operand or output.

    Attributes:
        gather: how rows are located when loading.
        scatter: how rows are located when storing.
        transpose: whether the operand is transposed on the fly.
        index_array: name of the index array in the graph context that the
            generated kernel reads (``"row_idx"``, ``"unique_row_idx"``, …),
            recorded for code generation and for the cost model's index
            traffic accounting.
    """

    gather: GatherKind = GatherKind.IDENTITY
    scatter: ScatterKind = ScatterKind.IDENTITY
    transpose: bool = False
    index_array: Optional[str] = None

    def needs_index_traffic(self) -> bool:
        """Whether this scheme reads an index array per row."""
        return self.gather not in (GatherKind.IDENTITY,) or self.scatter not in (
            ScatterKind.IDENTITY,
        )

    def describe(self) -> str:
        """Short description used in IR dumps and generated-code comments."""
        parts = []
        if self.gather is not GatherKind.IDENTITY:
            parts.append(f"GATHER({self.index_array or self.gather.value})")
        if self.scatter is not ScatterKind.IDENTITY:
            parts.append(f"SCATTER({self.index_array or self.scatter.value})")
        if self.transpose:
            parts.append("TRANSPOSE")
        return "[" + ", ".join(parts) + "]" if parts else "[DIRECT]"


#: Index array names used by the generated kernels, keyed by gather kind.
INDEX_ARRAY_NAMES = {
    GatherKind.EDGE_SRC: "row_idx",
    GatherKind.EDGE_DST: "col_idx",
    GatherKind.UNIQUE_SRC: "unique_row_idx",
    GatherKind.EDGE_TO_COMPACT: "edge_to_unique",
    GatherKind.ETYPE_PERMUTATION: "etype_perm",
}


def gather_scheme(kind: GatherKind, transpose: bool = False) -> AccessScheme:
    """Convenience constructor for a gather-only access scheme."""
    return AccessScheme(gather=kind, transpose=transpose, index_array=INDEX_ARRAY_NAMES.get(kind))


def scatter_scheme(kind: ScatterKind) -> AccessScheme:
    """Convenience constructor for a scatter-only access scheme."""
    names = {
        ScatterKind.ETYPE_SEGMENT: "etype_ptr",
        ScatterKind.UNIQUE_ETYPE_SEGMENT: "unique_etype_ptr",
        ScatterKind.SCATTER_ADD_DST: "col_idx",
    }
    return AccessScheme(scatter=kind, index_array=names.get(kind))
