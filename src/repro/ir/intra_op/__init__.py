"""Intra-operator level IR (Section 3.3 of the paper).

Kernel instances are derived from two templates:

* :class:`repro.ir.intra_op.kernels.GemmKernel` — the GEMM template: a tiled
  matrix multiply augmented with gather/scatter access schemes and per-type
  weight slicing (``Y[S] = X[G] × W[T]``).
* :class:`repro.ir.intra_op.kernels.TraversalKernel` — the node/edge traversal
  template: a fused sequence of per-row micro-operations (dot products,
  elementwise arithmetic, gathers, scatter-add aggregation).

Operators that neither template supports fall back to
:class:`repro.ir.intra_op.kernels.FallbackKernel` (the PyTorch-call path).
Each instance carries a schedule (tile size, coarsening factor, launch
bounds) and enough size information for the GPU cost model to evaluate it.
"""

from repro.ir.intra_op.access import AccessScheme, GatherKind, ScatterKind
from repro.ir.intra_op.schedule import GemmSchedule, TraversalSchedule
from repro.ir.intra_op.kernels import (
    FallbackKernel,
    GemmKernel,
    KernelInstance,
    MicroOp,
    TraversalKernel,
)
from repro.ir.intra_op.plan import KernelPlan

__all__ = [
    "AccessScheme",
    "GatherKind",
    "ScatterKind",
    "GemmSchedule",
    "TraversalSchedule",
    "KernelInstance",
    "GemmKernel",
    "TraversalKernel",
    "FallbackKernel",
    "MicroOp",
    "KernelPlan",
]
