"""Operator-specific schedules (Section 3.4.1).

Each GEMM-template instance can choose a tile size, a thread coarsening factor
in {1, 2, 4}, and a ``__launch_bounds__`` register cap; traversal-template
instances choose their work assignment (edges or nodes per thread block) and
whether partial-result aggregation (accumulate within a thread/warp before the
atomic update) is applied.  The schedules do not change results; they feed the
GPU cost model's efficiency estimates and are embedded in the generated code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


#: Coarsening factors the GEMM template supports (Section 3.4.1).
ALLOWED_COARSENING = (1, 2, 4)

#: Tile widths the GEMM template is specialised for; the paper's default is 16.
GEMM_TILE_CANDIDATES = (8, 16, 32)

#: Work assignments the traversal template is specialised for (rows per block).
TRAVERSAL_ROWS_CANDIDATES = (32, 128, 512)


@dataclass
class GemmSchedule:
    """Schedule of a GEMM-template instance.

    Attributes:
        tile_size: square shared-memory tile width (the paper's default is 16).
        coarsening: elements per thread in load/compute/store (1, 2, or 4).
        launch_bounds: optional register-limiting launch bound.
        per_row_scalar: name of a per-row scalar fused into the epilogue
            (weighted aggregation fusion), or ``None``.
    """

    tile_size: int = 16
    coarsening: int = 1
    launch_bounds: Optional[int] = None
    per_row_scalar: Optional[str] = None

    def __post_init__(self):
        if self.tile_size <= 0:
            raise ValueError("tile_size must be positive")
        if self.coarsening not in ALLOWED_COARSENING:
            raise ValueError(f"coarsening must be one of {ALLOWED_COARSENING}")

    def threads_per_block(self) -> int:
        """Threads per block after coarsening shrinks the thread count."""
        return max(32, (self.tile_size * self.tile_size) // self.coarsening)

    def describe(self) -> str:
        parts = [f"tile_sz: {self.tile_size}"]
        if self.coarsening != 1:
            parts.append(f"coarsen: {self.coarsening}")
        if self.launch_bounds:
            parts.append(f"launch_bounds: {self.launch_bounds}")
        if self.per_row_scalar:
            parts.append(f"row_scalar: {self.per_row_scalar}")
        return "{" + ", ".join(parts) + "}"


@dataclass
class TraversalSchedule:
    """Schedule of a traversal-template instance.

    Attributes:
        rows_per_block: outer-loop iterations (edges or nodes) per thread block.
        threads_per_row: threads cooperating on one row's feature dimension.
        partial_aggregation: accumulate partial results within a thread/warp
            before issuing atomic adds to global memory (Section 3.4.1).
    """

    rows_per_block: int = 128
    threads_per_row: int = 32
    partial_aggregation: bool = True

    def __post_init__(self):
        if self.rows_per_block <= 0 or self.threads_per_row <= 0:
            raise ValueError("schedule sizes must be positive")

    def threads_per_block(self) -> int:
        return min(1024, self.rows_per_block * self.threads_per_row)

    def describe(self) -> str:
        return (
            f"{{rows/block: {self.rows_per_block}, threads/row: {self.threads_per_row}, "
            f"partial_agg: {self.partial_aggregation}}}"
        )


def traversal_schedules_compatible(a: TraversalSchedule, b: TraversalSchedule) -> bool:
    """Whether two traversal instances can share one fused kernel launch.

    Fused micro-ops execute inside a single grid, so the work assignment and
    the partial-aggregation strategy must agree.
    """
    return (
        a.rows_per_block == b.rows_per_block
        and a.threads_per_row == b.threads_per_row
        and a.partial_aggregation == b.partial_aggregation
    )


def merge_traversal_schedules(a: TraversalSchedule, b: TraversalSchedule) -> TraversalSchedule:
    """Schedule of the kernel obtained by fusing two traversal instances."""
    if not traversal_schedules_compatible(a, b):
        raise ValueError(f"cannot merge incompatible traversal schedules {a.describe()} / {b.describe()}")
    return a


def gemm_schedule_variants(
    tile_sizes=GEMM_TILE_CANDIDATES,
    coarsening=ALLOWED_COARSENING,
):
    """Enumerate GEMM schedule points of the tuning design space, default first."""
    default = GemmSchedule()
    variants = [default]
    for tile in tile_sizes:
        for factor in coarsening:
            if (tile, factor) != (default.tile_size, default.coarsening):
                variants.append(GemmSchedule(tile_size=tile, coarsening=factor))
    return variants


def traversal_schedule_variants(
    rows_per_block=TRAVERSAL_ROWS_CANDIDATES,
    partial_aggregation=(True, False),
):
    """Enumerate traversal schedule points of the tuning design space, default first."""
    default = TraversalSchedule()
    variants = [default]
    for rows in rows_per_block:
        for partial in partial_aggregation:
            if (rows, partial) != (default.rows_per_block, default.partial_aggregation):
                variants.append(TraversalSchedule(rows_per_block=rows, partial_aggregation=partial))
    return variants
