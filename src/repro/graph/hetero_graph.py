"""The :class:`HeteroGraph` container for typed nodes and edges.

The graph keeps both the DGL-style per-relation view (canonical edge types
``(src node type, relation, dst node type)`` with local node indices) and a
flattened homogenised view (global node ids, parallel ``src`` / ``dst`` /
``etype`` arrays).  The flattened view is what the Hector templates and the
baseline simulators consume; the per-relation view is what per-relation-loop
baselines (DGL HeteroConv, PyG ``RGCNConv``) iterate over.

Nodes of the same type occupy a contiguous global id range ("nodes are
presorted by type"), which is the precondition for segment matrix multiply on
nodewise typed linear layers (Section 4.1 of the paper).
"""

from __future__ import annotations

from functools import cached_property
from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.graph.adjacency import (
    COOAdjacency,
    CSRAdjacency,
    SegmentPointers,
    build_csr_by_dst,
    build_segment_pointers,
)
from repro.graph.compaction import CompactionIndex, build_compaction_index

CanonicalEtype = Tuple[str, str, str]


class HeteroGraph:
    """A heterogeneous graph with typed nodes and edges.

    Args:
        num_nodes_per_type: mapping from node type name to node count.
        edges_per_relation: mapping from canonical edge type
            ``(src_type, relation_name, dst_type)`` to a pair of integer arrays
            ``(src_local_ids, dst_local_ids)`` expressed in each node type's
            local index space.
        name: optional dataset name for reporting.
    """

    def __init__(
        self,
        num_nodes_per_type: Mapping[str, int],
        edges_per_relation: Mapping[CanonicalEtype, Tuple[np.ndarray, np.ndarray]],
        name: str = "hetero_graph",
    ):
        if not num_nodes_per_type:
            raise ValueError("a heterogeneous graph needs at least one node type")
        self.name = name
        self.node_type_names: List[str] = list(num_nodes_per_type.keys())
        self.num_nodes_per_type: Dict[str, int] = {
            ntype: int(count) for ntype, count in num_nodes_per_type.items()
        }
        for ntype, count in self.num_nodes_per_type.items():
            if count < 0:
                raise ValueError(f"node type {ntype!r} has negative count {count}")

        self._ntype_index: Dict[str, int] = {
            name_: idx for idx, name_ in enumerate(self.node_type_names)
        }
        counts = np.array([self.num_nodes_per_type[n] for n in self.node_type_names], dtype=np.int64)
        self.node_type_offsets: np.ndarray = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=self.node_type_offsets[1:])

        self.canonical_etypes: List[CanonicalEtype] = list(edges_per_relation.keys())
        self._etype_index: Dict[CanonicalEtype, int] = {
            etype: idx for idx, etype in enumerate(self.canonical_etypes)
        }
        self.edges_per_relation: Dict[CanonicalEtype, Tuple[np.ndarray, np.ndarray]] = {}

        src_chunks: List[np.ndarray] = []
        dst_chunks: List[np.ndarray] = []
        etype_chunks: List[np.ndarray] = []
        for etype, (src_local, dst_local) in edges_per_relation.items():
            src_type, _, dst_type = etype
            if src_type not in self._ntype_index or dst_type not in self._ntype_index:
                raise ValueError(f"edge type {etype} references unknown node types")
            src_local = np.asarray(src_local, dtype=np.int64)
            dst_local = np.asarray(dst_local, dtype=np.int64)
            if len(src_local) != len(dst_local):
                raise ValueError(f"edge type {etype} has mismatched src/dst arrays")
            if len(src_local) and (
                src_local.max() >= self.num_nodes_per_type[src_type]
                or dst_local.max() >= self.num_nodes_per_type[dst_type]
                or src_local.min() < 0
                or dst_local.min() < 0
            ):
                raise ValueError(f"edge type {etype} has out-of-range node indices")
            self.edges_per_relation[etype] = (src_local, dst_local)
            src_chunks.append(src_local + self.node_type_offset(src_type))
            dst_chunks.append(dst_local + self.node_type_offset(dst_type))
            etype_chunks.append(np.full(len(src_local), self._etype_index[etype], dtype=np.int64))

        if src_chunks:
            self.edge_src: np.ndarray = np.concatenate(src_chunks)
            self.edge_dst: np.ndarray = np.concatenate(dst_chunks)
            self.edge_type: np.ndarray = np.concatenate(etype_chunks)
        else:
            self.edge_src = np.zeros(0, dtype=np.int64)
            self.edge_dst = np.zeros(0, dtype=np.int64)
            self.edge_type = np.zeros(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # counts and lookups
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total number of nodes across all types."""
        return int(self.node_type_offsets[-1])

    @property
    def num_edges(self) -> int:
        """Total number of edges across all relations."""
        return len(self.edge_src)

    @property
    def num_node_types(self) -> int:
        return len(self.node_type_names)

    @property
    def num_edge_types(self) -> int:
        return len(self.canonical_etypes)

    def node_type_offset(self, ntype: str) -> int:
        """Global id of the first node of type ``ntype``."""
        return int(self.node_type_offsets[self._ntype_index[ntype]])

    def node_type_id(self, ntype: str) -> int:
        """Integer id of a node type name."""
        return self._ntype_index[ntype]

    def edge_type_id(self, etype: CanonicalEtype) -> int:
        """Integer id of a canonical edge type."""
        return self._etype_index[etype]

    def num_nodes_of_type(self, ntype: str) -> int:
        return self.num_nodes_per_type[ntype]

    def num_edges_of_relation(self, etype: CanonicalEtype) -> int:
        return len(self.edges_per_relation[etype][0])

    @cached_property
    def node_type_ids(self) -> np.ndarray:
        """Per-node integer node type (global node id order)."""
        ids = np.empty(self.num_nodes, dtype=np.int64)
        for idx, ntype in enumerate(self.node_type_names):
            start = self.node_type_offsets[idx]
            end = self.node_type_offsets[idx + 1]
            ids[start:end] = idx
        return ids

    @cached_property
    def average_degree(self) -> float:
        """Average in-degree (edges per node)."""
        if self.num_nodes == 0:
            return 0.0
        return self.num_edges / self.num_nodes

    def in_degrees(self) -> np.ndarray:
        """Number of incoming edges per (global) node."""
        return np.bincount(self.edge_dst, minlength=self.num_nodes)

    def out_degrees(self) -> np.ndarray:
        """Number of outgoing edges per (global) node."""
        return np.bincount(self.edge_src, minlength=self.num_nodes)

    def relation_edge_counts(self) -> np.ndarray:
        """Number of edges of each edge type, indexed by edge type id."""
        return np.bincount(self.edge_type, minlength=self.num_edge_types)

    def degree_normalization(self) -> np.ndarray:
        """Per-edge ``1 / c_{v,r}`` factors used by RGCN aggregation.

        ``c_{v,r}`` is the number of incoming edges of relation ``r`` at
        destination ``v`` (Schlichtkrull et al.'s default normalisation).
        """
        if self.num_edges == 0:
            return np.zeros(0)
        keys = self.edge_dst * self.num_edge_types + self.edge_type
        _, inverse, counts = np.unique(keys, return_inverse=True, return_counts=True)
        return 1.0 / counts[inverse].astype(np.float64)

    # ------------------------------------------------------------------
    # derived structures (cached)
    # ------------------------------------------------------------------
    @cached_property
    def coo(self) -> COOAdjacency:
        """Flattened COO adjacency."""
        return COOAdjacency(src=self.edge_src, dst=self.edge_dst, etype=self.edge_type)

    @cached_property
    def csr_by_dst(self) -> CSRAdjacency:
        """CSR adjacency grouped by destination node (incoming edges)."""
        return build_csr_by_dst(self.edge_src, self.edge_dst, self.edge_type, self.num_nodes)

    @cached_property
    def edge_segments(self) -> SegmentPointers:
        """Edges sorted (stably) by edge type: the ``etype_ptr`` structure."""
        return build_segment_pointers(self.edge_type, self.num_edge_types)

    @cached_property
    def node_segments(self) -> SegmentPointers:
        """Nodes grouped by node type (already contiguous by construction)."""
        return SegmentPointers(
            offsets=self.node_type_offsets.copy(),
            permutation=np.arange(self.num_nodes, dtype=np.int64),
        )

    @cached_property
    def compaction(self) -> CompactionIndex:
        """Unique ``(source node, edge type)`` mapping for compact materialization."""
        return build_compaction_index(self.edge_src, self.edge_type, self.num_edge_types)

    @property
    def entity_compaction_ratio(self) -> float:
        """Unique ``(source node, edge type)`` pairs divided by edges."""
        return self.compaction.compaction_ratio

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def add_reverse_edges(self) -> "HeteroGraph":
        """Return a new graph with a reverse relation added per relation.

        Mirrors the default OGB/DGL preprocessing mentioned under Table 3
        ("adding inverse edges").
        """
        new_edges: Dict[CanonicalEtype, Tuple[np.ndarray, np.ndarray]] = {}
        for (src_t, rel, dst_t), (src_local, dst_local) in self.edges_per_relation.items():
            new_edges[(src_t, rel, dst_t)] = (src_local, dst_local)
            reverse_key = (dst_t, f"rev_{rel}", src_t)
            if reverse_key not in self.edges_per_relation:
                new_edges[reverse_key] = (dst_local.copy(), src_local.copy())
        return HeteroGraph(self.num_nodes_per_type, new_edges, name=f"{self.name}+rev")

    def add_self_loops(self, relation_name: str = "self_loop") -> "HeteroGraph":
        """Return a new graph with a self-loop relation per node type.

        This is the explicit form of RGCN's *virtual self-loop* (Figure 1).
        Models in this repository instead apply ``W_0`` directly, so this
        helper mostly exists for dataset preparation experiments.
        """
        new_edges = dict(self.edges_per_relation)
        for ntype, count in self.num_nodes_per_type.items():
            key = (ntype, f"{relation_name}_{ntype}", ntype)
            ids = np.arange(count, dtype=np.int64)
            new_edges[key] = (ids, ids.copy())
        return HeteroGraph(self.num_nodes_per_type, new_edges, name=f"{self.name}+self")

    def subgraph_by_edge_fraction(self, fraction: float, seed: int = 0) -> "HeteroGraph":
        """Uniformly subsample each relation's edges by ``fraction``."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        rng = np.random.default_rng(seed)
        new_edges: Dict[CanonicalEtype, Tuple[np.ndarray, np.ndarray]] = {}
        for etype, (src_local, dst_local) in self.edges_per_relation.items():
            count = len(src_local)
            keep = max(1, int(round(count * fraction))) if count else 0
            if keep >= count:
                new_edges[etype] = (src_local, dst_local)
            else:
                selected = rng.choice(count, size=keep, replace=False)
                selected.sort()
                new_edges[etype] = (src_local[selected], dst_local[selected])
        return HeteroGraph(self.num_nodes_per_type, new_edges, name=f"{self.name}@{fraction:g}")

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def statistics(self) -> Dict[str, float]:
        """Summary statistics in the style of Table 3."""
        return {
            "name": self.name,
            "num_nodes": self.num_nodes,
            "num_node_types": self.num_node_types,
            "num_edges": self.num_edges,
            "num_edge_types": self.num_edge_types,
            "average_degree": self.average_degree,
            "entity_compaction_ratio": self.entity_compaction_ratio,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"HeteroGraph(name={self.name!r}, nodes={self.num_nodes} ({self.num_node_types} types), "
            f"edges={self.num_edges} ({self.num_edge_types} types))"
        )
