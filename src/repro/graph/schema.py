"""Graph schemas: the type vocabulary a compiled module is specialised for.

A compiled RGNN layer depends on a graph only through its *schema* — the
ordered node-type and canonical-edge-type vocabularies that size per-type
weights and segment loops — never through concrete node or edge counts.  The
schema is therefore the contract between a schema-specialised
:class:`repro.runtime.module.CompiledRGNNModule` and the many graph bindings
(full graphs, sampled minibatch blocks) it can execute against.

Order matters: edge-type and node-type *ids* index parameter slices, so two
graphs are binding-compatible only when their vocabularies match element for
element, not merely as sets.  (The compilation cache fingerprints the sorted
vocabulary, which is weaker; :meth:`GraphSchema.validate_graph` enforces the
stronger ordered contract the runtime needs.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.graph.hetero_graph import CanonicalEtype, HeteroGraph


@dataclass(frozen=True)
class GraphSchema:
    """Ordered type vocabulary of a heterogeneous graph.

    Attributes:
        node_type_names: node type names in id order.
        canonical_etypes: canonical edge types ``(src, rel, dst)`` in id order.
    """

    node_type_names: Tuple[str, ...]
    canonical_etypes: Tuple[CanonicalEtype, ...]

    @classmethod
    def from_graph(cls, graph: HeteroGraph) -> "GraphSchema":
        """The schema of a concrete graph (or sampled block)."""
        return cls(
            node_type_names=tuple(graph.node_type_names),
            canonical_etypes=tuple(graph.canonical_etypes),
        )

    # ------------------------------------------------------------------
    @property
    def num_node_types(self) -> int:
        return len(self.node_type_names)

    @property
    def num_edge_types(self) -> int:
        return len(self.canonical_etypes)

    def matches(self, graph: HeteroGraph) -> bool:
        """Whether a graph has exactly this schema (same vocabularies, same order)."""
        return (
            tuple(graph.node_type_names) == self.node_type_names
            and tuple(graph.canonical_etypes) == self.canonical_etypes
        )

    def validate_graph(self, graph: HeteroGraph) -> None:
        """Raise a descriptive ``ValueError`` unless ``graph`` has this schema."""
        if tuple(graph.node_type_names) != self.node_type_names:
            raise ValueError(
                f"graph {graph.name!r} has node types {tuple(graph.node_type_names)}, "
                f"but the module is specialised for {self.node_type_names} "
                "(same names in the same order are required: node-type ids index weights)"
            )
        if tuple(graph.canonical_etypes) != self.canonical_etypes:
            raise ValueError(
                f"graph {graph.name!r} has edge types {tuple(graph.canonical_etypes)}, "
                f"but the module is specialised for {self.canonical_etypes} "
                "(same relations in the same order are required: edge-type ids index weights)"
            )

    def __str__(self) -> str:
        return (
            f"schema<{self.num_node_types} node types, {self.num_edge_types} edge types>"
        )
