"""Random heterogeneous graph generators.

Used both for unit/property tests and to build the scaled synthetic
instantiations of the Table 3 datasets (see :mod:`repro.graph.datasets`).
Generated relations follow a Zipf-like size distribution — real knowledge
graphs have a few heavy relations and a long tail of rare ones — and node
counts per type follow a similar skew.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.graph.hetero_graph import CanonicalEtype, HeteroGraph


def _zipf_partition(total: int, parts: int, rng: np.random.Generator, exponent: float = 1.1,
                    minimum: int = 1) -> np.ndarray:
    """Split ``total`` items into ``parts`` buckets with a Zipf-like skew."""
    if parts <= 0:
        raise ValueError("parts must be positive")
    if total < parts * minimum:
        # Not enough items for the requested minimum; give everything round-robin.
        sizes = np.zeros(parts, dtype=np.int64)
        sizes[: total % parts if total < parts else parts] = 1
        remaining = total - sizes.sum()
        if remaining > 0:
            sizes += remaining // parts
        return sizes
    ranks = np.arange(1, parts + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    rng.shuffle(weights)
    weights /= weights.sum()
    sizes = np.maximum(minimum, np.floor(weights * (total - parts * minimum)).astype(np.int64) + minimum)
    # Adjust to hit the exact total.
    difference = total - sizes.sum()
    index = 0
    while difference != 0:
        step = 1 if difference > 0 else -1
        if sizes[index % parts] + step >= minimum:
            sizes[index % parts] += step
            difference -= step
        index += 1
    return sizes


def random_hetero_graph(
    num_nodes: int,
    num_edges: int,
    num_node_types: int,
    num_edge_types: int,
    seed: int = 0,
    name: str = "random",
    source_locality: float = 0.0,
) -> HeteroGraph:
    """Generate a random heterogeneous graph with the requested shape.

    Args:
        num_nodes: total nodes across all node types.
        num_edges: total edges across all edge types.
        num_node_types: number of node types.
        num_edge_types: number of relations (canonical edge types).
        seed: RNG seed; the same arguments always produce the same graph.
        name: graph name used in reports.
        source_locality: in ``[0, 1)``; larger values concentrate the edges of
            each relation on fewer distinct source nodes, which *lowers* the
            entity compaction ratio (more sharing of ``(src, etype)`` pairs).

    Returns:
        A :class:`HeteroGraph` with exactly the requested node count and at
        least one edge per relation (so every weight is exercised).
    """
    if num_node_types <= 0 or num_edge_types <= 0:
        raise ValueError("need at least one node type and one edge type")
    if num_nodes < num_node_types:
        raise ValueError("num_nodes must be >= num_node_types")
    if num_edges < num_edge_types:
        raise ValueError("num_edges must be >= num_edge_types")
    if not 0.0 <= source_locality < 1.0:
        raise ValueError("source_locality must be in [0, 1)")

    rng = np.random.default_rng(seed)
    node_type_names = [f"ntype{t}" for t in range(num_node_types)]
    node_counts = _zipf_partition(num_nodes, num_node_types, rng, exponent=0.8)
    num_nodes_per_type: Dict[str, int] = {
        name_: int(count) for name_, count in zip(node_type_names, node_counts)
    }

    edge_counts = _zipf_partition(num_edges, num_edge_types, rng, exponent=1.1)
    edges_per_relation: Dict[CanonicalEtype, Tuple[np.ndarray, np.ndarray]] = {}
    for rel_idx, count in enumerate(edge_counts):
        src_type = node_type_names[int(rng.integers(num_node_types))]
        dst_type = node_type_names[int(rng.integers(num_node_types))]
        key = (src_type, f"rel{rel_idx}", dst_type)
        n_src = num_nodes_per_type[src_type]
        n_dst = num_nodes_per_type[dst_type]
        if source_locality > 0.0 and n_src > 1:
            # Restrict sources to a fraction of the nodes to induce sharing.
            pool = max(1, int(round(n_src * (1.0 - source_locality))))
            src_pool = rng.choice(n_src, size=pool, replace=False)
            src_local = rng.choice(src_pool, size=int(count), replace=True)
        else:
            src_local = rng.integers(0, n_src, size=int(count))
        dst_local = rng.integers(0, n_dst, size=int(count))
        edges_per_relation[key] = (src_local.astype(np.int64), dst_local.astype(np.int64))

    return HeteroGraph(num_nodes_per_type, edges_per_relation, name=name)


def random_features(graph: HeteroGraph, dim: int, seed: int = 0) -> np.ndarray:
    """Random node feature matrix ``(num_nodes, dim)`` for a graph."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((graph.num_nodes, dim))


def random_labels(graph: HeteroGraph, num_classes: int, seed: int = 0) -> np.ndarray:
    """Random per-node labels, as used for the paper's training loss."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, num_classes, size=graph.num_nodes)
