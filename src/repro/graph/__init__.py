"""Heterogeneous graph substrate.

Provides the data structures the Hector compiler and the baseline system
simulators operate on:

* :class:`repro.graph.hetero_graph.HeteroGraph` — typed nodes and edges with a
  flattened (homogenised) view, per-relation COO, CSR by destination, and
  edges presorted by edge type (segment pointers) as required for segment MM.
* :mod:`repro.graph.adjacency` — COO / CSR / segment encodings and the
  accessor descriptions the traversal template specialises against.
* :mod:`repro.graph.compaction` — the unique ``(source node, edge type)``
  mapping behind compact materialization (Section 3.2.2).
* :mod:`repro.graph.schema` — the ordered type vocabulary a compiled module
  is specialised for (the compile/bind contract).
* :mod:`repro.graph.sampler` — seed-node → k-hop fanout-capped minibatch
  blocks for the serving engine (compacted subgraphs with feature-gather and
  output-scatter index maps).
* :mod:`repro.graph.datasets` — the eight heterogeneous datasets of Table 3 as
  full-scale statistics plus scaled synthetic instantiations.
"""

from repro.graph.hetero_graph import HeteroGraph
from repro.graph.adjacency import COOAdjacency, CSRAdjacency, SegmentPointers
from repro.graph.compaction import CompactionIndex, build_compaction_index
from repro.graph.schema import GraphSchema
from repro.graph.sampler import (
    HopBlock,
    MinibatchBlock,
    NeighborSampler,
    hop_gather_indices,
    sample_block,
)
from repro.graph.datasets import (
    DATASETS,
    DatasetStats,
    dataset_names,
    get_dataset_stats,
    load_dataset,
)
from repro.graph.generators import random_hetero_graph

__all__ = [
    "HeteroGraph",
    "GraphSchema",
    "MinibatchBlock",
    "HopBlock",
    "NeighborSampler",
    "sample_block",
    "hop_gather_indices",
    "COOAdjacency",
    "CSRAdjacency",
    "SegmentPointers",
    "CompactionIndex",
    "build_compaction_index",
    "DATASETS",
    "DatasetStats",
    "dataset_names",
    "get_dataset_stats",
    "load_dataset",
    "random_hetero_graph",
]
