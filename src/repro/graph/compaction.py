"""Compact materialization index: unique ``(source node, edge type)`` pairs.

Section 3.2.2 of the paper observes that edgewise data which depends only on
the source node and the edge type (e.g. RGAT / HGT edge messages) is computed
and stored once per edge under vanilla materialization, even though many edges
share the same ``(source node, edge type)`` pair.  Compact materialization
instead materialises one row per *unique* pair, and keeps a CSR-like mapping
from edges to those unique rows.

The *entity compaction ratio* — ``num_unique_pairs / num_edges`` — governs the
memory-footprint and GEMM-work reduction reported in Figures 9 and 10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CompactionIndex:
    """Mapping between edges and unique ``(source node, edge type)`` rows.

    Attributes:
        edge_to_unique: for each edge, the row index of its unique pair in the
            compact tensor.
        unique_src: source node of each unique row.
        unique_etype: edge type of each unique row.
        unique_etype_ptr: segment offsets of unique rows grouped by edge type
            (unique rows are sorted by edge type, then source node), the
            ``unique_etype_ptr`` array of Figure 7(b).
        num_edges: number of edges in the owning graph.
    """

    edge_to_unique: np.ndarray
    unique_src: np.ndarray
    unique_etype: np.ndarray
    unique_etype_ptr: np.ndarray
    num_edges: int

    @property
    def num_unique(self) -> int:
        """Number of unique ``(source node, edge type)`` pairs."""
        return len(self.unique_src)

    @property
    def compaction_ratio(self) -> float:
        """Entity compaction ratio: unique pairs divided by edges."""
        if self.num_edges == 0:
            return 1.0
        return self.num_unique / self.num_edges

    def expand(self, compact_rows: np.ndarray) -> np.ndarray:
        """Expand compact per-pair rows back to per-edge rows (gather)."""
        return compact_rows[self.edge_to_unique]

    def validate(self) -> None:
        """Internal consistency checks; raises ``ValueError`` on violation."""
        if len(self.edge_to_unique) != self.num_edges:
            raise ValueError("edge_to_unique must have one entry per edge")
        if self.num_edges and self.edge_to_unique.max() >= self.num_unique:
            raise ValueError("edge_to_unique refers to a non-existent unique row")
        if len(self.unique_src) != len(self.unique_etype):
            raise ValueError("unique_src and unique_etype must have equal length")
        if self.unique_etype_ptr[-1] != self.num_unique:
            raise ValueError("unique_etype_ptr must cover all unique rows")
        if np.any(np.diff(self.unique_etype_ptr) < 0):
            raise ValueError("unique_etype_ptr must be non-decreasing")
        # Unique rows must be sorted by edge type so segment MM applies.
        if self.num_unique > 1 and np.any(np.diff(self.unique_etype) < 0):
            raise ValueError("unique rows must be sorted by edge type")


def build_compaction_index(src: np.ndarray, etype: np.ndarray, num_etypes: int) -> CompactionIndex:
    """Build the compact-materialization mapping for a set of edges.

    Unique pairs are ordered by ``(edge type, source node)`` so that the
    compact output tensor is naturally segmented by edge type, which lets the
    GEMM template keep using segment MM with ``unique_etype_ptr`` offsets.

    Args:
        src: per-edge source node index.
        etype: per-edge edge type index.
        num_etypes: total number of edge types (defines the pointer length).
    """
    src = np.asarray(src, dtype=np.int64)
    etype = np.asarray(etype, dtype=np.int64)
    if len(src) != len(etype):
        raise ValueError("src and etype must have equal length")
    num_edges = len(src)
    if num_edges == 0:
        return CompactionIndex(
            edge_to_unique=np.zeros(0, dtype=np.int64),
            unique_src=np.zeros(0, dtype=np.int64),
            unique_etype=np.zeros(0, dtype=np.int64),
            unique_etype_ptr=np.zeros(num_etypes + 1, dtype=np.int64),
            num_edges=0,
        )

    # Encode (etype, src) pairs into single keys to deduplicate.
    max_src = int(src.max()) + 1
    keys = etype * max_src + src
    unique_keys, edge_to_unique = np.unique(keys, return_inverse=True)
    unique_etype = unique_keys // max_src
    unique_src = unique_keys % max_src

    counts = np.bincount(unique_etype, minlength=num_etypes)
    unique_etype_ptr = np.zeros(num_etypes + 1, dtype=np.int64)
    np.cumsum(counts, out=unique_etype_ptr[1:])

    index = CompactionIndex(
        edge_to_unique=edge_to_unique.astype(np.int64),
        unique_src=unique_src.astype(np.int64),
        unique_etype=unique_etype.astype(np.int64),
        unique_etype_ptr=unique_etype_ptr,
        num_edges=num_edges,
    )
    index.validate()
    return index
