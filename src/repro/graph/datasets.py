"""The eight heterogeneous graph datasets of Table 3.

The paper evaluates on public DGL / OGB datasets (aifb, am, bgs, biokg, fb15k,
mag, mutag, wikikg2).  Those packages are not available offline, so this
module provides:

* :class:`DatasetStats` — the *full-scale* published statistics (node count,
  edge count, number of node and edge types, entity compaction ratio).  The
  GPU cost model evaluates kernels analytically from these statistics, so the
  end-to-end comparison figures use the real dataset sizes even though the
  full graphs are never materialised in memory.
* :func:`load_dataset` — a *scaled* synthetic instantiation with the same type
  structure (used for numeric execution, correctness checks, and examples).

Entity compaction ratios for AM (≈0.57) and FB15k (≈0.26) are given in the
paper (Section 4.3); the remaining ratios are chosen to be consistent with the
datasets' average degrees and relation counts (denser graphs and graphs with
fewer relations per source node compact better).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List

import numpy as np

from repro.graph.generators import random_hetero_graph
from repro.graph.hetero_graph import HeteroGraph


@dataclass(frozen=True)
class DatasetStats:
    """Full-scale statistics of a heterogeneous graph dataset (Table 3).

    Attributes:
        name: dataset identifier as used in the paper's figures.
        num_nodes: total node count after default DGL/OGB preprocessing.
        num_node_types: number of node types.
        num_edges: total edge count (inverse edges included where the
            packages add them by default).
        num_edge_types: number of relations.
        compaction_ratio: entity compaction ratio — unique
            ``(source node, edge type)`` pairs divided by edges.
        source: which package provides the dataset in the paper.
    """

    name: str
    num_nodes: int
    num_node_types: int
    num_edges: int
    num_edge_types: int
    compaction_ratio: float
    source: str = "DGL"

    @property
    def average_degree(self) -> float:
        """Average number of edges per node."""
        return self.num_edges / self.num_nodes

    def relation_edge_counts(self, seed: int = 0) -> np.ndarray:
        """Deterministic per-relation edge counts following a Zipf-like skew.

        The published tables only report totals; the cost model needs a
        per-relation breakdown (small relations → small kernels for
        per-relation-loop baselines).  The same seed always yields the same
        partition, so results are reproducible.
        """
        rng = np.random.default_rng(seed + hash(self.name) % (2 ** 16))
        ranks = np.arange(1, self.num_edge_types + 1, dtype=np.float64)
        weights = ranks ** -1.1
        rng.shuffle(weights)
        weights /= weights.sum()
        counts = np.maximum(1, np.round(weights * self.num_edges).astype(np.int64))
        # Adjust the largest relation so that totals match exactly.
        counts[np.argmax(counts)] += self.num_edges - counts.sum()
        return counts

    @property
    def num_unique_src_etype_pairs(self) -> int:
        """Number of unique ``(source node, edge type)`` pairs at full scale."""
        return int(round(self.compaction_ratio * self.num_edges))

    def node_type_counts(self, seed: int = 0) -> np.ndarray:
        """Deterministic per-node-type counts summing to ``num_nodes``."""
        rng = np.random.default_rng(seed + 13 + hash(self.name) % (2 ** 16))
        ranks = np.arange(1, self.num_node_types + 1, dtype=np.float64)
        weights = ranks ** -0.8
        rng.shuffle(weights)
        weights /= weights.sum()
        counts = np.maximum(1, np.round(weights * self.num_nodes).astype(np.int64))
        counts[np.argmax(counts)] += self.num_nodes - counts.sum()
        return counts


#: Table 3 of the paper.  Node/edge counts reflect the default preprocessing
#: by the OGB and DGL packages (e.g. inverse edges added).
DATASETS: Dict[str, DatasetStats] = {
    "aifb": DatasetStats("aifb", 7_300, 7, 49_000, 104, 0.78, source="DGL"),
    "am": DatasetStats("am", 1_900_000, 7, 5_700_000, 108, 0.57, source="DGL"),
    "bgs": DatasetStats("bgs", 95_000, 27, 673_000, 122, 0.72, source="DGL"),
    "biokg": DatasetStats("biokg", 94_000, 5, 4_800_000, 51, 0.18, source="OGB"),
    "fb15k": DatasetStats("fb15k", 15_000, 1, 620_000, 474, 0.26, source="DGL"),
    "mag": DatasetStats("mag", 1_900_000, 4, 21_000_000, 4, 0.48, source="OGB"),
    "mutag": DatasetStats("mutag", 27_000, 5, 148_000, 50, 0.75, source="DGL"),
    "wikikg2": DatasetStats("wikikg2", 2_500_000, 1, 16_000_000, 535, 0.55, source="OGB"),
}

#: Dataset order used across the paper's figures (largest to smallest).
FIGURE_ORDER: List[str] = ["wikikg2", "mutag", "mag", "fb15k", "biokg", "bgs", "am", "aifb"]


def dataset_names() -> List[str]:
    """Names of all datasets in Table 3 (figure order)."""
    return list(FIGURE_ORDER)


def get_dataset_stats(name: str) -> DatasetStats:
    """Look up the full-scale statistics of a dataset by name."""
    try:
        return DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}") from None


@lru_cache(maxsize=32)
def load_dataset(name: str, max_edges: int = 20_000, seed: int = 0) -> HeteroGraph:
    """Load a scaled synthetic instantiation of a Table 3 dataset.

    The returned graph has the same number of node and edge types as the real
    dataset and approximately ``min(max_edges, num_edges)`` edges, with node
    counts scaled by the same factor.  ``source_locality`` is tuned per
    dataset so that the instantiated graph's entity compaction ratio tracks
    the full-scale ratio.

    Args:
        name: dataset name from Table 3.
        max_edges: cap on the number of edges actually materialised.
        seed: RNG seed for the synthetic structure.
    """
    stats = get_dataset_stats(name)
    scale = min(1.0, max_edges / stats.num_edges)
    num_edges = max(stats.num_edge_types, int(round(stats.num_edges * scale)))
    num_nodes = max(stats.num_node_types * 2, int(round(stats.num_nodes * scale)))
    # Lower compaction ratio ⇔ more sharing of (src, etype) pairs ⇔ higher locality.
    source_locality = float(np.clip(1.0 - stats.compaction_ratio, 0.0, 0.95))
    graph = random_hetero_graph(
        num_nodes=num_nodes,
        num_edges=num_edges,
        num_node_types=stats.num_node_types,
        num_edge_types=stats.num_edge_types,
        seed=seed,
        name=name,
        source_locality=source_locality,
    )
    return graph


def table3_rows() -> List[Dict[str, object]]:
    """Rows reproducing Table 3 (name, nodes, node types, edges, edge types)."""
    rows = []
    for name in sorted(DATASETS):
        stats = DATASETS[name]
        rows.append(
            {
                "name": stats.name,
                "num_nodes": stats.num_nodes,
                "num_node_types": stats.num_node_types,
                "num_edges": stats.num_edges,
                "num_edge_types": stats.num_edge_types,
                "source": stats.source,
            }
        )
    return rows
