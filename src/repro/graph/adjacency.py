"""Sparse adjacency encodings used by the intra-operator templates.

The Hector traversal template is agnostic to the sparse format as long as the
``GetEType`` / ``GetSrcId`` / ``GetDstId`` accessors are available
(Section 3.3.2).  This module provides the encodings the reproduction
supports — COO, CSR (by destination), and segment pointers for edges sorted
by type — together with a small description object
(:class:`AdjacencyAccessor`) that records which accessor the code generator
should specialise for and what its per-lookup cost is (a subscript for COO, a
binary search for CSR).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np


@dataclass
class COOAdjacency:
    """Coordinate-format adjacency: parallel ``src`` / ``dst`` / ``etype`` arrays."""

    src: np.ndarray
    dst: np.ndarray
    etype: np.ndarray

    def __post_init__(self):
        self.src = np.asarray(self.src, dtype=np.int64)
        self.dst = np.asarray(self.dst, dtype=np.int64)
        self.etype = np.asarray(self.etype, dtype=np.int64)
        if not (len(self.src) == len(self.dst) == len(self.etype)):
            raise ValueError("COO arrays must have equal length")

    @property
    def num_edges(self) -> int:
        return len(self.src)

    def get_src(self, edge_idx: int) -> int:
        """COO source lookup: a single subscript."""
        return int(self.src[edge_idx])

    def get_dst(self, edge_idx: int) -> int:
        """COO destination lookup: a single subscript."""
        return int(self.dst[edge_idx])

    def get_etype(self, edge_idx: int) -> int:
        """COO edge-type lookup: a single subscript."""
        return int(self.etype[edge_idx])


@dataclass
class CSRAdjacency:
    """Compressed sparse row adjacency grouped by destination node.

    ``indptr`` has length ``num_dst_nodes + 1``; ``edge_ids[indptr[v]:indptr[v+1]]``
    are the incoming edge indices of destination node ``v``.  ``src`` and
    ``etype`` are indexed by edge id (same order as the owning graph's COO).
    """

    indptr: np.ndarray
    edge_ids: np.ndarray
    src: np.ndarray
    etype: np.ndarray

    def __post_init__(self):
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.edge_ids = np.asarray(self.edge_ids, dtype=np.int64)
        self.src = np.asarray(self.src, dtype=np.int64)
        self.etype = np.asarray(self.etype, dtype=np.int64)

    @property
    def num_dst_nodes(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.edge_ids)

    def incoming_edges(self, dst_node: int) -> np.ndarray:
        """Edge ids of the incoming edges of ``dst_node``."""
        return self.edge_ids[self.indptr[dst_node]: self.indptr[dst_node + 1]]

    def get_dst(self, edge_position: int) -> int:
        """CSR destination lookup: binary search in the row-pointer array."""
        return int(np.searchsorted(self.indptr, edge_position, side="right") - 1)


@dataclass
class SegmentPointers:
    """Offsets delimiting contiguous segments of rows that share a type.

    ``offsets`` has length ``num_types + 1``; ``permutation`` maps the sorted
    position back to the original row index (``permutation[i]`` is the original
    index of the ``i``-th sorted row).  This is the ``etype_ptr`` structure the
    paper's segment-MM lowering relies on (Figure 5).
    """

    offsets: np.ndarray
    permutation: np.ndarray

    def __post_init__(self):
        self.offsets = np.asarray(self.offsets, dtype=np.int64)
        self.permutation = np.asarray(self.permutation, dtype=np.int64)

    @property
    def num_types(self) -> int:
        return len(self.offsets) - 1

    @property
    def num_rows(self) -> int:
        return len(self.permutation)

    def segment(self, type_idx: int) -> Tuple[int, int]:
        """Return the ``(start, end)`` range of rows of ``type_idx``."""
        return int(self.offsets[type_idx]), int(self.offsets[type_idx + 1])

    def segment_size(self, type_idx: int) -> int:
        start, end = self.segment(type_idx)
        return end - start

    def inverse_permutation(self) -> np.ndarray:
        """Mapping from original row index to its sorted position."""
        inverse = np.empty_like(self.permutation)
        inverse[self.permutation] = np.arange(len(self.permutation))
        return inverse


def build_segment_pointers(type_ids: np.ndarray, num_types: int) -> SegmentPointers:
    """Sort rows by type (stable) and return segment pointers.

    Args:
        type_ids: per-row integer type.
        num_types: number of distinct types (defines the offsets length).
    """
    type_ids = np.asarray(type_ids, dtype=np.int64)
    permutation = np.argsort(type_ids, kind="stable")
    counts = np.bincount(type_ids, minlength=num_types)
    offsets = np.zeros(num_types + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return SegmentPointers(offsets=offsets, permutation=permutation)


def build_csr_by_dst(src: np.ndarray, dst: np.ndarray, etype: np.ndarray, num_nodes: int) -> CSRAdjacency:
    """Group edges by destination node into a CSR structure."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    etype = np.asarray(etype, dtype=np.int64)
    order = np.argsort(dst, kind="stable")
    counts = np.bincount(dst, minlength=num_nodes)
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRAdjacency(indptr=indptr, edge_ids=order, src=src, etype=etype)


#: Sparse formats the traversal template can specialise its accessors against.
SUPPORTED_FORMATS = ("coo", "csr")


@dataclass
class AdjacencyAccessor:
    """Description of how generated kernels retrieve graph structure.

    Attributes:
        fmt: ``"coo"`` or ``"csr"``.
        lookups_per_edge: number of memory reads to resolve (src, dst, etype)
            for one edge.  A COO lookup is one subscript per field; a CSR
            destination lookup costs ``log2(num_nodes)`` reads (binary search),
            which the GPU cost model charges accordingly.
    """

    fmt: str
    lookups_per_edge: float
    extra: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def for_format(cls, fmt: str, num_nodes: int) -> "AdjacencyAccessor":
        if fmt not in SUPPORTED_FORMATS:
            raise ValueError(f"unsupported adjacency format: {fmt!r}")
        if fmt == "coo":
            return cls(fmt="coo", lookups_per_edge=3.0)
        binary_search_cost = max(1.0, math.log2(max(num_nodes, 2)))
        return cls(fmt="csr", lookups_per_edge=2.0 + binary_search_cost,
                   extra={"binary_search_depth": binary_search_cost})
