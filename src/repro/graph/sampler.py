"""Minibatch block sampling: per-request subgraphs for serving and training.

Production GNN inference does not run a compiled layer over one static full
graph — each request names a handful of *seed* nodes, and the system samples
their k-hop incoming neighborhood (capped per relation by a *fanout*) into a
compacted minibatch *block*.  This module produces such blocks as ordinary
:class:`~repro.graph.hetero_graph.HeteroGraph` objects that preserve the
parent's full schema (same node-type and relation vocabulary, in the same
order, with empty relations kept), so a schema-specialised compiled module
binds them directly — ``module.bind(block.graph)`` — and the whole existing
machinery (segment pointers, :class:`~repro.graph.compaction.CompactionIndex`
compact materialization, degree normalisation) applies to blocks unchanged.

A :class:`MinibatchBlock` additionally carries the index maps serving needs:
``node_map`` gathers parent-graph features into block order, and
``seed_positions`` scatters block outputs back to the request's seeds.

Sampling semantics (single merged block, DGL-style incoming-neighbor
sampling):

* hop 1 draws at most ``fanouts[0]`` incoming edges per (seed, relation);
  hop ``k`` repeats from the nodes hop ``k-1`` reached;
* a node's incoming neighborhood is drawn once per *epoch* (and once per
  merged ``sample`` call, whichever hop reaches it first) — revisits reuse
  the memoised draw, so per-relation in-degrees in a block never exceed the
  cap of the hop that drew the node, and an epoch's neighborhoods are
  internally consistent across minibatches;
* :meth:`NeighborSampler.resample` starts a new epoch: the draw memo is
  cleared and the RNG is reseeded from ``(seed, epoch)`` — or
  ``(seed, epoch, shard)`` for a data-parallel worker's sampler — so epochs
  (and shards) draw *different* neighborhoods while any epoch is exactly
  reproducible from the base seed (the per-epoch stream does not depend on
  how many draws earlier epochs made); ``shard=0`` seeds the very stream
  unsharded training uses (numpy's ``SeedSequence`` absorbs the trailing
  zero word), so a 1-shard world reproduces plain training by construction,
  while shards >= 1 never alias any unsharded epoch;
* ``fanout=None`` keeps the full neighborhood, in which case every seed's
  one-hop aggregation over the block is *exact*: it matches the full-graph
  computation restricted to the seeds (the property the sampler tests pin).

Besides the merged block, :meth:`NeighborSampler.sample_blocks` emits one
block *per hop* (outermost hop first), the message-flow-graph form multilayer
models execute layer-by-hop: layer ``l`` of an ``L``-layer model runs over
``blocks[l-1]`` and only the rows of the next block's nodes survive the hop
boundary, so deep layers stop paying full-frontier aggregation cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.hetero_graph import CanonicalEtype, HeteroGraph
from repro.graph.schema import GraphSchema

#: Per-hop fanout: max sampled incoming edges per (node, relation); None = all.
Fanout = Optional[int]


@dataclass
class MinibatchBlock:
    """A compacted sampled subgraph plus its parent-graph index maps.

    Attributes:
        graph: the block as a :class:`HeteroGraph` with the parent's full
            schema; node ids are block-local (contiguous, grouped by type).
        parent: the graph the block was sampled from.
        node_map: ``(block.num_nodes,)`` — parent global node id of every
            block node (the feature-gather map).
        seeds: the requested seed nodes, as parent global ids, request order.
        seed_positions: ``(len(seeds),)`` — block global node id of every
            seed (the output-scatter map).
        fanouts: the per-hop fanout configuration the block was sampled with.
    """

    graph: HeteroGraph
    parent: HeteroGraph
    node_map: np.ndarray
    seeds: np.ndarray
    seed_positions: np.ndarray
    fanouts: Tuple[Fanout, ...]

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def gather_features(self, parent_features: np.ndarray) -> np.ndarray:
        """Restrict a parent-graph feature matrix to the block's nodes."""
        parent_features = np.asarray(parent_features)
        if parent_features.shape[0] != self.parent.num_nodes:
            raise ValueError(
                f"expected {self.parent.num_nodes} parent feature rows "
                f"(graph {self.parent.name!r}), got {parent_features.shape[0]}"
            )
        return parent_features[self.node_map]

    def seed_outputs(self, block_rows: np.ndarray) -> np.ndarray:
        """Extract the per-seed rows from a block-shaped output matrix."""
        block_rows = np.asarray(block_rows)
        if block_rows.shape[0] != self.graph.num_nodes:
            raise ValueError(
                f"expected {self.graph.num_nodes} block rows, got {block_rows.shape[0]}"
            )
        return block_rows[self.seed_positions]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"MinibatchBlock(parent={self.parent.name!r}, seeds={len(self.seeds)}, "
            f"nodes={self.num_nodes}, edges={self.num_edges}, fanouts={self.fanouts})"
        )


@dataclass
class HopBlock(MinibatchBlock):
    """One hop of a per-hop block sequence (see :meth:`NeighborSampler.sample_blocks`).

    Attributes (beyond :class:`MinibatchBlock`):
        hop: 1-based hop index; hop 1 is the innermost (its destinations are
            the seeds), hop ``k`` the outermost.
        dst_nodes: parent global ids of this hop's destination frontier —
            the nodes whose incoming neighborhoods were drawn, and therefore
            the only rows of this hop's output that are exact.  By
            construction ``blocks[i].dst_nodes == blocks[i+1].node_map`` in a
            ``sample_blocks`` result (hop boundaries compose).
        dst_positions: block-local node ids of ``dst_nodes``.
    """

    hop: int = 0
    dst_nodes: np.ndarray = None
    dst_positions: np.ndarray = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"HopBlock(hop={self.hop}, parent={self.parent.name!r}, "
            f"dst={len(self.dst_nodes)}, nodes={self.num_nodes}, edges={self.num_edges}, "
            f"fanouts={self.fanouts})"
        )


def hop_gather_indices(outer: MinibatchBlock, inner: MinibatchBlock) -> np.ndarray:
    """Positions of ``inner``'s nodes inside ``outer``'s node order.

    The hop-boundary map of layer-by-hop execution: rows of a matrix shaped
    like ``outer``'s nodes, gathered with the returned indices, line up with
    ``inner``'s nodes.  Requires ``inner``'s node set to be a subset of
    ``outer``'s (true for adjacent blocks of one ``sample_blocks`` result,
    where ``inner.node_map == outer.dst_nodes``).
    """
    indices = np.searchsorted(outer.node_map, inner.node_map)
    indices = np.minimum(indices, max(len(outer.node_map) - 1, 0))
    if len(inner.node_map) and not np.array_equal(outer.node_map[indices], inner.node_map):
        raise ValueError(
            f"inner block's nodes are not a subset of the outer block's "
            f"(outer {outer.graph.name!r}, inner {inner.graph.name!r})"
        )
    return indices


class NeighborSampler:
    """K-hop incoming-neighbor sampler over one parent graph.

    Args:
        graph: the parent heterogeneous graph.
        fanouts: one entry per hop; each is the max number of incoming edges
            kept per (node, relation), or ``None`` for the full neighborhood.
        seed: base RNG seed; a sampler is deterministic given
            (seed, epoch, shard, call order).
        shard: optional data-parallel shard index.  A sharded sampler seeds
            every epoch from ``(seed, epoch, shard)`` instead of
            ``(seed, epoch)``, so workers sharing a base seed draw disjoint
            neighborhood streams while any ``(epoch, shard)`` pair stays
            exactly replayable (see :meth:`resample`).

    Neighborhood draws are memoised per ``(relation, destination)`` for the
    duration of one *epoch*: every block sampled between two
    :meth:`resample` calls sees the same drawn neighborhood for the same
    node, so fanout caps and in-epoch determinism hold across minibatches.
    Without an explicit epoch boundary that memo would leak across training
    epochs — epoch 2 would train on exactly epoch 1's neighborhoods —
    so :meth:`resample` clears it and reseeds the RNG from ``(seed, epoch)``.
    """

    def __init__(
        self,
        graph: HeteroGraph,
        fanouts: Sequence[Fanout] = (None,),
        seed: int = 0,
        shard: Optional[int] = None,
    ):
        if not len(fanouts):
            raise ValueError("fanouts needs at least one hop")
        for fanout in fanouts:
            if fanout is not None and fanout < 1:
                raise ValueError(f"fanout must be >= 1 or None (full), got {fanout}")
        self.graph = graph
        self.fanouts: Tuple[Fanout, ...] = tuple(fanouts)
        self.schema = GraphSchema.from_graph(graph)
        self.base_seed = int(seed)
        self.epoch = 0
        self.shard = None if shard is None else int(shard)
        self._rng = np.random.default_rng(self._seed_words(0, self.shard))
        #: Epoch-scoped draw memo.  The key includes the requesting hop's
        #: fanout so a node revisited at a hop with a *different* cap gets a
        #: fresh draw under that cap instead of inheriting a larger one —
        #: per-hop in-degree caps must hold hop by hop.
        self._drawn: Dict[Tuple[CanonicalEtype, int, Fanout], np.ndarray] = {}
        #: Draw-memo telemetry (an epoch's revisits are hits).
        self.draw_hits = 0
        self.draw_misses = 0
        # Per-relation incoming-edge CSR: edge positions sorted by destination,
        # so one slice yields a destination's incoming edges of that relation.
        self._in_edges: Dict[CanonicalEtype, Tuple[np.ndarray, np.ndarray]] = {}
        for etype, (_, dst_local) in graph.edges_per_relation.items():
            n_dst = graph.num_nodes_per_type[etype[2]]
            order = np.argsort(dst_local, kind="stable")
            offsets = np.zeros(n_dst + 1, dtype=np.int64)
            np.cumsum(np.bincount(dst_local, minlength=n_dst), out=offsets[1:])
            self._in_edges[etype] = (order, offsets)

    # ------------------------------------------------------------------
    # epochs
    # ------------------------------------------------------------------
    def _seed_words(self, epoch: int, shard: Optional[int]) -> List[int]:
        """The RNG seed tuple of one ``(epoch, shard)`` stream, validated.

        ``np.random.default_rng`` seed words must be non-negative; feeding it
        a negative epoch (or shard) crashes deep inside numpy with an opaque
        ``ValueError``, so both are rejected here with the argument named.
        """
        epoch = int(epoch)
        if epoch < 0:
            raise ValueError(f"epoch must be >= 0 (RNG seed words are non-negative), got {epoch}")
        if shard is not None:
            shard = int(shard)
            if shard < 0:
                raise ValueError(f"shard must be >= 0 (RNG seed words are non-negative), got {shard}")
        return [self.base_seed, epoch] if shard is None else [self.base_seed, epoch, shard]

    def resample(self, epoch: Optional[int] = None, shard: Optional[int] = None) -> int:
        """Start a new sampling epoch; returns the epoch now in effect.

        Clears the per-(relation, destination) draw memo and reseeds the RNG
        from ``(base_seed, epoch)`` — or ``(base_seed, epoch, shard)`` for a
        sharded sampler — so the new epoch draws fresh neighborhoods yet is
        exactly reproducible: any sampler with the same base seed replays the
        same ``(epoch, shard)`` stream regardless of what earlier epochs (or
        other shards in between) sampled.  ``epoch`` defaults to the next
        epoch in sequence; ``shard`` defaults to the sampler's current shard
        (sticky, so per-worker samplers stay in their own stream across
        epochs).
        """
        epoch = int(epoch) if epoch is not None else self.epoch + 1
        shard = self.shard if shard is None else int(shard)
        words = self._seed_words(epoch, shard)
        self.epoch = epoch
        self.shard = shard
        self._rng = np.random.default_rng(words)
        self._drawn.clear()
        return self.epoch

    set_epoch = resample

    @property
    def draw_hit_rate(self) -> float:
        """Fraction of neighborhood lookups served by the epoch's draw memo."""
        lookups = self.draw_hits + self.draw_misses
        return self.draw_hits / lookups if lookups else 0.0

    # ------------------------------------------------------------------
    def _validate_seeds(self, seeds) -> np.ndarray:
        graph = self.graph
        seeds = np.asarray(seeds, dtype=np.int64).reshape(-1)
        if seeds.size == 0:
            raise ValueError("a minibatch needs at least one seed node")
        if seeds.min() < 0 or seeds.max() >= graph.num_nodes:
            raise ValueError(
                f"seed ids must lie in [0, {graph.num_nodes}) for graph {graph.name!r}"
            )
        return seeds

    def _draw_frontier(
        self,
        frontier: np.ndarray,
        fanout: Fanout,
        kept_positions: Dict[CanonicalEtype, List[np.ndarray]],
        call_memo: Optional[Dict] = None,
    ) -> List[np.ndarray]:
        """Draw every frontier node's incoming edges; returns per-relation
        source chunks (parent global ids) of the newly kept edges."""
        graph = self.graph
        source_chunks: List[np.ndarray] = []
        for etype in graph.canonical_etypes:
            src_type, _, dst_type = etype
            src_local, _ = graph.edges_per_relation[etype]
            if not len(src_local):
                continue
            dst_offset = graph.node_type_offset(dst_type)
            n_dst = graph.num_nodes_per_type[dst_type]
            in_type = frontier[(frontier >= dst_offset) & (frontier < dst_offset + n_dst)]
            if not len(in_type):
                continue
            positions = self._draw(etype, in_type - dst_offset, fanout, call_memo)
            if not len(positions):
                continue
            kept_positions[etype].append(positions)
            source_chunks.append(src_local[positions] + graph.node_type_offset(src_type))
        return source_chunks

    def merged_positions(self, seeds) -> Dict[CanonicalEtype, np.ndarray]:
        """Per-relation kept edge positions of the merged k-hop block of
        ``seeds`` — the draw without the compaction.

        This is the cacheable half of :meth:`sample`: positions are parent
        edge indices (relation-local), already deduplicated and sorted, so
        positions drawn for different seed sets can be unioned cheaply with
        ``np.unique(np.concatenate(...))`` and re-compacted via
        :meth:`assemble`.  Under ``fanout=None`` the union of per-seed
        positions equals a fresh merged draw of the seed union (full
        neighborhoods compose), which is what makes per-seed block caching
        exact.
        """
        graph = self.graph
        seeds = self._validate_seeds(seeds)
        kept_positions: Dict[CanonicalEtype, List[np.ndarray]] = {
            etype: [] for etype in graph.canonical_etypes
        }
        call_memo: Dict[Tuple[CanonicalEtype, int], np.ndarray] = {}
        frontier = np.unique(seeds)
        for fanout in self.fanouts:
            source_chunks = self._draw_frontier(frontier, fanout, kept_positions, call_memo)
            frontier = (
                np.unique(np.concatenate(source_chunks))
                if source_chunks
                else np.zeros(0, dtype=np.int64)
            )
            if not len(frontier):
                break
        return {
            etype: (np.unique(np.concatenate(chunks)) if chunks else np.zeros(0, dtype=np.int64))
            for etype, chunks in kept_positions.items()
        }

    def hop_positions(self, seeds) -> List[Dict[CanonicalEtype, np.ndarray]]:
        """Per-hop per-relation kept edge positions, outermost-last.

        The cacheable half of :meth:`sample_blocks`: entry ``i`` holds hop
        ``i+1``'s drawn edge positions (deduplicated, sorted).  Hop ``i+1``'s
        destination frontier is hop ``i``'s node set, reproduced here without
        compaction via :meth:`positions_nodes`.
        """
        seeds = self._validate_seeds(seeds)
        hops: List[Dict[CanonicalEtype, np.ndarray]] = []
        dst_frontier = np.unique(seeds)
        for fanout in self.fanouts:
            kept_positions: Dict[CanonicalEtype, List[np.ndarray]] = {
                etype: [] for etype in self.graph.canonical_etypes
            }
            self._draw_frontier(dst_frontier, fanout, kept_positions)
            positions = {
                etype: (np.unique(np.concatenate(chunks)) if chunks else np.zeros(0, dtype=np.int64))
                for etype, chunks in kept_positions.items()
            }
            hops.append(positions)
            dst_frontier = self.positions_nodes(dst_frontier, positions)
        return hops

    def positions_nodes(self, seeds, positions) -> np.ndarray:
        """The node set (sorted parent global ids) a positions draw touches.

        ``positions`` is one per-relation dict (:meth:`merged_positions`) or
        a list of them (:meth:`hop_positions`); the result is the union of
        ``seeds`` and every kept edge's endpoints — exactly the node set of
        the compacted block (block node order is type-major with sorted
        parent-locals per type, and type offsets are cumulative, so the
        block's ``node_map`` is this sorted set).
        """
        graph = self.graph
        chunks = [np.unique(np.asarray(seeds, dtype=np.int64).reshape(-1))]
        for per_relation in positions if isinstance(positions, list) else [positions]:
            for etype, kept in per_relation.items():
                if not len(kept):
                    continue
                src_type, _, dst_type = etype
                src_local, dst_local = graph.edges_per_relation[etype]
                chunks.append(src_local[kept] + graph.node_type_offset(src_type))
                chunks.append(dst_local[kept] + graph.node_type_offset(dst_type))
        return np.unique(np.concatenate(chunks))

    def assemble(
        self,
        seeds,
        positions: Dict[CanonicalEtype, np.ndarray],
        required_nodes: Optional[np.ndarray] = None,
    ) -> MinibatchBlock:
        """Compact a block from per-relation edge positions.

        The deterministic half of sampling: given positions (from
        :meth:`merged_positions`, or a union of cached per-seed draws), the
        resulting block is a pure function of ``(seeds, positions)`` — no RNG,
        no draw memo.  ``required_nodes`` keeps a destination frontier in the
        block even where no edge touches it (the per-hop case).
        """
        seeds = self._validate_seeds(seeds)
        kept_positions: Dict[CanonicalEtype, List[np.ndarray]] = {
            etype: ([positions[etype]] if len(positions.get(etype, ())) else [])
            for etype in self.graph.canonical_etypes
        }
        return self._compact(seeds, kept_positions, required_nodes=required_nodes)

    def assemble_hop_blocks(
        self,
        seeds,
        hops: List[Dict[CanonicalEtype, np.ndarray]],
    ) -> List[HopBlock]:
        """Compact one block per hop from per-hop positions (see
        :meth:`hop_positions`); returns outermost hop first, exactly as
        :meth:`sample_blocks` does."""
        seeds = self._validate_seeds(seeds)
        if len(hops) != len(self.fanouts):
            raise ValueError(
                f"expected {len(self.fanouts)} per-hop position dicts, got {len(hops)}"
            )
        blocks: List[HopBlock] = []
        dst_frontier = np.unique(seeds)
        for hop_index, (fanout, positions) in enumerate(zip(self.fanouts, hops), start=1):
            block = self.assemble(seeds, positions, required_nodes=dst_frontier)
            dst_positions = np.searchsorted(block.node_map, dst_frontier)
            blocks.append(HopBlock(
                graph=block.graph,
                parent=block.parent,
                node_map=block.node_map,
                seeds=block.seeds,
                seed_positions=block.seed_positions,
                fanouts=(fanout,),
                hop=hop_index,
                dst_nodes=dst_frontier,
                dst_positions=dst_positions,
            ))
            dst_frontier = block.node_map
        return list(reversed(blocks))

    def sample(self, seeds) -> MinibatchBlock:
        """Sample the merged block of a set of seed nodes (parent global ids).

        A destination revisited at a later hop reuses its first draw even
        when the hops' fanouts differ (the per-call memo in
        :meth:`merged_positions`), so merged per-relation in-degrees never
        exceed the cap of the hop that first reached the node — the
        block-level fanout invariant.
        """
        return self.assemble(seeds, self.merged_positions(seeds))

    def sample_blocks(self, seeds) -> List[HopBlock]:
        """Sample one block per hop, outermost hop first.

        Returns ``[Block_hop_k, ..., Block_hop_1]`` where hop 1's destination
        frontier is the seed set and hop ``i+1``'s destination frontier is the
        *entire node set* of hop ``i``'s block — so layer ``l`` of an
        ``L``-layer model (``L == k``) executes over ``blocks[l-1]`` and
        computes exact rows precisely for the nodes layer ``l+1`` reads:

        * ``blocks[i].dst_nodes == blocks[i+1].node_map`` (hop boundaries
          compose), and ``blocks[-1].dst_nodes`` is the deduplicated seed set;
        * each hop's per-relation in-degrees respect that hop's fanout;
        * every hop preserves the parent's full relation vocabulary, so edge
          type ids keep indexing the same per-relation weights.

        Draws share the epoch's memo with :meth:`sample`: within one epoch
        and under a uniform per-hop fanout, the outermost per-hop block and
        the merged k-hop block of the same seeds contain exactly the same
        edges, which is what makes per-hop vs merged aggregation-work
        comparisons edge-for-edge fair.
        """
        return self.assemble_hop_blocks(seeds, self.hop_positions(seeds))

    def _draw(
        self,
        etype: CanonicalEtype,
        dst_locals: np.ndarray,
        fanout: Fanout,
        call_memo: Optional[Dict] = None,
    ) -> np.ndarray:
        """Edge positions (relation-local) sampled for these destinations.

        ``call_memo`` (merged sampling) pins one draw per ``(etype, dst)``
        for the whole call regardless of per-hop fanouts; the epoch memo is
        keyed by fanout so per-hop blocks under *different* caps never
        inherit a larger hop's draw.
        """
        order, offsets = self._in_edges[etype]
        chunks: List[np.ndarray] = []
        for dst in dst_locals.tolist():
            if call_memo is not None and (etype, dst) in call_memo:
                self.draw_hits += 1
                picked = call_memo[(etype, dst)]
                if len(picked):
                    chunks.append(picked)
                continue
            key = (etype, dst, fanout)
            picked = self._drawn.get(key)
            if picked is None:
                self.draw_misses += 1
                incoming = order[offsets[dst]:offsets[dst + 1]]
                if fanout is not None and len(incoming) > fanout:
                    picked = self._rng.choice(incoming, size=fanout, replace=False)
                    picked.sort()
                else:
                    picked = incoming
                self._drawn[key] = picked
            else:
                self.draw_hits += 1
            if call_memo is not None:
                call_memo[(etype, dst)] = picked
            if len(picked):
                chunks.append(picked)
        if not chunks:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(chunks)

    # ------------------------------------------------------------------
    def _compact(
        self,
        seeds: np.ndarray,
        kept_positions: Dict[CanonicalEtype, List[np.ndarray]],
        required_nodes: Optional[np.ndarray] = None,
    ) -> MinibatchBlock:
        """Relabel the sampled nodes/edges into a schema-preserving block.

        ``required_nodes`` (parent global ids) are kept in the block even if
        no sampled edge touches them — per-hop blocks must contain their
        whole destination frontier so hop boundaries compose.
        """
        graph = self.graph

        # Deduplicated edge positions per relation (a destination revisited
        # across hops contributes its memoised draw once).
        final_positions: Dict[CanonicalEtype, np.ndarray] = {}
        for etype, chunks in kept_positions.items():
            final_positions[etype] = (
                np.unique(np.concatenate(chunks)) if chunks else np.zeros(0, dtype=np.int64)
            )

        # Node set per type: seeds (and any required nodes) plus every
        # endpoint of a kept edge.
        kept_locals: Dict[str, List[np.ndarray]] = {t: [] for t in graph.node_type_names}
        seed_types = np.searchsorted(graph.node_type_offsets, seeds, side="right") - 1
        for type_id, type_name in enumerate(graph.node_type_names):
            of_type = seeds[seed_types == type_id]
            if len(of_type):
                kept_locals[type_name].append(of_type - graph.node_type_offsets[type_id])
        if required_nodes is not None and len(required_nodes):
            required_types = np.searchsorted(graph.node_type_offsets, required_nodes, side="right") - 1
            for type_id, type_name in enumerate(graph.node_type_names):
                of_type = required_nodes[required_types == type_id]
                if len(of_type):
                    kept_locals[type_name].append(of_type - graph.node_type_offsets[type_id])
        for etype, positions in final_positions.items():
            if not len(positions):
                continue
            src_type, _, dst_type = etype
            src_local, dst_local = graph.edges_per_relation[etype]
            kept_locals[src_type].append(src_local[positions])
            kept_locals[dst_type].append(dst_local[positions])
        unique_locals: Dict[str, np.ndarray] = {
            t: (np.unique(np.concatenate(chunks)) if chunks else np.zeros(0, dtype=np.int64))
            for t, chunks in kept_locals.items()
        }

        # Block layout: parent type order, sorted parent-local ids per type.
        block_counts = {t: int(len(unique_locals[t])) for t in graph.node_type_names}
        block_offsets: Dict[str, int] = {}
        running = 0
        for t in graph.node_type_names:
            block_offsets[t] = running
            running += block_counts[t]
        node_map_chunks = [
            unique_locals[t] + graph.node_type_offset(t) for t in graph.node_type_names
        ]
        node_map = (
            np.concatenate(node_map_chunks) if running else np.zeros(0, dtype=np.int64)
        )

        # Relabel every relation's endpoints into block-local ids, keeping the
        # parent's full relation vocabulary (empty relations stay, so edge-type
        # ids — and therefore per-relation weights — line up).
        block_edges: Dict[CanonicalEtype, Tuple[np.ndarray, np.ndarray]] = {}
        for etype in graph.canonical_etypes:
            positions = final_positions[etype]
            src_type, _, dst_type = etype
            if not len(positions):
                block_edges[etype] = (
                    np.zeros(0, dtype=np.int64),
                    np.zeros(0, dtype=np.int64),
                )
                continue
            src_local, dst_local = graph.edges_per_relation[etype]
            block_edges[etype] = (
                np.searchsorted(unique_locals[src_type], src_local[positions]),
                np.searchsorted(unique_locals[dst_type], dst_local[positions]),
            )

        block_graph = HeteroGraph(
            {t: block_counts[t] for t in graph.node_type_names},
            block_edges,
            name=f"{graph.name}/block[{len(seeds)}s,{running}n]",
        )

        seed_positions = np.empty(len(seeds), dtype=np.int64)
        for index, (seed, type_id) in enumerate(zip(seeds.tolist(), seed_types.tolist())):
            type_name = graph.node_type_names[type_id]
            local = seed - int(graph.node_type_offsets[type_id])
            seed_positions[index] = block_offsets[type_name] + int(
                np.searchsorted(unique_locals[type_name], local)
            )

        return MinibatchBlock(
            graph=block_graph,
            parent=graph,
            node_map=node_map,
            seeds=seeds,
            seed_positions=seed_positions,
            fanouts=self.fanouts,
        )


def sample_block(
    graph: HeteroGraph,
    seeds,
    fanouts: Sequence[Fanout] = (None,),
    seed: int = 0,
) -> MinibatchBlock:
    """One-shot convenience wrapper around :class:`NeighborSampler`."""
    return NeighborSampler(graph, fanouts=fanouts, seed=seed).sample(seeds)
