"""Minibatch block sampling: per-request subgraphs for serving and training.

Production GNN inference does not run a compiled layer over one static full
graph — each request names a handful of *seed* nodes, and the system samples
their k-hop incoming neighborhood (capped per relation by a *fanout*) into a
compacted minibatch *block*.  This module produces such blocks as ordinary
:class:`~repro.graph.hetero_graph.HeteroGraph` objects that preserve the
parent's full schema (same node-type and relation vocabulary, in the same
order, with empty relations kept), so a schema-specialised compiled module
binds them directly — ``module.bind(block.graph)`` — and the whole existing
machinery (segment pointers, :class:`~repro.graph.compaction.CompactionIndex`
compact materialization, degree normalisation) applies to blocks unchanged.

A :class:`MinibatchBlock` additionally carries the index maps serving needs:
``node_map`` gathers parent-graph features into block order, and
``seed_positions`` scatters block outputs back to the request's seeds.

Sampling semantics (single merged block, DGL-style incoming-neighbor
sampling):

* hop 1 draws at most ``fanouts[0]`` incoming edges per (seed, relation);
  hop ``k`` repeats from the nodes hop ``k-1`` reached;
* a node's incoming neighborhood is drawn once per ``sample`` call — if the
  frontier revisits a node, the memoised draw is reused, so per-relation
  in-degrees in the block never exceed the fanout cap;
* ``fanout=None`` keeps the full neighborhood, in which case every seed's
  one-hop aggregation over the block is *exact*: it matches the full-graph
  computation restricted to the seeds (the property the sampler tests pin).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.hetero_graph import CanonicalEtype, HeteroGraph
from repro.graph.schema import GraphSchema

#: Per-hop fanout: max sampled incoming edges per (node, relation); None = all.
Fanout = Optional[int]


@dataclass
class MinibatchBlock:
    """A compacted sampled subgraph plus its parent-graph index maps.

    Attributes:
        graph: the block as a :class:`HeteroGraph` with the parent's full
            schema; node ids are block-local (contiguous, grouped by type).
        parent: the graph the block was sampled from.
        node_map: ``(block.num_nodes,)`` — parent global node id of every
            block node (the feature-gather map).
        seeds: the requested seed nodes, as parent global ids, request order.
        seed_positions: ``(len(seeds),)`` — block global node id of every
            seed (the output-scatter map).
        fanouts: the per-hop fanout configuration the block was sampled with.
    """

    graph: HeteroGraph
    parent: HeteroGraph
    node_map: np.ndarray
    seeds: np.ndarray
    seed_positions: np.ndarray
    fanouts: Tuple[Fanout, ...]

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def gather_features(self, parent_features: np.ndarray) -> np.ndarray:
        """Restrict a parent-graph feature matrix to the block's nodes."""
        parent_features = np.asarray(parent_features)
        if parent_features.shape[0] != self.parent.num_nodes:
            raise ValueError(
                f"expected {self.parent.num_nodes} parent feature rows "
                f"(graph {self.parent.name!r}), got {parent_features.shape[0]}"
            )
        return parent_features[self.node_map]

    def seed_outputs(self, block_rows: np.ndarray) -> np.ndarray:
        """Extract the per-seed rows from a block-shaped output matrix."""
        block_rows = np.asarray(block_rows)
        if block_rows.shape[0] != self.graph.num_nodes:
            raise ValueError(
                f"expected {self.graph.num_nodes} block rows, got {block_rows.shape[0]}"
            )
        return block_rows[self.seed_positions]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"MinibatchBlock(parent={self.parent.name!r}, seeds={len(self.seeds)}, "
            f"nodes={self.num_nodes}, edges={self.num_edges}, fanouts={self.fanouts})"
        )


class NeighborSampler:
    """K-hop incoming-neighbor sampler over one parent graph.

    Args:
        graph: the parent heterogeneous graph.
        fanouts: one entry per hop; each is the max number of incoming edges
            kept per (node, relation), or ``None`` for the full neighborhood.
        seed: RNG seed; a sampler is deterministic given (seed, call order).
    """

    def __init__(self, graph: HeteroGraph, fanouts: Sequence[Fanout] = (None,), seed: int = 0):
        if not len(fanouts):
            raise ValueError("fanouts needs at least one hop")
        for fanout in fanouts:
            if fanout is not None and fanout < 1:
                raise ValueError(f"fanout must be >= 1 or None (full), got {fanout}")
        self.graph = graph
        self.fanouts: Tuple[Fanout, ...] = tuple(fanouts)
        self.schema = GraphSchema.from_graph(graph)
        self._rng = np.random.default_rng(seed)
        # Per-relation incoming-edge CSR: edge positions sorted by destination,
        # so one slice yields a destination's incoming edges of that relation.
        self._in_edges: Dict[CanonicalEtype, Tuple[np.ndarray, np.ndarray]] = {}
        for etype, (_, dst_local) in graph.edges_per_relation.items():
            n_dst = graph.num_nodes_per_type[etype[2]]
            order = np.argsort(dst_local, kind="stable")
            offsets = np.zeros(n_dst + 1, dtype=np.int64)
            np.cumsum(np.bincount(dst_local, minlength=n_dst), out=offsets[1:])
            self._in_edges[etype] = (order, offsets)

    # ------------------------------------------------------------------
    def sample(self, seeds) -> MinibatchBlock:
        """Sample the block of a set of seed nodes (parent global ids)."""
        graph = self.graph
        seeds = np.asarray(seeds, dtype=np.int64).reshape(-1)
        if seeds.size == 0:
            raise ValueError("a minibatch needs at least one seed node")
        if seeds.min() < 0 or seeds.max() >= graph.num_nodes:
            raise ValueError(
                f"seed ids must lie in [0, {graph.num_nodes}) for graph {graph.name!r}"
            )

        # One neighborhood draw per (relation, destination) per call: revisits
        # reuse it, keeping per-relation in-degrees within the fanout cap.
        drawn: Dict[Tuple[CanonicalEtype, int], np.ndarray] = {}
        kept_positions: Dict[CanonicalEtype, List[np.ndarray]] = {
            etype: [] for etype in graph.canonical_etypes
        }

        frontier = np.unique(seeds)
        for fanout in self.fanouts:
            next_frontier: List[np.ndarray] = []
            for etype in graph.canonical_etypes:
                src_type, _, dst_type = etype
                src_local, dst_local = graph.edges_per_relation[etype]
                if not len(src_local):
                    continue
                dst_offset = graph.node_type_offset(dst_type)
                n_dst = graph.num_nodes_per_type[dst_type]
                in_type = frontier[
                    (frontier >= dst_offset) & (frontier < dst_offset + n_dst)
                ]
                if not len(in_type):
                    continue
                positions = self._draw(etype, in_type - dst_offset, fanout, drawn)
                if not len(positions):
                    continue
                kept_positions[etype].append(positions)
                next_frontier.append(
                    src_local[positions] + graph.node_type_offset(src_type)
                )
            frontier = (
                np.unique(np.concatenate(next_frontier))
                if next_frontier
                else np.zeros(0, dtype=np.int64)
            )
            if not len(frontier):
                break

        return self._compact(seeds, kept_positions)

    def _draw(
        self,
        etype: CanonicalEtype,
        dst_locals: np.ndarray,
        fanout: Fanout,
        drawn: Dict[Tuple[CanonicalEtype, int], np.ndarray],
    ) -> np.ndarray:
        """Edge positions (relation-local) sampled for these destinations."""
        order, offsets = self._in_edges[etype]
        chunks: List[np.ndarray] = []
        for dst in dst_locals.tolist():
            key = (etype, dst)
            picked = drawn.get(key)
            if picked is None:
                incoming = order[offsets[dst]:offsets[dst + 1]]
                if fanout is not None and len(incoming) > fanout:
                    picked = self._rng.choice(incoming, size=fanout, replace=False)
                    picked.sort()
                else:
                    picked = incoming
                drawn[key] = picked
            if len(picked):
                chunks.append(picked)
        if not chunks:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(chunks)

    # ------------------------------------------------------------------
    def _compact(
        self,
        seeds: np.ndarray,
        kept_positions: Dict[CanonicalEtype, List[np.ndarray]],
    ) -> MinibatchBlock:
        """Relabel the sampled nodes/edges into a schema-preserving block."""
        graph = self.graph

        # Deduplicated edge positions per relation (a destination revisited
        # across hops contributes its memoised draw once).
        final_positions: Dict[CanonicalEtype, np.ndarray] = {}
        for etype, chunks in kept_positions.items():
            final_positions[etype] = (
                np.unique(np.concatenate(chunks)) if chunks else np.zeros(0, dtype=np.int64)
            )

        # Node set per type: seeds plus every endpoint of a kept edge.
        kept_locals: Dict[str, List[np.ndarray]] = {t: [] for t in graph.node_type_names}
        seed_types = np.searchsorted(graph.node_type_offsets, seeds, side="right") - 1
        for type_id, type_name in enumerate(graph.node_type_names):
            of_type = seeds[seed_types == type_id]
            if len(of_type):
                kept_locals[type_name].append(of_type - graph.node_type_offsets[type_id])
        for etype, positions in final_positions.items():
            if not len(positions):
                continue
            src_type, _, dst_type = etype
            src_local, dst_local = graph.edges_per_relation[etype]
            kept_locals[src_type].append(src_local[positions])
            kept_locals[dst_type].append(dst_local[positions])
        unique_locals: Dict[str, np.ndarray] = {
            t: (np.unique(np.concatenate(chunks)) if chunks else np.zeros(0, dtype=np.int64))
            for t, chunks in kept_locals.items()
        }

        # Block layout: parent type order, sorted parent-local ids per type.
        block_counts = {t: int(len(unique_locals[t])) for t in graph.node_type_names}
        block_offsets: Dict[str, int] = {}
        running = 0
        for t in graph.node_type_names:
            block_offsets[t] = running
            running += block_counts[t]
        node_map_chunks = [
            unique_locals[t] + graph.node_type_offset(t) for t in graph.node_type_names
        ]
        node_map = (
            np.concatenate(node_map_chunks) if running else np.zeros(0, dtype=np.int64)
        )

        # Relabel every relation's endpoints into block-local ids, keeping the
        # parent's full relation vocabulary (empty relations stay, so edge-type
        # ids — and therefore per-relation weights — line up).
        block_edges: Dict[CanonicalEtype, Tuple[np.ndarray, np.ndarray]] = {}
        for etype in graph.canonical_etypes:
            positions = final_positions[etype]
            src_type, _, dst_type = etype
            if not len(positions):
                block_edges[etype] = (
                    np.zeros(0, dtype=np.int64),
                    np.zeros(0, dtype=np.int64),
                )
                continue
            src_local, dst_local = graph.edges_per_relation[etype]
            block_edges[etype] = (
                np.searchsorted(unique_locals[src_type], src_local[positions]),
                np.searchsorted(unique_locals[dst_type], dst_local[positions]),
            )

        block_graph = HeteroGraph(
            {t: block_counts[t] for t in graph.node_type_names},
            block_edges,
            name=f"{graph.name}/block[{len(seeds)}s,{running}n]",
        )

        seed_positions = np.empty(len(seeds), dtype=np.int64)
        for index, (seed, type_id) in enumerate(zip(seeds.tolist(), seed_types.tolist())):
            type_name = graph.node_type_names[type_id]
            local = seed - int(graph.node_type_offsets[type_id])
            seed_positions[index] = block_offsets[type_name] + int(
                np.searchsorted(unique_locals[type_name], local)
            )

        return MinibatchBlock(
            graph=block_graph,
            parent=graph,
            node_map=node_map,
            seeds=seeds,
            seed_positions=seed_positions,
            fanouts=self.fanouts,
        )


def sample_block(
    graph: HeteroGraph,
    seeds,
    fanouts: Sequence[Fanout] = (None,),
    seed: int = 0,
) -> MinibatchBlock:
    """One-shot convenience wrapper around :class:`NeighborSampler`."""
    return NeighborSampler(graph, fanouts=fanouts, seed=seed).sample(seeds)
