"""Compiled RGNN modules: schema-specialised parameters + generated kernels.

This is the runtime object the frontend returns from compilation, playing the
role of the PyTorch ``autograd.Function`` subclasses the real Hector
registers.  A module is specialised for a *schema* (the ordered node/edge
type vocabulary that sizes per-type weights) and for the plan's feature
dimensions — never for one concrete graph.  Attaching it to a graph is a
separate, cheap step: :meth:`CompiledRGNNModule.bind` produces a
:class:`~repro.runtime.binding.GraphBinding` (graph context + arena lease +
executor), and one module serves many bindings — the full training graph and
any number of sampled minibatch blocks — with parameters shared across all
of them.

For backward compatibility the module keeps the classic bound-module API:
constructing it with a graph creates a *default binding*, and
``forward`` / ``backward`` / ``graph`` / ``ctx`` / ``arena`` / ``executor``
delegate to it, so ``compile_model(...)`` callers are unaffected.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.graph.hetero_graph import HeteroGraph
from repro.graph.schema import GraphSchema
from repro.ir.codegen.python_backend import GeneratedModule
from repro.ir.inter_op.space import Space, ValueInfo
from repro.ir.intra_op.plan import KernelPlan
from repro.runtime.binding import GraphBinding
from repro.runtime.context import GraphContext
from repro.runtime.planner import ArenaPool, MemoryPlanner
from repro.tensor import init as tensor_init
from repro.tensor.nn import Parameter


class CompiledRGNNModule:
    """A compiled RGNN layer, rebindable across graphs sharing one schema.

    Args:
        plan: the lowered kernel plan.
        generated: the Python backend's generated kernels for that plan.
        graph: optional graph to create the default binding against (its type
            vocabulary defines the schema when ``schema`` is not given).
        seed: RNG seed for parameter initialisation.
        schema: explicit :class:`~repro.graph.schema.GraphSchema` to
            specialise for; required when ``graph`` is ``None``.
        arena_pool: explicit :class:`~repro.runtime.planner.ArenaPool`;
            defaults to a module-private pool (modules sharing a cached plan
            must not share buffers).
    """

    def __init__(
        self,
        plan: KernelPlan,
        generated: GeneratedModule,
        graph: Optional[HeteroGraph] = None,
        seed: int = 0,
        *,
        schema: Optional[GraphSchema] = None,
        arena_pool: Optional[ArenaPool] = None,
    ):
        if schema is None:
            if graph is None:
                raise ValueError("CompiledRGNNModule needs a graph or an explicit schema")
            schema = GraphSchema.from_graph(graph)
        self.plan = plan
        self.generated = generated
        self.schema = schema
        self.memory_planner: Optional[MemoryPlanner] = None
        self.arena_pool: Optional[ArenaPool] = None
        if plan.metadata.get("memory_planning_enabled"):
            self.memory_planner = MemoryPlanner(plan)
            self.arena_pool = arena_pool or ArenaPool()
        self.parameters_by_name: Dict[str, Parameter] = {}
        self._init_parameters(seed)
        self._default_binding: Optional[GraphBinding] = None
        if graph is not None:
            # Exact-size private arena: the classic one-module-one-graph path
            # must not pay the pooled arenas' bucket-rounded slab sizes.
            self._default_binding = self.bind(graph, pooled=False)

    @classmethod
    def for_schema(
        cls,
        plan: KernelPlan,
        generated: GeneratedModule,
        schema: GraphSchema,
        seed: int = 0,
    ) -> "CompiledRGNNModule":
        """An unbound module: compile-side artefact only, bind graphs later."""
        return cls(plan, generated, graph=None, seed=seed, schema=schema)

    # ------------------------------------------------------------------
    # binding
    # ------------------------------------------------------------------
    def bind(
        self,
        graph: HeteroGraph,
        *,
        pooled: bool = True,
        arena_source=None,
        label: Optional[str] = None,
    ) -> GraphBinding:
        """Attach the module to a concrete graph (full graph or sampled block).

        Validates the graph against the module's schema, reuses the memoised
        graph context, and leases an arena.  ``arena_source`` (anything with
        an ``ArenaPool``-shaped ``lease(planner, ctx)`` — in practice a
        :class:`~repro.runtime.planner.TenantArenaSource` view of a serving
        router's :class:`~repro.runtime.planner.SharedArenaBudget`) overrides
        where the arena comes from; otherwise ``pooled=True`` (the default
        for explicit rebinds — the serving pattern) leases from the module's
        bucketed LRU pool, so same-bucket bindings share slabs, and
        ``pooled=False`` builds a private arena sized exactly for ``graph``
        (the default binding uses this: a module bound once to one full graph
        should not pay the power-of-two bucket ceiling).  The returned
        binding shares this module's parameters in every case.  ``label``
        names the binding's owner (e.g. a serving endpoint) in error messages.
        """
        self.schema.validate_graph(graph)
        ctx = GraphContext.cached(graph)
        lease = None
        if self.memory_planner is not None:
            if arena_source is not None:
                lease = arena_source.lease(self.memory_planner, ctx)
            elif pooled and self.arena_pool is not None:
                lease = self.arena_pool.lease(self.memory_planner, ctx)
            else:
                lease = self.memory_planner.build_arena(ctx).lease()
        return GraphBinding(self, graph, ctx, arena_lease=lease, label=label)

    @property
    def default_binding(self) -> Optional[GraphBinding]:
        """The binding created at construction time, if a graph was given."""
        return self._default_binding

    def _require_binding(self) -> GraphBinding:
        if self._default_binding is None:
            raise RuntimeError(
                "this module is not bound to a graph; call module.bind(graph) and use "
                "the returned GraphBinding (or construct the module with a graph)"
            )
        return self._default_binding

    # Delegation: the classic bound-module surface, routed through the
    # default binding so pre-refactor callers keep working unchanged.
    @property
    def graph(self) -> HeteroGraph:
        return self._require_binding().graph

    @property
    def ctx(self) -> GraphContext:
        return self._require_binding().ctx

    @property
    def arena(self):
        return self._require_binding().arena

    @property
    def executor(self):
        return self._require_binding().executor

    @property
    def _last_env(self) -> Optional[Dict[str, np.ndarray]]:
        return self._require_binding()._last_env

    # ------------------------------------------------------------------
    # parameters
    # ------------------------------------------------------------------
    def _parameter_shape(self, info: ValueInfo) -> tuple:
        if info.per_type == "edge_type":
            return (self.schema.num_edge_types,) + tuple(info.feature_shape)
        if info.per_type == "node_type":
            return (self.schema.num_node_types,) + tuple(info.feature_shape)
        return tuple(info.feature_shape)

    def _init_parameters(self, seed: int) -> None:
        for offset, name in enumerate(self.plan.parameter_names):
            info = self.plan.buffers[name]
            shape = self._parameter_shape(info)
            self.parameters_by_name[name] = Parameter(tensor_init.xavier_uniform(shape, seed=seed + offset))

    def parameters(self):
        """All learnable parameters (list of :class:`Parameter`)."""
        return list(self.parameters_by_name.values())

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))

    @property
    def node_feature_inputs(self) -> list:
        """Names of the plan inputs that receive the node-feature matrix."""
        return [
            name for name in self.plan.input_names
            if self.plan.buffers[name].space is Space.NODE
        ]

    @property
    def input_feature_dim(self) -> Optional[int]:
        """The in-dimension the plan's node-feature inputs expect, if uniform."""
        dims = {
            self.plan.buffers[name].feature_shape[0]
            for name in self.node_feature_inputs
            if len(self.plan.buffers[name].feature_shape) == 1
        }
        return int(next(iter(dims))) if len(dims) == 1 else None

    @property
    def output_feature_dim(self) -> Optional[int]:
        """The out-dimension of the plan's first output, if one-dimensional."""
        shape = self.plan.buffers[self.plan.output_names[0]].feature_shape
        return int(shape[-1]) if len(shape) else None

    @property
    def output_name(self) -> str:
        """The plan's primary output buffer name."""
        return self.plan.output_names[0]

    @property
    def backend(self) -> str:
        """Name of the execution backend that generated this module's kernels.

        Recorded in the plan metadata by ``compile_program`` from the registry
        (:mod:`repro.ir.codegen.registry`); ``"python-interp"`` for plans
        compiled before the backend was recorded.
        """
        return str(self.plan.metadata.get("backend", "python-interp"))

    # ------------------------------------------------------------------
    # execution (delegates to the default binding)
    # ------------------------------------------------------------------
    def forward(self, node_features: np.ndarray, extra_inputs: Optional[Mapping[str, np.ndarray]] = None
                ) -> Dict[str, np.ndarray]:
        """Run the generated forward kernels on the default binding.

        See :meth:`GraphBinding.forward`; use :meth:`bind` to execute against
        other graphs.
        """
        return self._require_binding().forward(node_features, extra_inputs)

    __call__ = forward

    def backward(self, output_grads: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Run the generated backward kernels on the default binding.

        See :meth:`GraphBinding.backward`.
        """
        return self._require_binding().backward(output_grads)

    def zero_grad(self) -> None:
        """Clear parameter gradients."""
        for parameter in self.parameters():
            parameter.zero_grad()

    # ------------------------------------------------------------------
    def generated_source(self) -> str:
        """The generated Python kernel source for this module's plan."""
        return self.generated.source

    def generated_for(self, ctx) -> object:
        """The generated module specialised for a bound graph context.

        Backends that re-specialise per binding (the mixed backend's
        occupancy-signature variants) expose ``specialise_for_occupancy``;
        everything else executes the shared generated module as-is.
        ``GraphBinding`` calls this once at bind time.
        """
        specialise = getattr(self.generated, "specialise_for_occupancy", None)
        if specialise is None:
            return self.generated
        return specialise(ctx)

    def summary(self) -> Dict[str, object]:
        """Plan summary plus parameter count (for reports and tests).

        Backend telemetry rides along: the persistent artifact cache's
        hit/miss counters (process-wide), and — for mixed-backend modules —
        the per-kernel assignment counts and the occupancy-respecialisation
        memo counters.
        """
        from repro.ir.codegen.artifact_cache import artifact_cache_stats

        info = self.plan.summary()
        info["backend"] = self.backend
        info["num_parameters"] = self.num_parameters()
        info["graph"] = (
            self._default_binding.graph.name if self._default_binding is not None else str(self.schema)
        )
        info["artifact_cache"] = artifact_cache_stats()
        assignment_counts = getattr(self.generated, "assignment_counts", None)
        if assignment_counts is not None:
            info["mixed_assignment"] = assignment_counts()
        occupancy_stats = getattr(self.generated, "occupancy_stats", None)
        if occupancy_stats is not None:
            info["occupancy"] = occupancy_stats()
        return info
