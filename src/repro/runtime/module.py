"""Compiled RGNN modules: parameters + generated kernels bound to a graph.

This is the runtime object the frontend returns from compilation, playing the
role of the PyTorch ``autograd.Function`` subclasses the real Hector registers:
it owns the layer's parameters, fills the buffer environment, runs the
generated forward kernels, and (for training) the paired backward kernels that
produce parameter gradients.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.graph.hetero_graph import HeteroGraph
from repro.ir.codegen.python_backend import GeneratedModule
from repro.ir.inter_op.space import Space, ValueInfo
from repro.ir.intra_op.plan import KernelPlan
from repro.runtime.context import GraphContext
from repro.runtime.executor import PlanExecutor
from repro.runtime.planner import MemoryPlanner
from repro.tensor import init as tensor_init
from repro.tensor.nn import Parameter


class CompiledRGNNModule:
    """A compiled RGNN layer bound to a specific heterogeneous graph.

    Args:
        plan: the lowered kernel plan.
        generated: the Python backend's generated kernels for that plan.
        graph: the graph the module is specialised for (its node/edge type
            counts determine parameter shapes; its index arrays feed the
            generated access schemes).
        seed: RNG seed for parameter initialisation.
    """

    def __init__(
        self,
        plan: KernelPlan,
        generated: GeneratedModule,
        graph: HeteroGraph,
        seed: int = 0,
    ):
        self.plan = plan
        self.generated = generated
        self.graph = graph
        self.ctx = GraphContext.cached(graph)
        self.arena = None
        if plan.metadata.get("memory_planning_enabled"):
            # Preallocate the intermediate buffers once; every forward (and
            # backward) invocation then reuses the same arena-backed arrays
            # instead of allocating afresh.  Arenas are per-module — modules
            # sharing a cached plan must not share buffers.
            self.arena = MemoryPlanner(plan).build_arena(self.ctx)
        self.executor = PlanExecutor(plan, generated, arena=self.arena)
        self.parameters_by_name: Dict[str, Parameter] = {}
        self._init_parameters(seed)
        self._last_env: Optional[Dict[str, np.ndarray]] = None

    # ------------------------------------------------------------------
    def _parameter_shape(self, info: ValueInfo) -> tuple:
        if info.per_type == "edge_type":
            return (self.graph.num_edge_types,) + tuple(info.feature_shape)
        if info.per_type == "node_type":
            return (self.graph.num_node_types,) + tuple(info.feature_shape)
        return tuple(info.feature_shape)

    def _init_parameters(self, seed: int) -> None:
        for offset, name in enumerate(self.plan.parameter_names):
            info = self.plan.buffers[name]
            shape = self._parameter_shape(info)
            self.parameters_by_name[name] = Parameter(tensor_init.xavier_uniform(shape, seed=seed + offset))

    def parameters(self):
        """All learnable parameters (list of :class:`Parameter`)."""
        return list(self.parameters_by_name.values())

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------
    def _default_inputs(self) -> Dict[str, np.ndarray]:
        """Inputs the module can derive from the graph itself (e.g. RGCN norm)."""
        derived: Dict[str, np.ndarray] = {}
        for name in self.plan.input_names:
            if name == "norm":
                derived[name] = self.ctx.degree_normalization()
        return derived

    def forward(self, node_features: np.ndarray, extra_inputs: Optional[Mapping[str, np.ndarray]] = None
                ) -> Dict[str, np.ndarray]:
        """Run the generated forward kernels.

        Args:
            node_features: ``(num_nodes, in_dim)`` feature matrix bound to the
                plan's node-feature input.
            extra_inputs: optional additional named inputs.

        Returns:
            Mapping from output value name to its numpy array.
        """
        node_features = np.asarray(node_features, dtype=np.float64)
        if node_features.shape[0] != self.graph.num_nodes:
            raise ValueError(
                f"expected {self.graph.num_nodes} feature rows, got {node_features.shape[0]}"
            )
        env: Dict[str, np.ndarray] = {}
        env.update(self._default_inputs())
        if extra_inputs:
            env.update({k: np.asarray(v, dtype=np.float64) for k, v in extra_inputs.items()})
        feature_inputs = [
            name for name in self.plan.input_names
            if self.plan.buffers[name].space is Space.NODE and name not in env
        ]
        for name in feature_inputs:
            env[name] = node_features
        for name, parameter in self.parameters_by_name.items():
            env[name] = parameter.data
        self.executor.run_forward(env, self.ctx)
        self._last_env = env
        return {name: env[name] for name in self.plan.output_names}

    __call__ = forward

    def backward(self, output_grads: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Run the generated backward kernels and accumulate parameter gradients.

        Args:
            output_grads: gradient of the loss w.r.t. each output value.

        Returns:
            Mapping from parameter name to its gradient array (also accumulated
            into each :class:`Parameter`'s ``.grad``).
        """
        if self._last_env is None:
            raise RuntimeError("backward() called before forward()")
        env = self.executor.run_backward(self._last_env, self.ctx, output_grads)
        grads = self.executor.parameter_gradients(env)
        for name, grad in grads.items():
            parameter = self.parameters_by_name[name]
            if parameter.grad is None:
                parameter.grad = grad.copy()
            else:
                parameter.grad = parameter.grad + grad
        return grads

    def zero_grad(self) -> None:
        """Clear parameter gradients."""
        for parameter in self.parameters():
            parameter.zero_grad()

    # ------------------------------------------------------------------
    def generated_source(self) -> str:
        """The generated Python kernel source for this module's plan."""
        return self.generated.source

    def summary(self) -> Dict[str, object]:
        """Plan summary plus parameter count (for reports and tests)."""
        info = self.plan.summary()
        info["num_parameters"] = self.num_parameters()
        info["graph"] = self.graph.name
        return info
