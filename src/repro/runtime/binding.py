"""Graph bindings: one compiled module executed against one concrete graph.

A :class:`~repro.runtime.module.CompiledRGNNModule` is specialised for a
*schema* (type vocabulary + feature dimensions); a :class:`GraphBinding` is
the lightweight object that attaches it to a concrete
:class:`~repro.graph.hetero_graph.HeteroGraph` — the full training graph, or
a sampled minibatch block.  The binding owns everything graph-sized: the
preprocessed index arrays (:class:`~repro.runtime.context.GraphContext`), an
arena lease from the module's pooled planner, the executor, and the last
forward environment the backward pass re-reads.  Parameters stay on the
module and are shared by every binding, so serving many sampled blocks
compiles once, initialises weights once, and binds per request.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Mapping, Optional

import numpy as np

from repro.graph.hetero_graph import HeteroGraph
from repro.runtime.context import GraphContext
from repro.runtime.executor import PlanExecutor
from repro.runtime.planner import ArenaLease

if TYPE_CHECKING:  # pragma: no cover - type hints only, avoids an import cycle
    from repro.runtime.module import CompiledRGNNModule


class GraphBinding:
    """A compiled module bound to one concrete graph.

    Created by :meth:`CompiledRGNNModule.bind`; not instantiated directly.

    Args:
        module: the schema-specialised compiled module (owns plan, generated
            kernels, and parameters).
        graph: the concrete graph this binding executes against.
        ctx: the graph's preprocessed index arrays.
        arena_lease: lease on a pooled buffer arena, or ``None`` when memory
            planning is disabled for the plan.
        label: optional owner tag (e.g. ``"endpoint 'rgat-medium'"``) prefixed
            to validation errors, so in a multi-tenant process a bad input
            names the tenant it belongs to, not just the (shared) graph.
    """

    def __init__(
        self,
        module: "CompiledRGNNModule",
        graph: HeteroGraph,
        ctx: GraphContext,
        arena_lease: Optional[ArenaLease] = None,
        label: Optional[str] = None,
    ):
        self.module = module
        self.graph = graph
        self.ctx = ctx
        self.arena_lease = arena_lease
        self.label = label
        # Bind-time respecialisation hook: backends with per-graph variants
        # (mixed-backend occupancy specialisation) pick the variant here, once
        # per binding, instead of per call.
        self.executor = PlanExecutor(module.plan, module.generated_for(ctx), arena=arena_lease)
        self._last_env: Optional[Dict[str, np.ndarray]] = None
        self._forward_generation: Optional[int] = None

    def _describe(self) -> str:
        """``graph 'name'`` or ``endpoint ...: graph 'name'`` for errors."""
        base = f"graph {self.graph.name!r}"
        return f"{self.label}: {base}" if self.label else base

    # ------------------------------------------------------------------
    @property
    def plan(self):
        return self.module.plan

    @property
    def arena(self):
        """The (possibly shared) buffer arena backing this binding, if any."""
        return self.arena_lease.arena if self.arena_lease is not None else None

    # ------------------------------------------------------------------
    def _default_inputs(self) -> Dict[str, np.ndarray]:
        """Inputs derivable from the bound graph itself (e.g. RGCN norm)."""
        derived: Dict[str, np.ndarray] = {}
        for name in self.module.plan.input_names:
            if name == "norm":
                derived[name] = self.ctx.degree_normalization()
        return derived

    def _validate_features(self, node_features) -> np.ndarray:
        """Check shape/dtype against the bound graph before any kernel runs.

        Mismatched features used to surface as cryptic failures deep inside
        the generated kernels; this front door names the bound graph and the
        expected shape instead.
        """
        array = np.asarray(node_features)
        where = self._describe()
        if array.dtype == object or not np.issubdtype(array.dtype, np.number):
            raise TypeError(
                f"node_features must be numeric, got dtype {array.dtype} ({where})"
            )
        if np.issubdtype(array.dtype, np.complexfloating):
            raise TypeError(
                f"node_features must be real-valued, got dtype {array.dtype} ({where})"
            )
        expected_dim = self.module.input_feature_dim
        if array.ndim != 2:
            raise ValueError(
                f"node_features must be 2-D (num_nodes, in_dim), got shape {array.shape}; "
                f"{where} expects "
                f"({self.graph.num_nodes}, {expected_dim if expected_dim is not None else 'in_dim'})"
            )
        if array.shape[0] != self.graph.num_nodes:
            raise ValueError(
                f"expected {self.graph.num_nodes} feature rows for {where}, "
                f"got {array.shape[0]}"
            )
        if expected_dim is not None and array.shape[1] != expected_dim:
            raise ValueError(
                f"expected feature dimension {expected_dim} (the compiled plan's "
                f"node-feature input), got {array.shape[1]} for {where}"
            )
        return np.asarray(array, dtype=np.float64)

    # ------------------------------------------------------------------
    def forward(
        self,
        node_features: np.ndarray,
        extra_inputs: Optional[Mapping[str, np.ndarray]] = None,
    ) -> Dict[str, np.ndarray]:
        """Run the generated forward kernels against the bound graph.

        Args:
            node_features: ``(graph.num_nodes, in_dim)`` feature matrix bound
                to the plan's node-feature inputs.
            extra_inputs: optional additional named inputs.

        Returns:
            Mapping from output value name to its numpy array.
        """
        node_features = self._validate_features(node_features)
        env: Dict[str, np.ndarray] = {}
        env.update(self._default_inputs())
        if extra_inputs:
            env.update({k: np.asarray(v, dtype=np.float64) for k, v in extra_inputs.items()})
        plan = self.module.plan
        feature_inputs = [
            name for name in self.module.node_feature_inputs if name not in env
        ]
        for name in feature_inputs:
            env[name] = node_features
        for name, parameter in self.module.parameters_by_name.items():
            env[name] = parameter.data
        self.executor.run_forward(env, self.ctx)
        self._last_env = env
        # Pooled arenas are shared between same-bucket bindings; remember the
        # arena's bind generation so a stale backward is an error, not silent
        # gradient corruption (the backward kernels re-read forward
        # intermediates living in the shared slabs).
        self._forward_generation = self.arena.bind_count if self.arena is not None else None
        return {name: env[name] for name in plan.output_names}

    __call__ = forward

    def backward(self, output_grads: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Run the generated backward kernels and accumulate parameter gradients.

        Gradients accumulate into the *module's* parameters — bindings share
        them — so a training step over several bindings (e.g. minibatch
        blocks) sums their contributions exactly like gradient accumulation.
        Run each binding's forward+backward as a pair: executing *another*
        binding's forward on the same pooled arena in between overwrites the
        forward intermediates backward re-reads, and is rejected below.
        """
        if self._last_env is None:
            raise RuntimeError("backward() called before forward() on this binding")
        if self.arena is not None and self.arena.bind_count != self._forward_generation:
            raise RuntimeError(
                "forward intermediates are stale: another binding sharing this pooled "
                "arena ran forward() since this binding's forward(). Re-run forward() "
                "immediately before backward(), or use module.bind(graph, pooled=False) "
                "for a private arena."
            )
        env = self.executor.run_backward(self._last_env, self.ctx, output_grads)
        grads = self.executor.parameter_gradients(env)
        for name, grad in grads.items():
            parameter = self.module.parameters_by_name[name]
            if parameter.grad is None:
                parameter.grad = grad.copy()
            else:
                parameter.grad = parameter.grad + grad
        return grads

    def input_gradients(self) -> Dict[str, np.ndarray]:
        """Gradients w.r.t. the plan's node-feature inputs, after :meth:`backward`.

        This is what chains layers: an outer layer's output rows feed an
        inner layer's input, so the inner binding's input gradient — scattered
        back across the hop boundary — becomes the outer binding's output
        gradient.  Raises if no backward pass has populated them yet.
        """
        if self._last_env is None:
            raise RuntimeError("input_gradients() called before forward()/backward() on this binding")
        grads: Dict[str, np.ndarray] = {}
        for name in self.module.node_feature_inputs:
            grad = self._last_env.get(f"grad_{name}")
            if grad is not None:
                grads[name] = grad
        if not grads:
            raise RuntimeError(
                "no input gradients in the environment: run backward() first "
                "(and compile with emit_backward=True)"
            )
        return grads

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"GraphBinding(plan={self.module.plan.name!r}, graph={self.graph.name!r}, "
            f"nodes={self.graph.num_nodes}, edges={self.graph.num_edges})"
        )
