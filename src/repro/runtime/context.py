"""Graph context: the index arrays generated kernels read.

This is the runtime counterpart of the paper's "layout choices" box in
Figure 5: the COO arrays (``row_idx`` / ``col_idx`` / edge types), edges
presorted by type (``etype_ptr`` + permutation), nodes grouped by type
(``ntype_ptr``), the compact-materialization mapping (``unique_row_idx``,
``unique_etype_ptr``, ``edge_to_unique``), and the canonical edge-type →
endpoint-node-type maps used to resolve per-source/destination-node-type
weights inside edge-type segments.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass

import numpy as np

from repro.graph.hetero_graph import HeteroGraph

#: Per-graph memo of preprocessed contexts; entries die with their graph.
_CONTEXT_CACHE: "weakref.WeakKeyDictionary[HeteroGraph, GraphContext]" = weakref.WeakKeyDictionary()

#: Guards the memo: the serving router's executor workers bind blocks (and
#: therefore call :meth:`GraphContext.cached`) from multiple threads, and a
#: WeakKeyDictionary mutating during a concurrent lookup is not safe.
_CONTEXT_CACHE_LOCK = threading.Lock()


@dataclass
class GraphContext:
    """Precomputed index arrays for one heterogeneous graph."""

    num_nodes: int
    num_edges: int
    num_etypes: int
    num_ntypes: int
    num_unique: int
    edge_src: np.ndarray
    edge_dst: np.ndarray
    edge_type: np.ndarray
    etype_perm: np.ndarray
    etype_ptr: np.ndarray
    node_type_ids: np.ndarray
    ntype_ptr: np.ndarray
    unique_src: np.ndarray
    unique_etype: np.ndarray
    unique_etype_ptr: np.ndarray
    edge_to_unique: np.ndarray
    etype_to_src_ntype: np.ndarray
    etype_to_dst_ntype: np.ndarray

    @classmethod
    def from_graph(cls, graph: HeteroGraph) -> "GraphContext":
        """Run the preprocessing the generated code requires on a graph."""
        segments = graph.edge_segments
        compaction = graph.compaction
        etype_to_src = np.zeros(graph.num_edge_types, dtype=np.int64)
        etype_to_dst = np.zeros(graph.num_edge_types, dtype=np.int64)
        for etype, index in ((etype, graph.edge_type_id(etype)) for etype in graph.canonical_etypes):
            src_type, _, dst_type = etype
            etype_to_src[index] = graph.node_type_id(src_type)
            etype_to_dst[index] = graph.node_type_id(dst_type)
        return cls(
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            num_etypes=graph.num_edge_types,
            num_ntypes=graph.num_node_types,
            num_unique=compaction.num_unique,
            edge_src=graph.edge_src,
            edge_dst=graph.edge_dst,
            edge_type=graph.edge_type,
            etype_perm=segments.permutation,
            etype_ptr=segments.offsets,
            node_type_ids=graph.node_type_ids,
            ntype_ptr=graph.node_type_offsets,
            unique_src=compaction.unique_src,
            unique_etype=compaction.unique_etype,
            unique_etype_ptr=compaction.unique_etype_ptr,
            edge_to_unique=compaction.edge_to_unique,
            etype_to_src_ntype=etype_to_src,
            etype_to_dst_ntype=etype_to_dst,
        )

    @classmethod
    def cached(cls, graph: HeteroGraph) -> "GraphContext":
        """Memoised :meth:`from_graph`: one preprocessing per graph object.

        Compiled modules bound to the same graph share the index arrays (they
        are read-only at runtime), so repeated ``compile_model`` calls skip
        the segment/compaction preprocessing entirely.
        """
        with _CONTEXT_CACHE_LOCK:
            ctx = _CONTEXT_CACHE.get(graph)
        if ctx is None:
            # Preprocessing runs outside the lock (it can be expensive); a
            # concurrent duplicate for the same graph is benign — last write
            # wins and both contexts are equivalent read-only views.
            ctx = cls.from_graph(graph)
            with _CONTEXT_CACHE_LOCK:
                ctx = _CONTEXT_CACHE.setdefault(graph, ctx)
        return ctx

    def degree_normalization(self) -> np.ndarray:
        """Per-edge ``1 / c_{v,r}`` factors (RGCN normalisation).

        Pure graph structure, so it is computed once per context and the
        (read-only) array is shared across every forward call — the
        ``np.unique``/argsort pass it needs is comparable in cost to a whole
        small-graph forward and used to dominate serve-loop profiles.
        """
        cached = getattr(self, "_degree_norm", None)
        if cached is None:
            keys = self.edge_dst * self.num_etypes + self.edge_type
            _, inverse, counts = np.unique(keys, return_inverse=True, return_counts=True)
            cached = 1.0 / counts[inverse].astype(np.float64)
            cached.flags.writeable = False
            self._degree_norm = cached
        return cached

    def index_array_bytes(self) -> int:
        """Device memory occupied by the index arrays (for the memory model)."""
        arrays = [
            self.edge_src,
            self.edge_dst,
            self.edge_type,
            self.etype_perm,
            self.etype_ptr,
            self.node_type_ids,
            self.ntype_ptr,
            self.unique_src,
            self.unique_etype,
            self.unique_etype_ptr,
            self.edge_to_unique,
        ]
        return int(sum(a.nbytes for a in arrays))
