"""Executes generated kernel plans on numpy buffers."""

from __future__ import annotations

import time
from typing import Dict, Mapping, Optional, Union

import numpy as np

from repro.ir.codegen.python_backend import GeneratedModule
from repro.ir.intra_op.plan import KernelPlan
from repro.runtime.context import GraphContext
from repro.runtime.planner import ArenaLease, BufferArena


class PlanExecutor:
    """Runs the generated forward and backward kernels of a plan.

    The executor owns no state beyond the plan, its generated functions, and
    an optional arena (a private :class:`~repro.runtime.planner.BufferArena`
    or a pooled :class:`~repro.runtime.planner.ArenaLease` — anything with a
    ``bind(env)`` method); callers pass the buffer environment explicitly,
    which makes it easy for tests to inspect every intermediate value.  When
    an arena is attached, intermediate buffers are bound from its
    preallocated slots before each run instead of being freshly allocated by
    the generated kernels.
    """

    def __init__(
        self,
        plan: KernelPlan,
        generated: GeneratedModule,
        arena: Optional[Union[BufferArena, ArenaLease]] = None,
    ):
        self.plan = plan
        self.generated = generated
        self.arena = arena

    # ------------------------------------------------------------------
    def run_forward(self, env: Dict[str, np.ndarray], ctx: GraphContext) -> Dict[str, np.ndarray]:
        """Execute all forward kernels in order; returns the same ``env``.

        Args:
            env: buffer environment pre-populated with the plan's inputs and
                parameters (names from ``plan.input_names`` / ``plan.parameter_names``).
            ctx: graph context with the index arrays the access schemes read.
        """
        self._check_inputs(env)
        if self.arena is not None:
            self.arena.bind(env)
        program = self.generated.forward_program
        if program is not None:
            program(env, ctx)
        else:
            for kernel in self.plan.forward_kernels:
                self.generated.forward_functions[kernel.name](env, ctx)
        return env

    def run_backward(
        self,
        env: Dict[str, np.ndarray],
        ctx: GraphContext,
        output_grads: Mapping[str, np.ndarray],
    ) -> Dict[str, np.ndarray]:
        """Execute all backward kernels; returns ``env`` with ``grad_*`` buffers.

        Args:
            env: the environment returned by :meth:`run_forward` (backward
                kernels read forward intermediates).
            ctx: graph context.
            output_grads: gradient of the objective w.r.t. each plan output.
        """
        # Seed gradients: outputs from the caller, every other forward-written
        # buffer with zeros so adjoint kernels can accumulate unconditionally.
        # Seeds take the dtype of the forward buffer they pair with, so
        # float32 environments do not silently upcast their gradients.
        # Self-seeding backends (``python-codegen``) allocate the zero seeds
        # they actually read inside the generated backward instead, so the
        # eager per-kernel loop is skipped.
        for name, grad in output_grads.items():
            if name not in env:
                raise KeyError(f"output {name!r} not present in the forward environment")
            env[f"grad_{name}"] = np.array(grad, dtype=env[name].dtype, copy=True)
        if not getattr(self.generated, "seeds_gradients", False):
            for kernel in self.plan.forward_kernels:
                for name in kernel.written_buffers():
                    grad_name = f"grad_{name}"
                    if grad_name not in env and name in env:
                        env[grad_name] = np.zeros_like(env[name])
        program = self.generated.backward_program
        if program is not None:
            program(env, ctx)
        else:
            for kernel in self.plan.backward_kernels:
                self.generated.backward_functions[kernel.name](env, ctx)
        return env

    # ------------------------------------------------------------------
    def timed_run(
        self,
        env: Dict[str, np.ndarray],
        ctx: GraphContext,
        output_grads: Optional[Mapping[str, np.ndarray]] = None,
        repeats: int = 3,
    ) -> float:
        """Best wall-clock seconds of one forward (and optional backward) pass.

        Used by the autotuner's measured-validation stage: the cost model
        ranks the whole design space, and the top candidates are confirmed by
        actually running the generated Python kernels.  The minimum over
        ``repeats`` runs filters interpreter noise.  Gradient buffers are
        cleared between repeats so backward timing measures a fresh pass, not
        accumulation into warm buffers.
        """
        best = float("inf")
        for _ in range(max(1, repeats)):
            if output_grads is not None:
                for name in [key for key in env if key.startswith("grad_")]:
                    del env[name]
            start = time.perf_counter()
            self.run_forward(env, ctx)
            if output_grads is not None:
                self.run_backward(env, ctx, output_grads)
            best = min(best, time.perf_counter() - start)
        return best

    def parameter_gradients(self, env: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Extract per-parameter gradients from an environment after backward."""
        grads: Dict[str, np.ndarray] = {}
        for name in self.plan.parameter_names:
            grad = env.get(f"grad_{name}")
            if grad is not None:
                grads[name] = grad
        return grads

    def _check_inputs(self, env: Mapping[str, np.ndarray]) -> None:
        missing = [name for name in self.plan.input_names + self.plan.parameter_names if name not in env]
        if missing:
            raise KeyError(f"forward environment is missing buffers: {missing}")
