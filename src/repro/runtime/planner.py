"""Buffer-lifetime analysis and arena memory planning for kernel plans.

The seed executor allocated every intermediate buffer afresh on each
forward/backward invocation — correct, but the allocator churn dominates the
compile-once-run-many serving pattern the paper targets.  This module closes
that gap in two steps:

1. :class:`MemoryPlanner` scans a :class:`~repro.ir.intra_op.plan.KernelPlan`
   in execution order and derives a *lifetime interval* (first write → last
   use) for every intermediate buffer, then packs the intervals into arena
   *slots* with a greedy linear-scan: two buffers share a slot exactly when
   their lifetimes are disjoint, so the slot's size is the maximum — not the
   sum — of its occupants.  Training plans keep every forward intermediate
   alive through the backward pass (the adjoint kernels re-read them), so
   slot sharing only kicks in for inference plans; the cross-invocation reuse
   below applies to both.

2. :class:`BufferArena` materialises the slots as preallocated numpy arrays
   for one concrete graph.  ``bind`` installs slot-backed views into the
   executor's buffer environment before each run, so generated kernels write
   into memory that persists across invocations instead of triggering fresh
   allocations every call.

3. :class:`ArenaPool` extends the reuse across *graph bindings*: serving
   workloads execute one compiled plan against many sampled minibatch blocks
   whose node/edge counts differ per request.  Instead of allocating a fresh
   arena per block, the pool buckets the runtime dimensions into power-of-two
   size classes (:func:`dim_bucket`) and hands every binding in a bucket the
   same slab-backed arena, re-viewed (:meth:`BufferArena.ensure_shapes`) to
   the binding's concrete shapes.  Live arenas are LRU-bounded so a long tail
   of rare block sizes cannot accumulate slabs without bound.

4. :class:`SharedArenaBudget` multiplexes arenas across *tenants* (serving
   endpoints hosting different compiled modules and parent graphs) under one
   global byte cap.  Arenas are keyed per (tenant, bucket) — two tenants never
   share slabs, their plans differ — but they all draw from one budget:
   exceeding the cap evicts the least-recently-*used* arena across all
   tenants, with per-tenant hit/miss/eviction counters and high-water byte
   stats so a noisy neighbour is visible in telemetry.  This is the memory
   backbone of the multi-tenant serving router (:mod:`repro.serving.router`).

The planner also runs in a purely analytic mode against a
:class:`~repro.evaluation.workload.WorkloadSpec` (no arrays allocated), which
is how the Figure 10 memory study reports the footprint the arena schedule
achieves relative to naive whole-pass materialisation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.ir.intra_op.kernels import GemmKernel, TraversalKernel
from repro.ir.intra_op.plan import KernelPlan
from repro.runtime.memory import MemoryModel


#: Retention bound of :attr:`SharedArenaBudget.eviction_log` entries.
EVICTION_LOG_LIMIT = 1024


def dim_bucket(count: int) -> int:
    """Power-of-two bucket of a runtime dimension (node/edge/pair count).

    Arena slabs sized for the bucket fit every graph binding whose dimension
    falls at or below it, so differently-sized sampled blocks share pooled
    arenas (and, upstream, replay the same compiled plan — exact counts never
    enter the compilation-cache key; see :mod:`repro.frontend.cache`).
    """
    count = int(count)
    if count <= 0:
        return 0
    return 1 << (count - 1).bit_length()


@dataclass
class BufferLifetime:
    """Lifetime of one intermediate buffer over the plan's kernel schedule.

    Attributes:
        name: buffer name (a key of ``plan.buffers``).
        start: index (into forward+backward kernel order) of the first write.
        end: index of the last read or write.
    """

    name: str
    start: int
    end: int

    def overlaps(self, other: "BufferLifetime") -> bool:
        """Whether two lifetimes are simultaneously live at some point."""
        return self.start <= other.end and other.start <= self.end


@dataclass
class MemoryPlan:
    """The arena allocation schedule the planner produced for one plan.

    Attributes:
        plan_name: name of the kernel plan this schedule belongs to.
        lifetimes: per-buffer lifetime intervals, in ``start`` order.
        slot_of: buffer name → arena slot index.
        slot_elements: per-slot capacity in scalar elements (max over occupants).
        element_counts: per-buffer element counts used for the packing.
    """

    plan_name: str
    lifetimes: List[BufferLifetime] = field(default_factory=list)
    slot_of: Dict[str, int] = field(default_factory=dict)
    slot_elements: List[int] = field(default_factory=list)
    element_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def num_slots(self) -> int:
        return len(self.slot_elements)

    @property
    def num_buffers(self) -> int:
        return len(self.slot_of)

    def arena_elements(self) -> int:
        """Total arena capacity in scalar elements."""
        return int(sum(self.slot_elements))

    def naive_elements(self) -> int:
        """Elements a fresh-allocation-per-buffer strategy materialises."""
        return int(sum(self.element_counts.values()))

    def sharing_fraction(self) -> float:
        """Arena size as a fraction of naive materialisation (≤ 1)."""
        naive = self.naive_elements()
        return self.arena_elements() / naive if naive else 1.0


class MemoryPlanner:
    """Derives lifetimes and arena schedules from a kernel plan."""

    def __init__(self, plan: KernelPlan):
        self.plan = plan

    # ------------------------------------------------------------------
    # lifetime analysis
    # ------------------------------------------------------------------
    def intermediate_names(self) -> List[str]:
        """Buffers the executor owns: neither inputs, parameters, nor outputs."""
        excluded = set(self.plan.input_names) | set(self.plan.parameter_names) | set(self.plan.output_names)
        return [name for name in self.plan.buffers if name not in excluded]

    def inplace_written_names(self) -> Set[str]:
        """Intermediates the generated kernels write *in place* (via ``_ensure``).

        Only these benefit from preallocated arena buffers at runtime: GEMM
        outputs and scatter-add accumulators.  Elementwise micro-ops rebind
        their ``env`` entry to a fresh expression result, so binding arena
        views for them would be dead weight.  The analytic planning mode
        (:meth:`plan_memory` without a filter) still covers every
        intermediate — it models a backend that writes all outputs in place,
        as the CUDA backend does.
        """
        names: Set[str] = set()
        for kernel in self.plan.forward_kernels:
            if isinstance(kernel, GemmKernel):
                names.add(kernel.y.buffer)
            elif isinstance(kernel, TraversalKernel):
                for op in kernel.micro_ops:
                    if op.kind == "scatter_add":
                        names.add(op.output)
        return names & set(self.intermediate_names())

    def lifetimes(self, training: Optional[bool] = None) -> List[BufferLifetime]:
        """Lifetime intervals of every intermediate buffer, in start order.

        Args:
            training: whether the backward pass will run.  Defaults to "the
                plan has backward kernels".  Under training every forward
                intermediate is pinned until the last backward kernel — the
                adjoint kernels re-read forward values, so nothing may be
                overwritten early.
        """
        if training is None:
            training = bool(self.plan.backward_kernels)
        schedule = list(self.plan.forward_kernels)
        if training:
            schedule += list(self.plan.backward_kernels)
        first_write: Dict[str, int] = {}
        last_use: Dict[str, int] = {}
        for index, kernel in enumerate(schedule):
            for name in kernel.written_buffers():
                first_write.setdefault(name, index)
                last_use[name] = index
            for name in kernel.read_buffers():
                if name in first_write:
                    last_use[name] = index
        horizon = len(schedule) - 1
        intervals: List[BufferLifetime] = []
        for name in self.intermediate_names():
            if name not in first_write:
                continue  # never materialised by this schedule (e.g. fused away)
            end = horizon if training else last_use[name]
            intervals.append(BufferLifetime(name=name, start=first_write[name], end=end))
        intervals.sort(key=lambda interval: (interval.start, interval.name))
        return intervals

    # ------------------------------------------------------------------
    # slot packing
    # ------------------------------------------------------------------
    def _element_count(self, name: str, sizes) -> int:
        info = self.plan.buffers[name]
        return int(info.rows(sizes)) * info.elements_per_row()

    def plan_memory(
        self,
        sizes,
        training: Optional[bool] = None,
        only: Optional[Iterable[str]] = None,
    ) -> MemoryPlan:
        """Pack intermediate lifetimes into arena slots for given sizes.

        Args:
            sizes: any object exposing ``num_nodes`` / ``num_edges`` /
                ``num_unique_pairs`` / ``num_edge_types`` / ``num_node_types``
                (a :class:`~repro.evaluation.workload.WorkloadSpec`, or the
                adapter built from a :class:`~repro.runtime.context.GraphContext`).
            training: see :meth:`lifetimes`.
            only: restrict the packing to these buffer names (the runtime
                arena passes :meth:`inplace_written_names`); ``None`` packs
                every intermediate (analytic mode).
        """
        intervals = self.lifetimes(training)
        if only is not None:
            allowed = set(only)
            intervals = [interval for interval in intervals if interval.name in allowed]
        element_counts = {interval.name: self._element_count(interval.name, sizes) for interval in intervals}
        slot_elements: List[int] = []
        slot_free_after: List[int] = []
        slot_of: Dict[str, int] = {}
        # Greedy linear scan over intervals sorted by start: reuse the first
        # slot whose previous occupant died before this buffer is born.
        for interval in intervals:
            chosen = None
            for slot, free_after in enumerate(slot_free_after):
                if free_after < interval.start:
                    chosen = slot
                    break
            if chosen is None:
                chosen = len(slot_elements)
                slot_elements.append(0)
                slot_free_after.append(-1)
            slot_of[interval.name] = chosen
            slot_elements[chosen] = max(slot_elements[chosen], element_counts[interval.name])
            slot_free_after[chosen] = max(slot_free_after[chosen], interval.end)
        return MemoryPlan(
            plan_name=self.plan.name,
            lifetimes=intervals,
            slot_of=slot_of,
            slot_elements=slot_elements,
            element_counts=element_counts,
        )

    # ------------------------------------------------------------------
    # analytic footprint (memory study)
    # ------------------------------------------------------------------
    def planned_footprint_bytes(self, workload, training: bool = False) -> float:
        """Peak footprint under the arena schedule, comparable to
        :meth:`KernelPlan.memory_bytes`.

        Inputs, parameters, outputs, gradients, and graph index arrays are
        charged exactly as in the naive model; only the intermediate buffers
        are replaced by the packed arena slots.
        """
        plan = self.plan
        memory_plan = self.plan_memory(workload, training=training)
        arena_ids = set(memory_plan.slot_of)
        total = 0.0
        dtype_bytes = 4
        for name, info in plan.buffers.items():
            if name in plan.fused_values or name in arena_ids:
                continue
            total += info.num_bytes(workload)
        for slot_capacity in memory_plan.slot_elements:
            total += slot_capacity * dtype_bytes
        if training:
            # One gradient buffer per materialised value, as in the naive model.
            for info in plan.materialized_buffers():
                total += info.num_bytes(workload)
        total += 3 * workload.num_edges * 8
        if plan.metadata.get("compaction_enabled"):
            total += workload.num_edges * 8 + workload.num_unique_pairs * 16
        return total

    def naive_peak_bytes(self, workload, training: bool = False) -> float:
        """Peak of alloc-at-first-write / free-after-last-read execution.

        Simulated through :class:`~repro.runtime.memory.MemoryModel`, so the
        planner's savings are measured against the best a non-arena allocator
        could do, not just against whole-pass materialisation.
        """
        intervals = self.lifetimes(training=training)
        model = MemoryModel(capacity_bytes=float("inf"))
        persistent = 0.0
        arena_ids = {interval.name for interval in intervals}
        for name, info in self.plan.buffers.items():
            if name in self.plan.fused_values or name in arena_ids:
                continue
            persistent += info.num_bytes(workload)
        model.allocate("persistent", persistent)
        events: List[Tuple[int, int, BufferLifetime]] = []
        for interval in intervals:
            events.append((interval.start, 1, interval))
            events.append((interval.end + 1, 0, interval))
        for _, kind, interval in sorted(events, key=lambda e: (e[0], e[1])):
            if kind == 0:
                model.free(interval.name)
            else:
                model.allocate(interval.name, self.plan.buffers[interval.name].num_bytes(workload))
        return model.peak_allocated()

    # ------------------------------------------------------------------
    # runtime arena
    # ------------------------------------------------------------------
    def build_arena(
        self,
        ctx,
        dtype=np.float64,
        training: Optional[bool] = None,
        capacity_sizes=None,
    ) -> "BufferArena":
        """Materialise the arena for one concrete graph context.

        Only buffers the Python backend writes in place are bound (see
        :meth:`inplace_written_names`); binding views for elementwise results
        that get rebound anyway would claim savings that never materialise.

        Args:
            ctx: the graph context the arena's initial views are shaped for.
            dtype: element dtype of the slabs.
            training: see :meth:`lifetimes`.
            capacity_sizes: optional sizes object the slot *capacities* are
                computed from (the :class:`ArenaPool` passes the power-of-two
                bucket of ``ctx``); defaults to ``ctx``'s exact sizes.  Must
                dominate the concrete sizes dimension for dimension.
        """
        sizes = _ContextSizes.from_context(ctx)
        memory_plan = self.plan_memory(
            capacity_sizes if capacity_sizes is not None else sizes,
            training=training,
            only=self.inplace_written_names(),
        )
        shapes = self.shapes_for(sizes, memory_plan.slot_of)
        return BufferArena(memory_plan, shapes, dtype=dtype)

    def shapes_for(self, sizes, names: Iterable[str]) -> Dict[str, Tuple[int, ...]]:
        """Concrete per-buffer array shapes under ``sizes`` for ``names``."""
        shapes: Dict[str, Tuple[int, ...]] = {}
        for name in names:
            info = self.plan.buffers[name]
            shapes[name] = (int(info.rows(sizes)),) + tuple(int(d) for d in info.feature_shape)
        return shapes


@dataclass
class _ContextSizes:
    """Adapter presenting a :class:`GraphContext` through the workload-sizes API."""

    num_nodes: int
    num_edges: int
    num_unique_pairs: int
    num_edge_types: int
    num_node_types: int

    @classmethod
    def from_context(cls, ctx) -> "_ContextSizes":
        return cls(
            num_nodes=int(ctx.num_nodes),
            num_edges=int(ctx.num_edges),
            num_unique_pairs=int(ctx.num_unique),
            num_edge_types=int(ctx.num_etypes),
            num_node_types=int(ctx.num_ntypes),
        )

    def bucketed(self) -> "_ContextSizes":
        """Round the runtime dimensions up to their power-of-two buckets.

        Type-vocabulary sizes stay exact — they are fixed by the schema the
        plan is specialised for, so bucketing them would only waste slabs.
        """
        return replace(
            self,
            num_nodes=dim_bucket(self.num_nodes),
            num_edges=dim_bucket(self.num_edges),
            num_unique_pairs=dim_bucket(self.num_unique_pairs),
        )

    def bucket_key(self) -> Tuple[int, int, int]:
        """Hashable pool key of the bucketed runtime dimensions."""
        bucketed = self.bucketed()
        return (bucketed.num_nodes, bucketed.num_edges, bucketed.num_unique_pairs)


class BufferArena:
    """Preallocated slot-backed buffers reused across executor invocations.

    Args:
        memory_plan: the slot schedule produced by :class:`MemoryPlanner`.
        shapes: concrete per-buffer shapes for the bound graph.
        dtype: element dtype of every arena buffer (the runtime default is
            float64, matching the generated numpy kernels).
    """

    def __init__(self, memory_plan: MemoryPlan, shapes: Dict[str, Tuple[int, ...]], dtype=np.float64):
        self.memory_plan = memory_plan
        self.dtype = np.dtype(dtype)
        self._slabs: List[np.ndarray] = [
            np.zeros(int(capacity), dtype=self.dtype) for capacity in memory_plan.slot_elements
        ]
        self._views: Dict[str, np.ndarray] = {}
        self._current_shapes: Dict[str, Tuple[int, ...]] = {}
        self.bind_count = 0
        self.ensure_shapes(shapes)

    # ------------------------------------------------------------------
    def lease(self) -> "ArenaLease":
        """A lease on this arena at its current shapes (private-arena case)."""
        return ArenaLease(self, self._current_shapes)

    def ensure_shapes(self, shapes: Dict[str, Tuple[int, ...]]) -> None:
        """Re-view the slabs for a (possibly different) concrete graph binding.

        Slabs are never reallocated — pooled arenas are sized for the bucket
        ceiling, and the pool keys leases by bucket, so every binding routed
        here fits by construction.  A shape exceeding a slab's capacity
        raises ``ValueError``: it means a caller bypassed the bucket-key
        invariant, not a recoverable condition.
        """
        if shapes == self._current_shapes:
            return
        views: Dict[str, np.ndarray] = {}
        for name, slot in self.memory_plan.slot_of.items():
            shape = shapes[name]
            elements = int(np.prod(shape, dtype=np.int64)) if shape else 1
            if elements > self._slabs[slot].size:
                raise ValueError(
                    f"buffer {name!r} needs {elements} elements but arena slot {slot} "
                    f"holds {self._slabs[slot].size}; this binding belongs to a larger bucket"
                )
            views[name] = self._slabs[slot][:elements].reshape(shape)
        self._views = views
        self._current_shapes = dict(shapes)

    # ------------------------------------------------------------------
    def bind(self, env: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Install the arena-backed views into an executor environment.

        Caller-provided entries (inputs, parameters, anything already present)
        are never overwritten.  The generated ``_ensure`` helper zero-fills
        reused buffers, so bound views behave exactly like fresh allocations.
        """
        for name, view in self._views.items():
            if name not in env:
                env[name] = view
        self.bind_count += 1
        return env

    def buffer(self, name: str) -> np.ndarray:
        """The arena-backed array of one planned buffer."""
        return self._views[name]

    @property
    def managed_names(self) -> List[str]:
        return list(self._views)

    def arena_bytes(self) -> int:
        """Bytes held by the arena slabs."""
        return int(sum(slab.nbytes for slab in self._slabs))

    def naive_bytes_per_invocation(self) -> int:
        """Bytes a fresh-allocation execution would allocate per invocation."""
        return int(self.memory_plan.naive_elements() * self.dtype.itemsize)

    def bytes_saved(self) -> int:
        """Cumulative allocation traffic avoided across all binds so far."""
        return max(0, self.bind_count - 1) * self.naive_bytes_per_invocation()


class ArenaLease:
    """One graph binding's handle on a (possibly shared, pooled) arena.

    Several bindings in the same size bucket share one :class:`BufferArena`'s
    slabs; each binding holds a lease carrying its *own* concrete shapes.  The
    lease re-views the slabs for those shapes immediately before installing
    them into an executor environment, so sequentially executed bindings can
    alternate over one arena safely.  (Interleaving a *different* binding's
    forward between one binding's forward and backward on a shared arena
    would corrupt the forward intermediates backward re-reads;
    ``GraphBinding.backward`` detects this via the arena's bind generation
    and raises.  The serving engine executes batches to completion, so this
    never arises there.)

    Leases handed out by a :class:`SharedArenaBudget` carry an ``on_bind``
    hook: every bind marks the arena as recently *used* in the budget's LRU
    order, so eviction tracks actual execution recency, not lease creation.
    """

    def __init__(self, arena: "BufferArena", shapes: Dict[str, Tuple[int, ...]], on_bind=None):
        self.arena = arena
        self.shapes = dict(shapes)
        self.on_bind = on_bind

    def touch(self) -> None:
        """Mark the leased arena as used (budget LRU recency); no-op otherwise."""
        if self.on_bind is not None:
            self.on_bind()

    def bind(self, env: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Install this binding's arena views into an executor environment."""
        self.touch()
        self.arena.ensure_shapes(self.shapes)
        return self.arena.bind(env)


@dataclass
class ArenaPoolStats:
    """Reuse counters of one :class:`ArenaPool`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ArenaPool:
    """Bucketed, LRU-bounded arenas shared across a module's graph bindings.

    Bindings whose runtime dimensions fall in the same power-of-two bucket
    (:func:`dim_bucket` over nodes / edges / unique pairs) lease one pooled
    arena instead of allocating a fresh one, which is the allocation analogue
    of the compilation cache: a stream of differently-sized sampled blocks
    settles onto a handful of arenas after warmup.  At most ``max_arenas``
    stay live; the least-recently-used bucket is dropped beyond that.

    Pools are per-module (created in ``CompiledRGNNModule``), never shared
    between modules — two modules sharing a cached plan must not share
    buffers.
    """

    def __init__(self, max_arenas: int = 4):
        if max_arenas < 1:
            raise ValueError("an arena pool needs room for at least one arena")
        self.max_arenas = max_arenas
        self._arenas: "OrderedDict[tuple, BufferArena]" = OrderedDict()
        self.stats = ArenaPoolStats()

    def lease(
        self,
        planner: MemoryPlanner,
        ctx,
        dtype=np.float64,
        training: Optional[bool] = None,
    ) -> ArenaLease:
        """Lease the pooled arena of ``ctx``'s size bucket, building it on a miss."""
        sizes = _ContextSizes.from_context(ctx)
        key = (sizes.bucket_key(), np.dtype(dtype).str, bool(
            training if training is not None else planner.plan.backward_kernels
        ))
        arena = self._arenas.get(key)
        if arena is not None:
            self.stats.hits += 1
            self._arenas.move_to_end(key)
        else:
            self.stats.misses += 1
            arena = planner.build_arena(
                ctx, dtype=dtype, training=training, capacity_sizes=sizes.bucketed()
            )
            self._arenas[key] = arena
            while len(self._arenas) > self.max_arenas:
                self._arenas.popitem(last=False)
                self.stats.evictions += 1
        shapes = planner.shapes_for(sizes, arena.memory_plan.slot_of)
        return ArenaLease(arena, shapes)

    # ------------------------------------------------------------------
    @property
    def live_arenas(self) -> int:
        return len(self._arenas)

    def pooled_bytes(self) -> int:
        """Bytes held by every live arena's slabs."""
        return int(sum(arena.arena_bytes() for arena in self._arenas.values()))

    def clear(self) -> None:
        self._arenas.clear()
        self.stats = ArenaPoolStats()


@dataclass
class TenantArenaStats:
    """Per-tenant reuse and footprint counters of a :class:`SharedArenaBudget`.

    ``evictions`` counts *this tenant's* arenas dropped by the budget —
    whether the pressure came from the tenant itself or from a neighbour, so
    a tenant squeezed out by a noisy co-tenant shows it in its own row.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    live_bytes: int = 0
    high_water_bytes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class TenantArenaSource:
    """One tenant's view of a :class:`SharedArenaBudget`.

    Exposes the same ``lease(planner, ctx, ...)`` surface as
    :class:`ArenaPool`, so ``CompiledRGNNModule.bind(graph, arena_source=...)``
    can draw from a shared budget instead of the module's private pool.
    """

    def __init__(self, budget: "SharedArenaBudget", tenant: str):
        self.budget = budget
        self.tenant = tenant

    @property
    def stats(self) -> TenantArenaStats:
        return self.budget.tenant_stats(self.tenant)

    # Counter proxies, so a source quacks like ``ArenaPoolStats`` for
    # telemetry consumers (``EngineStats.report`` accepts either).
    @property
    def hits(self) -> int:
        return self.stats.hits

    @property
    def misses(self) -> int:
        return self.stats.misses

    @property
    def evictions(self) -> int:
        return self.stats.evictions

    @property
    def hit_rate(self) -> float:
        return self.stats.hit_rate

    def lease(
        self,
        planner: MemoryPlanner,
        ctx,
        dtype=np.float64,
        training: Optional[bool] = None,
    ) -> ArenaLease:
        return self.budget.lease(self.tenant, planner, ctx, dtype=dtype, training=training)


class SharedArenaBudget:
    """Cross-tenant arena pool under one global (and optional per-tenant) byte cap.

    The multi-tenant serving router owns one budget; every endpoint leases its
    arenas through a :class:`TenantArenaSource` view.  Keys include the tenant
    name — tenants never share slabs (their kernel plans differ, and sharing
    would let one tenant read another's intermediates) — but all arenas count
    against ``capacity_bytes``.  When an insert pushes the total over the cap,
    the least-recently-used arena across *all* tenants is evicted (the arena
    just built is exempt, so a single oversized arena still gets to exist).
    A tenant registered with its own ``capacity_bytes`` is additionally capped
    in isolation, evicting only its own LRU arenas.

    Eviction drops the budget's reference; slabs stay alive while outstanding
    leases reference them and are reclaimed by the allocator afterwards.  The
    accounted ``live_bytes`` therefore tracks pool-held slabs, which is the
    quantity the cap governs.

    Args:
        capacity_bytes: global cap on pool-held slab bytes; ``None`` = unbounded.
        max_arenas: global cap on the *number* of live arenas (the analogue of
            :class:`ArenaPool`'s LRU bound, so a long tail of rare block-size
            buckets cannot accumulate slabs even under a generous byte cap);
            ``None`` = unbounded.
    """

    def __init__(self, capacity_bytes: Optional[int] = None, max_arenas: Optional[int] = None):
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive (or None for unbounded)")
        if max_arenas is not None and max_arenas < 1:
            raise ValueError("max_arenas must be >= 1 (or None for unbounded)")
        self.capacity_bytes = capacity_bytes
        self.max_arenas = max_arenas
        self._arenas: "OrderedDict[tuple, BufferArena]" = OrderedDict()
        self._tenants: Dict[str, TenantArenaStats] = {}
        self._tenant_caps: Dict[str, Optional[int]] = {}
        #: Serialises lease/evict/report against concurrent executor workers:
        #: the router's thread-pool stage leases arenas for different tenants
        #: concurrently, and LRU reordering + cap enforcement + the per-tenant
        #: byte accounting must stay consistent under that interleaving.
        #: Reentrant because ``lease`` calls ``_enforce_caps``/``_evict`` and
        #: ``report`` reads ``live_bytes`` while holding it.
        self._lock = threading.RLock()
        self.high_water_bytes = 0
        #: Eviction order, oldest first: ``(tenant, bucket_key)`` tuples — the
        #: tests and the router report read this to explain *what* was dropped.
        #: Bounded to the most recent :data:`EVICTION_LOG_LIMIT` entries so a
        #: long-lived budget under churn cannot grow it without limit (the
        #: per-tenant eviction *counters* are the unbounded-horizon record).
        self.eviction_log: List[Tuple[str, tuple]] = []

    # ------------------------------------------------------------------
    # tenants
    # ------------------------------------------------------------------
    def tenant(self, name: str, capacity_bytes: Optional[int] = None) -> TenantArenaSource:
        """Register (or fetch) a tenant and return its lease source.

        Args:
            name: tenant (endpoint) name; stats are keyed by it.
            capacity_bytes: optional per-tenant cap on this tenant's
                pool-held bytes, enforced in addition to the global cap.
        """
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError(f"tenant {name!r}: capacity_bytes must be positive (or None)")
        with self._lock:
            if name not in self._tenants:
                self._tenants[name] = TenantArenaStats()
                self._tenant_caps[name] = capacity_bytes
            elif capacity_bytes is not None:
                self._tenant_caps[name] = capacity_bytes
        return TenantArenaSource(self, name)

    def tenant_stats(self, name: str) -> TenantArenaStats:
        if name not in self._tenants:
            raise KeyError(f"unknown tenant {name!r}; register it via budget.tenant(name)")
        return self._tenants[name]

    def has_tenant(self, name: str) -> bool:
        return name in self._tenants

    def drop_tenant(self, name: str) -> None:
        """Remove a tenant entirely: its arenas, stats, and cap.

        Used by the router to roll back a half-finished registration, and by
        callers decommissioning an endpoint.  Unknown names are a no-op.
        """
        with self._lock:
            for key in [k for k in self._arenas if k[0] == name]:
                del self._arenas[key]
            self._tenants.pop(name, None)
            self._tenant_caps.pop(name, None)

    # ------------------------------------------------------------------
    # leasing
    # ------------------------------------------------------------------
    def lease(
        self,
        tenant: str,
        planner: MemoryPlanner,
        ctx,
        dtype=np.float64,
        training: Optional[bool] = None,
    ) -> ArenaLease:
        """Lease the tenant's pooled arena for ``ctx``'s size bucket.

        A miss builds the arena (sized for the bucket ceiling, exactly like
        :class:`ArenaPool`) and then enforces the per-tenant and global caps.
        """
        sizes = _ContextSizes.from_context(ctx)
        if training is None:
            training = bool(planner.plan.backward_kernels)
        key = (tenant, sizes.bucket_key(), np.dtype(dtype).str, bool(training))
        with self._lock:
            stats = self.tenant_stats(tenant)
            arena = self._arenas.get(key)
            if arena is not None:
                stats.hits += 1
                self._arenas.move_to_end(key)
            else:
                stats.misses += 1
                arena = planner.build_arena(
                    ctx, dtype=dtype, training=training, capacity_sizes=sizes.bucketed()
                )
                self._arenas[key] = arena
                stats.live_bytes += arena.arena_bytes()
                stats.high_water_bytes = max(stats.high_water_bytes, stats.live_bytes)
                self.high_water_bytes = max(self.high_water_bytes, self.live_bytes)
                self._enforce_caps(protect=key)
            shapes = planner.shapes_for(sizes, arena.memory_plan.slot_of)
        return ArenaLease(arena, shapes, on_bind=lambda: self._touch(key))

    def _touch(self, key: tuple) -> None:
        """Refresh a key's LRU recency at *use* time (lease binds an env)."""
        with self._lock:
            if key in self._arenas:
                self._arenas.move_to_end(key)

    def _evict(self, key: tuple) -> None:
        arena = self._arenas.pop(key)
        owner = key[0]
        stats = self._tenants[owner]
        stats.evictions += 1
        stats.live_bytes -= arena.arena_bytes()
        self.eviction_log.append((owner, key[1]))
        if len(self.eviction_log) > EVICTION_LOG_LIMIT:
            del self.eviction_log[:-EVICTION_LOG_LIMIT]

    def _enforce_caps(self, protect: tuple) -> None:
        """Evict LRU arenas until every cap holds; ``protect`` is never evicted."""
        tenant = protect[0]
        cap = self._tenant_caps.get(tenant)
        if cap is not None:
            while self._tenants[tenant].live_bytes > cap:
                victim = next(
                    (k for k in self._arenas if k[0] == tenant and k != protect), None
                )
                if victim is None:
                    break
                self._evict(victim)
        if self.capacity_bytes is not None:
            while self.live_bytes > self.capacity_bytes:
                victim = next((k for k in self._arenas if k != protect), None)
                if victim is None:
                    break
                self._evict(victim)
        if self.max_arenas is not None:
            while len(self._arenas) > self.max_arenas:
                victim = next((k for k in self._arenas if k != protect), None)
                if victim is None:  # pragma: no cover - max_arenas >= 1 guarantees a victim
                    break
                self._evict(victim)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    @property
    def live_arenas(self) -> int:
        return len(self._arenas)

    @property
    def live_bytes(self) -> int:
        """Bytes held by every pool-held arena's slabs."""
        return int(sum(arena.arena_bytes() for arena in self._arenas.values()))

    @property
    def hits(self) -> int:
        return sum(stats.hits for stats in self._tenants.values())

    @property
    def misses(self) -> int:
        return sum(stats.misses for stats in self._tenants.values())

    @property
    def evictions(self) -> int:
        return sum(stats.evictions for stats in self._tenants.values())

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def report(self) -> Dict[str, object]:
        """Budget-wide and per-tenant footprint/reuse summary."""
        with self._lock:
            return self._report_locked()

    def _report_locked(self) -> Dict[str, object]:
        return {
            "capacity_bytes": self.capacity_bytes,
            "live_arenas": self.live_arenas,
            "live_bytes": self.live_bytes,
            "high_water_bytes": self.high_water_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 3),
            "tenants": {
                name: {
                    "hits": stats.hits,
                    "misses": stats.misses,
                    "evictions": stats.evictions,
                    "live_bytes": stats.live_bytes,
                    "high_water_bytes": stats.high_water_bytes,
                    "capacity_bytes": self._tenant_caps.get(name),
                }
                for name, stats in self._tenants.items()
            },
        }

    def clear(self) -> None:
        """Drop every arena and reset counters (tenant registrations stay)."""
        with self._lock:
            self._arenas.clear()
            self.eviction_log.clear()
            self.high_water_bytes = 0
            for name in self._tenants:
                self._tenants[name] = TenantArenaStats()
