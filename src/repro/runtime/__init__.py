"""Hector runtime: graph context, kernel executor, memory tracking, compiled modules."""

from repro.runtime.context import GraphContext
from repro.runtime.executor import PlanExecutor
from repro.runtime.memory import MemoryModel, OutOfMemoryError
from repro.runtime.module import CompiledRGNNModule

__all__ = [
    "GraphContext",
    "PlanExecutor",
    "MemoryModel",
    "OutOfMemoryError",
    "CompiledRGNNModule",
]
