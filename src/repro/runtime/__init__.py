"""Hector runtime: graph context, kernel executor, memory planning, compiled modules."""

from repro.runtime.context import GraphContext
from repro.runtime.executor import PlanExecutor
from repro.runtime.memory import MemoryModel, OutOfMemoryError
from repro.runtime.module import CompiledRGNNModule
from repro.runtime.planner import BufferArena, BufferLifetime, MemoryPlan, MemoryPlanner

__all__ = [
    "GraphContext",
    "PlanExecutor",
    "MemoryModel",
    "OutOfMemoryError",
    "CompiledRGNNModule",
    "BufferArena",
    "BufferLifetime",
    "MemoryPlan",
    "MemoryPlanner",
]
