"""Hector runtime: graph context, executor, memory planning, rebindable modules."""

from repro.runtime.binding import GraphBinding
from repro.runtime.context import GraphContext
from repro.runtime.executor import PlanExecutor
from repro.runtime.memory import MemoryModel, OutOfMemoryError
from repro.runtime.module import CompiledRGNNModule
from repro.runtime.multilayer import MultiLayerModule, StackRun
from repro.runtime.planner import (
    ArenaLease,
    ArenaPool,
    ArenaPoolStats,
    BufferArena,
    BufferLifetime,
    MemoryPlan,
    MemoryPlanner,
    SharedArenaBudget,
    TenantArenaSource,
    TenantArenaStats,
    dim_bucket,
)

__all__ = [
    "GraphContext",
    "GraphBinding",
    "PlanExecutor",
    "MemoryModel",
    "OutOfMemoryError",
    "CompiledRGNNModule",
    "MultiLayerModule",
    "StackRun",
    "ArenaLease",
    "ArenaPool",
    "ArenaPoolStats",
    "BufferArena",
    "BufferLifetime",
    "MemoryPlan",
    "MemoryPlanner",
    "SharedArenaBudget",
    "TenantArenaSource",
    "TenantArenaStats",
    "dim_bucket",
]
