"""Device-memory model and OOM simulation.

The paper's evaluation repeatedly hits out-of-memory errors in baseline
systems (Figure 8, Table 4) and shows that Hector's memory efficiency — no
weight replication, compact materialization — is what lets it run every
dataset.  This module provides the accounting used for those comparisons: a
:class:`MemoryModel` that sums the buffers a system materialises under a
workload and raises :class:`OutOfMemoryError` when the device capacity is
exceeded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


class OutOfMemoryError(RuntimeError):
    """Raised when a plan's footprint exceeds the device memory capacity."""

    def __init__(self, required_bytes: float, capacity_bytes: float, label: str = ""):
        self.required_bytes = float(required_bytes)
        self.capacity_bytes = float(capacity_bytes)
        self.label = label
        super().__init__(
            f"out of memory{f' ({label})' if label else ''}: "
            f"requires {required_bytes / 2**30:.2f} GiB, device has {capacity_bytes / 2**30:.2f} GiB"
        )


@dataclass
class MemoryModel:
    """Tracks allocations against a device capacity.

    Attributes:
        capacity_bytes: device memory capacity (RTX 3090: 24 GiB).
        allocations: label → bytes currently allocated.
    """

    capacity_bytes: float = 24 * 2**30
    allocations: Dict[str, float] = field(default_factory=dict)
    _peak: float = 0.0

    def allocate(self, label: str, num_bytes: float) -> None:
        """Record an allocation; raises :class:`OutOfMemoryError` if over capacity."""
        if num_bytes < 0:
            raise ValueError("allocation size must be non-negative")
        self.allocations[label] = self.allocations.get(label, 0.0) + float(num_bytes)
        total = self.total_allocated()
        self._peak = max(self._peak, total)
        if total > self.capacity_bytes:
            raise OutOfMemoryError(total, self.capacity_bytes, label)

    def free(self, label: str) -> None:
        """Release an allocation."""
        self.allocations.pop(label, None)

    def total_allocated(self) -> float:
        return float(sum(self.allocations.values()))

    def peak_allocated(self) -> float:
        return self._peak

    def would_fit(self, num_bytes: float) -> bool:
        """Whether an additional allocation would fit."""
        return self.total_allocated() + num_bytes <= self.capacity_bytes

    def reset(self) -> None:
        self.allocations.clear()
        self._peak = 0.0


def check_footprint(total_bytes: float, capacity_bytes: float, label: str = "") -> float:
    """Raise :class:`OutOfMemoryError` if ``total_bytes`` exceeds the capacity.

    Returns the footprint so callers can chain the check into reports.
    """
    if total_bytes > capacity_bytes:
        raise OutOfMemoryError(total_bytes, capacity_bytes, label)
    return total_bytes
