"""Layer-by-hop execution of multi-layer RGNN models.

A :class:`MultiLayerModule` stacks ``L`` schema-specialised
:class:`~repro.runtime.module.CompiledRGNNModule` layers (chained feature
dimensions, one shared :class:`~repro.graph.schema.GraphSchema`) and executes
them three ways:

* **full graph** — every layer over the parent graph (the classic training
  baseline; uses each layer's default binding);
* **merged block** — every layer over one merged k-hop
  :class:`~repro.graph.sampler.MinibatchBlock`; correct at the seeds, but
  each layer pays aggregation over the *whole* merged frontier;
* **per-hop blocks** — layer ``l`` over ``blocks[l-1]`` of a
  :meth:`~repro.graph.sampler.NeighborSampler.sample_blocks` result, with
  only the next block's rows gathered across each hop boundary, so deeper
  layers aggregate over shrinking frontiers instead of the merged union.

The backward pass chains through the same boundaries in reverse: an inner
layer's input gradient is scattered into an outer-block-shaped buffer (inner
nodes are a subset of outer nodes) and becomes the outer layer's output
gradient.  Parameter gradients accumulate on each layer's module exactly as
single-layer bindings do, so gradient accumulation across minibatches works
unchanged.

Each layer is its own module with its own arena pool (or its own tenant of a
shared :class:`~repro.runtime.planner.SharedArenaBudget`), so the
forward/backward interleaving across layers never invalidates a pooled
arena's forward intermediates — the stale-backward guard stays quiet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.graph.hetero_graph import HeteroGraph
from repro.graph.sampler import MinibatchBlock, hop_gather_indices
from repro.runtime.binding import GraphBinding
from repro.runtime.module import CompiledRGNNModule
from repro.runtime.planner import SharedArenaBudget


@dataclass
class StackRun:
    """One forward pass of a layer stack, kept alive for its backward pass.

    Attributes:
        bindings: per-layer graph bindings, in execution (outermost-first)
            order.
        blocks: the per-layer blocks (``None`` entries for full-graph runs;
            the same merged block repeated for merged runs).
        restrict_maps: ``restrict_maps[i]`` gathers layer ``i``'s output rows
            into layer ``i+1``'s input rows (``None`` = identity).
        output: the final layer's output matrix (rows of the last binding's
            graph).
    """

    bindings: List[GraphBinding]
    blocks: List[Optional[MinibatchBlock]]
    restrict_maps: List[Optional[np.ndarray]] = field(default_factory=list)
    output: Optional[np.ndarray] = None

    def seed_outputs(self) -> np.ndarray:
        """The final output restricted to the innermost block's seed rows."""
        final = self.blocks[-1]
        if final is None:
            raise ValueError("a full-graph run has no seed set; index the output directly")
        return final.seed_outputs(self.output)


class MultiLayerModule:
    """A stack of compiled RGNN layers executed full-graph, merged, or per-hop.

    Args:
        modules: the layer modules, outermost (input) layer first.  All must
            share one schema, and each layer's output dimension must match
            the next layer's input dimension.
    """

    def __init__(self, modules: Sequence[CompiledRGNNModule]):
        modules = list(modules)
        if not modules:
            raise ValueError("MultiLayerModule needs at least one layer")
        schema = modules[0].schema
        for index, module in enumerate(modules[1:], start=1):
            if module.schema != schema:
                raise ValueError(
                    f"layer {index} is specialised for a different schema than layer 0"
                )
            previous = modules[index - 1]
            if (
                previous.output_feature_dim is not None
                and module.input_feature_dim is not None
                and previous.output_feature_dim != module.input_feature_dim
            ):
                raise ValueError(
                    f"layer {index - 1} produces dimension {previous.output_feature_dim} "
                    f"but layer {index} expects {module.input_feature_dim}"
                )
        self.modules = modules
        self.schema = schema
        #: Per-layer arena sources (tenants of a shared budget); ``None``
        #: entries fall back to the layer module's own pool.
        self.arena_sources: List[Optional[object]] = [None] * len(modules)

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        model: str,
        graph: HeteroGraph,
        dims: Sequence[int],
        *,
        options=None,
        seed: int = 0,
        shared_budget: Optional[SharedArenaBudget] = None,
    ) -> "MultiLayerModule":
        """Compile an ``L``-layer stack of one model for a graph.

        Args:
            model: model name (``"rgcn"`` / ``"rgat"`` / ``"hgt"``).
            graph: parent graph (defines the schema and the default binding).
            dims: ``L + 1`` feature dimensions; layer ``l`` maps
                ``dims[l] -> dims[l + 1]``.
            options: compiler options shared by every layer (default options
                keep backward kernels on, as training needs them).
            seed: base parameter-initialisation seed (layer ``l`` uses
                ``seed + l`` so layers do not share initial weights).
            shared_budget: optional cross-layer arena budget; each layer
                becomes its own tenant so layers never share slabs but stay
                under one byte cap.
        """
        from repro.frontend.compiler import compile_model  # local import: avoids a cycle

        dims = [int(d) for d in dims]
        if len(dims) < 2:
            raise ValueError("dims needs at least (in_dim, out_dim)")
        modules = [
            compile_model(model, graph, in_dim=dims[i], out_dim=dims[i + 1],
                          options=options, seed=seed + i)
            for i in range(len(dims) - 1)
        ]
        stack = cls(modules)
        if shared_budget is not None:
            stack.arena_sources = [
                shared_budget.tenant(f"layer-{i}") for i in range(len(modules))
            ]
        return stack

    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        return len(self.modules)

    @property
    def input_feature_dim(self) -> Optional[int]:
        return self.modules[0].input_feature_dim

    @property
    def output_feature_dim(self) -> Optional[int]:
        return self.modules[-1].output_feature_dim

    @property
    def output_name(self) -> str:
        """The final layer's primary output buffer name (the stack's output)."""
        return self.modules[-1].output_name

    @property
    def uses_memory_planning(self) -> bool:
        """True when any layer leases arenas (serving must budget for it)."""
        return any(module.memory_planner is not None for module in self.modules)

    def attach_arena_sources(
        self,
        budget: SharedArenaBudget,
        prefix: str,
        capacity_bytes: Optional[int] = None,
    ) -> List[str]:
        """Lease every planned layer's arenas from ``budget``, as tenants
        named ``{prefix}/layer{l}``.

        The serving router calls this when an endpoint adopts a stack: unlike
        :meth:`build`'s ``layer-{l}`` names, the prefixed names cannot collide
        when several endpoints adopt stacks into one budget.  Returns the
        tenant names it registered (the router rolls them back if the rest of
        the registration fails).  ``capacity_bytes`` caps each layer tenant
        individually.
        """
        names: List[str] = []
        for index, module in enumerate(self.modules):
            if module.memory_planner is None:
                continue
            tenant = f"{prefix}/layer{index}"
            self.arena_sources[index] = budget.tenant(tenant, capacity_bytes=capacity_bytes)
            names.append(tenant)
        return names

    def parameters(self):
        """All layers' parameters, outermost layer first."""
        return [p for module in self.modules for p in module.parameters()]

    def parameters_by_name(self) -> Dict[str, object]:
        """Parameters keyed ``layer{l}.{name}`` (for reporting and tests)."""
        return {
            f"layer{index}.{name}": parameter
            for index, module in enumerate(self.modules)
            for name, parameter in module.parameters_by_name.items()
        }

    def zero_grad(self) -> None:
        for module in self.modules:
            module.zero_grad()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _bind(self, layer: int, graph: HeteroGraph, label: Optional[str] = None) -> GraphBinding:
        source = self.arena_sources[layer]
        if source is not None:
            return self.modules[layer].bind(graph, arena_source=source, label=label)
        return self.modules[layer].bind(graph, label=label)

    def _forward_stack(self, run: StackRun, features: np.ndarray) -> StackRun:
        h = features
        for index, binding in enumerate(run.bindings):
            out = binding.forward(h)[self.modules[index].output_name]
            restrict = run.restrict_maps[index]
            h = out if restrict is None else out[restrict]
        run.output = h
        return run

    def _backward_stack(self, run: StackRun, output_grad: np.ndarray) -> np.ndarray:
        """Chain backward through the stack; returns the gradient w.r.t. the
        features fed to the first (outermost) layer."""
        grad = np.asarray(output_grad, dtype=np.float64)
        for index in reversed(range(self.num_layers)):
            binding = run.bindings[index]
            restrict = run.restrict_maps[index]
            if restrict is not None:
                # The inner layer saw only the restricted rows; scatter its
                # gradient back into this layer's (larger) output shape.
                widened = np.zeros((binding.graph.num_nodes, grad.shape[1]))
                widened[restrict] = grad
                grad = widened
            binding.backward({self.modules[index].output_name: grad})
            # forward() feeds the same feature matrix into every node-space
            # input, so the upstream gradient is the sum over all of them.
            input_grads = list(binding.input_gradients().values())
            grad = input_grads[0] if len(input_grads) == 1 else sum(input_grads)
        return grad

    def forward_full(self, features: np.ndarray) -> StackRun:
        """Every layer over the parent graph, via the default bindings."""
        bindings = []
        for module in self.modules:
            if module.default_binding is None:
                raise RuntimeError(
                    "forward_full needs graph-bound layers; build the stack with "
                    "MultiLayerModule.build(model, graph, dims)"
                )
            bindings.append(module.default_binding)
        run = StackRun(bindings=bindings, blocks=[None] * self.num_layers,
                       restrict_maps=[None] * self.num_layers)
        return self._forward_stack(run, np.asarray(features))

    def backward_full(self, run: StackRun, output_grad: np.ndarray) -> np.ndarray:
        """Backward of :meth:`forward_full`; accumulates parameter gradients."""
        return self._backward_stack(run, output_grad)

    def forward_merged(self, block: MinibatchBlock, parent_features: np.ndarray) -> StackRun:
        """Every layer over one merged k-hop block (the pre-per-hop baseline)."""
        bindings = [
            self._bind(index, block.graph, label=f"layer {index} (merged)")
            for index in range(self.num_layers)
        ]
        run = StackRun(bindings=bindings, blocks=[block] * self.num_layers,
                       restrict_maps=[None] * self.num_layers)
        return self._forward_stack(run, block.gather_features(parent_features))

    def backward_merged(self, run: StackRun, output_grad: np.ndarray) -> np.ndarray:
        """Backward of :meth:`forward_merged`."""
        return self._backward_stack(run, output_grad)

    def forward_blocks(self, blocks: Sequence[MinibatchBlock], parent_features: np.ndarray) -> StackRun:
        """Layer ``l`` over ``blocks[l-1]``, gathering rows at hop boundaries.

        ``blocks`` is a :meth:`~repro.graph.sampler.NeighborSampler.sample_blocks`
        result: outermost hop first, one block per layer.  Only the rows of
        the next block's nodes cross each boundary, so layer ``l+1``
        aggregates over its own (smaller) frontier instead of the merged one.
        """
        blocks = list(blocks)
        if len(blocks) != self.num_layers:
            raise ValueError(
                f"expected {self.num_layers} per-hop blocks (one per layer), got {len(blocks)}; "
                f"sample with fanouts of length {self.num_layers}"
            )
        bindings = [
            self._bind(index, block.graph, label=f"layer {index} (hop)")
            for index, block in enumerate(blocks)
        ]
        restrict_maps: List[Optional[np.ndarray]] = [
            hop_gather_indices(blocks[index], blocks[index + 1])
            for index in range(len(blocks) - 1)
        ] + [None]
        run = StackRun(bindings=bindings, blocks=blocks, restrict_maps=restrict_maps)
        return self._forward_stack(run, blocks[0].gather_features(parent_features))

    def backward_blocks(self, run: StackRun, output_grad: np.ndarray) -> np.ndarray:
        """Backward of :meth:`forward_blocks`; scatters across hop boundaries."""
        return self._backward_stack(run, output_grad)

    # ------------------------------------------------------------------
    def layer_edge_counts(self, run: StackRun) -> List[int]:
        """Edges each layer aggregated over (the per-layer work accounting)."""
        return [binding.graph.num_edges for binding in run.bindings]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        dims = [self.input_feature_dim] + [m.output_feature_dim for m in self.modules]
        return f"MultiLayerModule(layers={self.num_layers}, dims={dims})"
