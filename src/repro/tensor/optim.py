"""Optimizers for training the reference and compiled RGNN models."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.tensor.tensor import Tensor


class Optimizer:
    """Base optimizer holding a list of parameters."""

    def __init__(self, parameters: Iterable[Tensor]):
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.01, momentum: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                update = velocity
            else:
                update = param.grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba)."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.001,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
    ):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad ** 2
            m_hat = m / (1 - self.beta1 ** self._step)
            v_hat = v / (1 - self.beta2 ** self._step)
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
