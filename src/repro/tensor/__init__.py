"""Dense tensor substrate with reverse-mode automatic differentiation.

The Hector paper builds on PyTorch (``libtorch`` tensors and
``autograd.Function``).  This package provides the equivalent substrate used
throughout the reproduction: a numpy-backed :class:`Tensor` with a reverse-mode
autograd tape, a small neural-network module system (:mod:`repro.tensor.nn`),
parameter initialisers, and optimizers.

All baseline system simulators and the Hector runtime fall back to these
tensors, and the numerical output of generated kernels is validated against
reference implementations written with this package.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor import ops
from repro.tensor import nn
from repro.tensor import init
from repro.tensor import optim

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "ops",
    "nn",
    "init",
    "optim",
    "tensor",
    "zeros",
    "ones",
    "randn",
]


def tensor(data, requires_grad=False, dtype=None):
    """Create a :class:`Tensor` from array-like data."""
    return Tensor(data, requires_grad=requires_grad, dtype=dtype)


def zeros(shape, requires_grad=False, dtype=None):
    """Create a tensor filled with zeros."""
    import numpy as np

    return Tensor(np.zeros(shape, dtype=dtype or np.float64), requires_grad=requires_grad)


def ones(shape, requires_grad=False, dtype=None):
    """Create a tensor filled with ones."""
    import numpy as np

    return Tensor(np.ones(shape, dtype=dtype or np.float64), requires_grad=requires_grad)


def randn(shape, requires_grad=False, rng=None, scale=1.0):
    """Create a tensor with standard-normal entries.

    Args:
        shape: output shape.
        requires_grad: whether gradients should be tracked.
        rng: optional ``numpy.random.Generator`` for reproducibility.
        scale: multiplier applied to the samples.
    """
    import numpy as np

    generator = rng if rng is not None else np.random.default_rng()
    return Tensor(generator.standard_normal(shape) * scale, requires_grad=requires_grad)
