"""Core :class:`Tensor` type with reverse-mode automatic differentiation.

The design mirrors the subset of PyTorch semantics that the Hector paper
relies on: tensors carry data, an optional gradient, and a backward closure
linking them to their parents in the computation graph.  Calling
:meth:`Tensor.backward` on a scalar (or with an explicit output gradient)
performs a reverse topological sweep and accumulates ``.grad`` on every leaf
tensor with ``requires_grad=True``.

Only the operations needed by relational graph neural networks are
implemented: elementwise arithmetic, matrix multiplication (including batched
and typed/segment variants in :mod:`repro.tensor.ops`), gather/scatter,
reductions, and common activations.
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient tracking (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return ``True`` when operations record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autograd.

    Attributes:
        data: the underlying ``numpy.ndarray``.
        requires_grad: whether gradients are accumulated into :attr:`grad`.
        grad: accumulated gradient array, or ``None``.
    """

    __array_priority__ = 200  # ensure numpy defers to Tensor operators

    def __init__(self, data, requires_grad: bool = False, dtype=None):
        if isinstance(data, Tensor):
            data = data.data
        array = np.asarray(data, dtype=dtype if dtype is not None else None)
        if array.dtype.kind in "iub" and dtype is None:
            # Integer tensors are allowed (index tensors) but never require grad.
            pass
        elif array.dtype != np.float64 and dtype is None:
            array = array.astype(np.float64)
        self.data: np.ndarray = array
        self.requires_grad: bool = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self._op_name: str = "leaf"

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._raise_item()

    def _raise_item(self):
        raise ValueError(f"item() requires a single-element tensor, got shape {self.shape}")

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def clone(self) -> "Tensor":
        """Return a copy of this tensor that participates in the graph."""
        return _make(self.data.copy(), (self,), lambda g: (g,), "clone")

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self._op_name}{flag})"

    def __len__(self) -> int:
        return self.data.shape[0]

    # ------------------------------------------------------------------
    # autograd engine
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[Union[np.ndarray, "Tensor"]] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Args:
            grad: gradient of the final objective with respect to this tensor.
                Defaults to 1 for scalar tensors.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without an argument requires a scalar tensor")
            grad = np.ones_like(self.data)
        elif isinstance(grad, Tensor):
            grad = grad.data
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)

        topo: List[Tensor] = []
        visited = set()

        def visit(node: "Tensor") -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                visit(parent)
            topo.append(node)

        visit(self)

        grads = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor: accumulate.
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
            if node._backward is None:
                continue
            parent_grads = node._backward(node_grad)
            for parent, parent_grad in zip(node._parents, parent_grads):
                if parent_grad is None:
                    continue
                existing = grads.get(id(parent))
                if existing is None:
                    grads[id(parent)] = parent_grad
                else:
                    grads[id(parent)] = existing + parent_grad

    def _needs_graph(self, *others: "Tensor") -> bool:
        if not is_grad_enabled():
            return False
        if self.requires_grad or self._backward is not None:
            return True
        for other in others:
            if isinstance(other, Tensor) and (other.requires_grad or other._backward is not None):
                return True
        return False

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data + other.data

        def backward(g):
            return (_unbroadcast(g, self.shape), _unbroadcast(g, other.shape))

        return _maybe_make(out_data, (self, other), backward, "add")

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data - other.data

        def backward(g):
            return (_unbroadcast(g, self.shape), _unbroadcast(-g, other.shape))

        return _maybe_make(out_data, (self, other), backward, "sub")

    def __rsub__(self, other) -> "Tensor":
        return _as_tensor(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data * other.data

        def backward(g):
            return (
                _unbroadcast(g * other.data, self.shape),
                _unbroadcast(g * self.data, other.shape),
            )

        return _maybe_make(out_data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data / other.data

        def backward(g):
            return (
                _unbroadcast(g / other.data, self.shape),
                _unbroadcast(-g * self.data / (other.data ** 2), other.shape),
            )

        return _maybe_make(out_data, (self, other), backward, "div")

    def __rtruediv__(self, other) -> "Tensor":
        return _as_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return _maybe_make(-self.data, (self,), lambda g: (-g,), "neg")

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data ** exponent

        def backward(g):
            return (g * exponent * self.data ** (exponent - 1),)

        return _maybe_make(out_data, (self,), backward, "pow")

    # ------------------------------------------------------------------
    # linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix multiply, supporting batched (3-D) operands like ``torch.bmm``."""
        other = _as_tensor(other)
        out_data = np.matmul(self.data, other.data)

        def backward(g):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                grad_a = g * b
                grad_b = g * a
            else:
                a_mat = a if a.ndim > 1 else a.reshape(1, -1)
                b_mat = b if b.ndim > 1 else b.reshape(-1, 1)
                g_mat = g
                if a.ndim == 1:
                    g_mat = g.reshape(1, *g.shape) if g.ndim == b.ndim - 1 else g
                grad_a = np.matmul(g_mat, np.swapaxes(b_mat, -1, -2))
                grad_b = np.matmul(np.swapaxes(a_mat, -1, -2), g_mat)
                grad_a = _unbroadcast(grad_a.reshape(a.shape) if grad_a.size == a.size else grad_a, a.shape)
                grad_b = _unbroadcast(grad_b.reshape(b.shape) if grad_b.size == b.size else grad_b, b.shape)
            return (grad_a, grad_b)

        return _maybe_make(out_data, (self, other), backward, "matmul")

    __matmul__ = matmul

    def transpose(self, axis0: int = -2, axis1: int = -1) -> "Tensor":
        """Swap two axes (default: last two)."""
        out_data = np.swapaxes(self.data, axis0, axis1)

        def backward(g):
            return (np.swapaxes(g, axis0, axis1),)

        return _maybe_make(out_data, (self,), backward, "transpose")

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        out_data = self.data.reshape(shape)

        def backward(g):
            return (g.reshape(original),)

        return _maybe_make(out_data, (self,), backward, "reshape")

    def unsqueeze(self, axis: int) -> "Tensor":
        out_data = np.expand_dims(self.data, axis)

        def backward(g):
            return (np.squeeze(g, axis=axis),)

        return _maybe_make(out_data, (self,), backward, "unsqueeze")

    def squeeze(self, axis: int) -> "Tensor":
        out_data = np.squeeze(self.data, axis=axis)
        original = self.shape

        def backward(g):
            return (g.reshape(original),)

        return _maybe_make(out_data, (self,), backward, "squeeze")

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.shape

        def backward(g):
            grad = g
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            return (np.broadcast_to(grad, shape).copy(),)

        return _maybe_make(out_data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.mean(axis=axis, keepdims=keepdims)
        shape = self.shape
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]

        def backward(g):
            grad = g
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            return (np.broadcast_to(grad, shape).copy() / count,)

        return _maybe_make(out_data, (self,), backward, "mean")

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g):
            expanded = g
            out_expanded = out_data
            if axis is not None and not keepdims:
                expanded = np.expand_dims(expanded, axis)
                out_expanded = np.expand_dims(out_data, axis)
            mask = (self.data == out_expanded).astype(self.data.dtype)
            # Distribute gradient among ties equally.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            return (mask * expanded / counts,)

        return _maybe_make(out_data, (self,), backward, "max")

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g):
            return (g * out_data,)

        return _maybe_make(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(g):
            return (g / self.data,)

        return _maybe_make(out_data, (self,), backward, "log")

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(g):
            return (g * (self.data > 0),)

        return _maybe_make(out_data, (self,), backward, "relu")

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        out_data = np.where(self.data > 0, self.data, self.data * negative_slope)

        def backward(g):
            return (g * np.where(self.data > 0, 1.0, negative_slope),)

        return _maybe_make(out_data, (self,), backward, "leaky_relu")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g):
            return (g * out_data * (1.0 - out_data),)

        return _maybe_make(out_data, (self,), backward, "sigmoid")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g):
            return (g * (1.0 - out_data ** 2),)

        return _maybe_make(out_data, (self,), backward, "tanh")

    # ------------------------------------------------------------------
    # indexing / gather / scatter
    # ------------------------------------------------------------------
    def __getitem__(self, index) -> "Tensor":
        if isinstance(index, Tensor):
            index = index.data
        out_data = self.data[index]
        shape = self.shape
        dtype = self.data.dtype

        def backward(g):
            grad = np.zeros(shape, dtype=dtype)
            np.add.at(grad, index, g)
            return (grad,)

        return _maybe_make(out_data, (self,), backward, "getitem")

    def index_select(self, indices) -> "Tensor":
        """Gather rows by ``indices`` (first axis)."""
        if isinstance(indices, Tensor):
            indices = indices.data
        indices = np.asarray(indices, dtype=np.int64)
        out_data = self.data[indices]
        shape = self.shape
        dtype = self.data.dtype

        def backward(g):
            grad = np.zeros(shape, dtype=dtype)
            np.add.at(grad, indices, g)
            return (grad,)

        return _maybe_make(out_data, (self,), backward, "index_select")

    # ------------------------------------------------------------------
    # comparisons (no gradient)
    # ------------------------------------------------------------------
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data > other)

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data < other)


def _as_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def _make(data: np.ndarray, parents: Tuple[Tensor, ...], backward, op_name: str) -> Tensor:
    out = Tensor(data)
    out._parents = parents
    out._backward = backward
    out._op_name = op_name
    out.requires_grad = any(p.requires_grad or p._backward is not None for p in parents)
    return out


def _maybe_make(data: np.ndarray, parents: Tuple[Tensor, ...], backward, op_name: str) -> Tensor:
    """Create a graph node only when gradient tracking is needed."""
    if is_grad_enabled() and any(
        isinstance(p, Tensor) and (p.requires_grad or p._backward is not None) for p in parents
    ):
        return _make(data, parents, backward, op_name)
    out = Tensor(data)
    out._op_name = op_name
    return out


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [_as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]

    def backward(g):
        grads = []
        start = 0
        for size in sizes:
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(start, start + size)
            grads.append(g[tuple(slicer)])
            start += size
        return tuple(grads)

    return _maybe_make(out_data, tuple(tensors), backward, "concat")


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [_as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g):
        return tuple(np.take(g, i, axis=axis) for i in range(len(tensors)))

    return _maybe_make(out_data, tuple(tensors), backward, "stack")
