"""Minimal neural-network module system on top of :class:`repro.tensor.Tensor`.

Provides the pieces the RGNN reference implementations and baseline system
simulators need: ``Parameter``, ``Module`` with recursive parameter discovery,
``Linear``, ``TypedLinear`` (one weight per relation / node type), and
``Dropout``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.tensor import init
from repro.tensor import ops
from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as a learnable parameter of a :class:`Module`."""

    def __init__(self, data, requires_grad: bool = True):
        if isinstance(data, Tensor):
            data = data.data
        super().__init__(data, requires_grad=requires_grad)


class Module:
    """Base class with recursive parameter and submodule registration."""

    def __init__(self):
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training: bool = True

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def parameters(self) -> List[Parameter]:
        """Return all parameters of this module and its submodules."""
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs recursively."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all submodules."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def zero_grad(self) -> None:
        """Reset gradients of all parameters."""
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class ModuleList(Module):
    """A list of submodules registered for parameter discovery."""

    def __init__(self, modules=None):
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module
        return self

    def __iter__(self):
        return iter(self._items)

    def __len__(self):
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def forward(self, *args, **kwargs):  # pragma: no cover - container only
        raise RuntimeError("ModuleList is a container and cannot be called")


class ModuleDict(Module):
    """A string-keyed dictionary of submodules."""

    def __init__(self, modules: Optional[Dict[str, Module]] = None):
        super().__init__()
        self._items: Dict[str, Module] = {}
        for key, module in (modules or {}).items():
            self[key] = module

    def __setitem__(self, key: str, module: Module) -> None:
        self._items[key] = module
        self._modules[key] = module

    def __getitem__(self, key: str) -> Module:
        return self._items[key]

    def __contains__(self, key: str) -> bool:
        return key in self._items

    def keys(self):
        return self._items.keys()

    def items(self):
        return self._items.items()

    def forward(self, *args, **kwargs):  # pragma: no cover - container only
        raise RuntimeError("ModuleDict is a container and cannot be called")


class Linear(Module):
    """Dense linear layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, seed: Optional[int] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), seed=seed))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out


class TypedLinear(Module):
    """Type-dependent linear layer: one ``(in, out)`` weight per type.

    This is the edgewise/nodewise typed linear layer that Section 2.3 of the
    paper uses as its running example.  The ``strategy`` argument selects how
    the computation is carried out on the tensor substrate and determines what
    the GPU cost model charges for it:

    * ``"segment"`` — segment MM over rows presorted by type (Hector / DGL
      segmentMM path); requires ``segment_offsets``.
    * ``"gather"`` — materialise a per-row weight tensor and run a batched
      matmul (``FastRGCNConv`` path, extra weight replication).
    * ``"loop"`` — one matmul per type (``RGCNConv`` / HeteroConv path, many
      small kernels).
    """

    def __init__(
        self,
        num_types: int,
        in_features: int,
        out_features: int,
        strategy: str = "segment",
        seed: Optional[int] = None,
    ):
        super().__init__()
        self.num_types = num_types
        self.in_features = in_features
        self.out_features = out_features
        self.strategy = strategy
        self.weight = Parameter(init.xavier_uniform((num_types, in_features, out_features), seed=seed))

    def forward(self, x: Tensor, type_ids, segment_offsets=None) -> Tensor:
        if self.strategy == "segment":
            if segment_offsets is None:
                segment_offsets = _offsets_from_sorted_types(type_ids, self.num_types)
            return ops.segment_mm(x, self.weight, segment_offsets)
        return ops.typed_linear(x, self.weight, type_ids, strategy=self.strategy)


class Dropout(Module):
    """Inverted dropout; identity in evaluation mode."""

    def __init__(self, p: float = 0.5, seed: Optional[int] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        mask = (self._rng.random(x.shape) >= self.p).astype(x.data.dtype) / (1.0 - self.p)
        return x * Tensor(mask)


def _offsets_from_sorted_types(type_ids, num_types: int) -> np.ndarray:
    """Compute segment offsets assuming ``type_ids`` is sorted ascending."""
    ids = type_ids.data if isinstance(type_ids, Tensor) else np.asarray(type_ids)
    ids = ids.astype(np.int64)
    if ids.size > 1 and np.any(np.diff(ids) < 0):
        raise ValueError("segment strategy requires rows presorted by type")
    counts = np.bincount(ids, minlength=num_types)
    offsets = np.zeros(num_types + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets
