"""Functional operations used by RGNN models and the baseline simulators.

These functions implement, on top of :class:`repro.tensor.Tensor`, the message
passing primitives the Hector paper discusses:

* ``gather`` / ``scatter_add`` — the indexing and copying operations that the
  paper identifies as a large share of baseline inference time (Figure 3).
* ``segment_mm`` and ``typed_linear`` — the typed linear layer implemented via
  segment matrix multiply (nodes/edges presorted by type) or via weight
  gathering plus batched matrix multiply (the ``FastRGCNConv`` strategy that
  materialises a per-edge weight tensor).
* ``edge_softmax`` — softmax of per-edge attention scores grouped by
  destination node.
* ``spmm`` / ``sddmm`` — the sparse kernels that DGL-style systems lower
  message passing onto.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.tensor.tensor import Tensor, _maybe_make, _as_tensor


def _index_array(indices) -> np.ndarray:
    if isinstance(indices, Tensor):
        indices = indices.data
    return np.asarray(indices, dtype=np.int64)


# ----------------------------------------------------------------------
# gather / scatter
# ----------------------------------------------------------------------
def gather_rows(source: Tensor, indices) -> Tensor:
    """Gather rows ``source[indices]`` along the first axis."""
    return _as_tensor(source).index_select(indices)


def scatter_add(values: Tensor, indices, num_targets: int) -> Tensor:
    """Scatter-add row vectors into ``num_targets`` rows.

    ``out[indices[i]] += values[i]`` — the aggregation primitive of message
    passing.  The backward pass is a gather of the output gradient.
    """
    values = _as_tensor(values)
    indices = _index_array(indices)
    out_shape = (num_targets,) + values.shape[1:]
    out_data = np.zeros(out_shape, dtype=values.data.dtype)
    np.add.at(out_data, indices, values.data)

    def backward(g):
        return (g[indices],)

    return _maybe_make(out_data, (values,), backward, "scatter_add")


def scatter_mean(values: Tensor, indices, num_targets: int) -> Tensor:
    """Scatter-mean row vectors into ``num_targets`` rows."""
    values = _as_tensor(values)
    indices = _index_array(indices)
    counts = np.bincount(indices, minlength=num_targets).astype(values.data.dtype)
    counts = np.maximum(counts, 1.0)
    summed = scatter_add(values, indices, num_targets)
    return summed / Tensor(counts.reshape(-1, *([1] * (values.ndim - 1))))


# ----------------------------------------------------------------------
# typed / segment matrix multiply
# ----------------------------------------------------------------------
def segment_mm(features: Tensor, weights: Tensor, segment_offsets: Sequence[int]) -> Tensor:
    """Segment matrix multiply: rows presorted by type, one weight per segment.

    Args:
        features: ``(N, in_dim)`` rows sorted so that rows of the same type are
            contiguous.
        weights: ``(num_types, in_dim, out_dim)`` stacked weight matrices.
        segment_offsets: length ``num_types + 1`` prefix-sum of segment sizes.

    Returns:
        ``(N, out_dim)`` transformed rows.
    """
    features = _as_tensor(features)
    weights = _as_tensor(weights)
    offsets = np.asarray(segment_offsets, dtype=np.int64)
    num_types = weights.shape[0]
    if len(offsets) != num_types + 1:
        raise ValueError(
            f"segment_offsets must have length num_types + 1 = {num_types + 1}, got {len(offsets)}"
        )
    if offsets[-1] != features.shape[0]:
        raise ValueError("segment_offsets must cover all feature rows")

    out_data = np.empty((features.shape[0], weights.shape[2]), dtype=features.data.dtype)
    for t in range(num_types):
        start, end = offsets[t], offsets[t + 1]
        if end > start:
            out_data[start:end] = features.data[start:end] @ weights.data[t]

    def backward(g):
        grad_features = np.empty_like(features.data)
        grad_weights = np.zeros_like(weights.data)
        for t in range(num_types):
            start, end = offsets[t], offsets[t + 1]
            if end > start:
                grad_features[start:end] = g[start:end] @ weights.data[t].T
                grad_weights[t] = features.data[start:end].T @ g[start:end]
            else:
                pass
        return (grad_features, grad_weights)

    return _maybe_make(out_data, (features, weights), backward, "segment_mm")


def gather_weights(weights: Tensor, type_ids) -> Tensor:
    """Materialise a per-row weight tensor ``W'[i] = W[type_ids[i]]``.

    This is the redundant-copy strategy the paper attributes to
    ``FastRGCNConv`` and DGL's bmm-based typed linear layers (Section 2.3).
    """
    return _as_tensor(weights).index_select(type_ids)


def bmm(a: Tensor, b: Tensor) -> Tensor:
    """Batched matrix multiply of ``(B, m, k)`` and ``(B, k, n)`` tensors."""
    return _as_tensor(a).matmul(_as_tensor(b))


def typed_linear(features: Tensor, weights: Tensor, type_ids, strategy: str = "gather") -> Tensor:
    """Apply a type-dependent linear transformation to each row.

    ``out[i] = features[i] @ weights[type_ids[i]]``

    Args:
        features: ``(N, in_dim)`` rows.
        weights: ``(num_types, in_dim, out_dim)``.
        type_ids: ``(N,)`` integer type of each row.
        strategy: ``"gather"`` replicates weights and uses batched matmul
            (baseline behaviour); ``"loop"`` launches one matmul per type
            (``RGCNConv`` / HeteroConv behaviour).  Both produce identical
            values; they differ only in the work the cost model attributes.
    """
    features = _as_tensor(features)
    weights = _as_tensor(weights)
    ids = _index_array(type_ids)
    if strategy == "gather":
        per_row_weights = gather_weights(weights, ids)
        return bmm(features.unsqueeze(1), per_row_weights).squeeze(1)
    if strategy == "loop":
        out_data = np.zeros((features.shape[0], weights.shape[2]), dtype=features.data.dtype)
        masks = [ids == t for t in range(weights.shape[0])]
        for t, mask in enumerate(masks):
            if mask.any():
                out_data[mask] = features.data[mask] @ weights.data[t]

        def backward(g):
            grad_features = np.zeros_like(features.data)
            grad_weights = np.zeros_like(weights.data)
            for t, mask in enumerate(masks):
                if mask.any():
                    grad_features[mask] = g[mask] @ weights.data[t].T
                    grad_weights[t] = features.data[mask].T @ g[mask]
            return (grad_features, grad_weights)

        return _maybe_make(out_data, (features, weights), backward, "typed_linear_loop")
    raise ValueError(f"unknown typed_linear strategy: {strategy!r}")


# ----------------------------------------------------------------------
# softmax variants
# ----------------------------------------------------------------------
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    x = _as_tensor(x)
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def edge_softmax(scores: Tensor, dst_indices, num_nodes: int) -> Tensor:
    """Softmax of per-edge scores grouped by destination node.

    Matches the ``edge_softmax`` helper used in RGAT / HGT (Listing 1 of the
    paper): ``out[e] = exp(scores[e]) / sum_{e' -> dst(e)} exp(scores[e'])``.
    A per-destination max shift keeps the computation stable.
    """
    scores = _as_tensor(scores)
    dst = _index_array(dst_indices)
    # Stability shift computed outside the graph (constant w.r.t. gradient).
    flat = scores.data.reshape(scores.shape[0], -1)
    maxes = np.full((num_nodes, flat.shape[1]), -np.inf)
    np.maximum.at(maxes, dst, flat)
    maxes[~np.isfinite(maxes)] = 0.0
    shift = Tensor(maxes.reshape((num_nodes,) + scores.shape[1:]))
    shifted = scores - shift.index_select(dst)
    exps = shifted.exp()
    denom = scatter_add(exps, dst, num_nodes)
    # Guard isolated nodes against division by zero.
    denom_safe = denom + Tensor(np.where(denom.data == 0, 1.0, 0.0))
    return exps / denom_safe.index_select(dst)


# ----------------------------------------------------------------------
# sparse kernels (DGL-style lowering)
# ----------------------------------------------------------------------
def spmm(src_indices, dst_indices, edge_values: Optional[Tensor], node_features: Tensor, num_dst: int) -> Tensor:
    """Sparse-dense matrix multiply expressed as gather → scale → scatter.

    ``out[v] = sum_{e=(u,v)} edge_values[e] * node_features[u]``.  When
    ``edge_values`` is ``None`` the edge weight is 1 (plain sum aggregation).
    """
    gathered = gather_rows(node_features, src_indices)
    if edge_values is not None:
        values = _as_tensor(edge_values)
        if values.ndim == 1:
            values = values.reshape(-1, 1)
        gathered = gathered * values
    return scatter_add(gathered, dst_indices, num_dst)


def sddmm(src_indices, dst_indices, src_features: Tensor, dst_features: Tensor) -> Tensor:
    """Sampled dense-dense matrix multiply: per-edge dot products.

    ``out[e] = <src_features[src(e)], dst_features[dst(e)]>``
    """
    hs = gather_rows(src_features, src_indices)
    ht = gather_rows(dst_features, dst_indices)
    return (hs * ht).sum(axis=-1)


def dot_product(a: Tensor, b: Tensor) -> Tensor:
    """Rowwise dot product of two ``(N, d)`` tensors returning ``(N,)``."""
    return (_as_tensor(a) * _as_tensor(b)).sum(axis=-1)


def outer_product(a: Tensor, b: Tensor) -> Tensor:
    """Rowwise outer product of ``(N, d1)`` and ``(N, d2)`` returning ``(N, d1, d2)``.

    Outer products dominate the backward pass of typed linear layers (the
    weight gradient); the paper identifies them as a latency bottleneck.
    """
    return _as_tensor(a).unsqueeze(2) * _as_tensor(b).unsqueeze(1)


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky rectified linear unit."""
    return _as_tensor(x).leaky_relu(negative_slope)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis``."""
    x = _as_tensor(x)
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def nll_loss(log_probs: Tensor, targets) -> Tensor:
    """Negative log-likelihood loss given log-probabilities and integer targets.

    The paper trains by comparing outputs against a precomputed random label
    tensor with NLL loss (Section 4.1); this is the same objective.
    """
    log_probs = _as_tensor(log_probs)
    targets = _index_array(targets)
    rows = np.arange(log_probs.shape[0])
    picked = log_probs[(rows, targets)]
    return -picked.mean()


def cross_entropy(logits: Tensor, targets) -> Tensor:
    """Cross-entropy loss from raw logits."""
    return nll_loss(log_softmax(logits, axis=-1), targets)
