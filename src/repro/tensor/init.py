"""Parameter initialisation helpers (Xavier/Glorot, Kaiming, uniform)."""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.tensor.tensor import Tensor


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def xavier_uniform(shape: Sequence[int], gain: float = 1.0, seed: Optional[int] = None) -> Tensor:
    """Glorot/Xavier uniform initialisation.

    The fan-in and fan-out are taken from the last two dimensions so that
    stacked per-type weight tensors ``(num_types, in_dim, out_dim)`` are
    initialised per matrix exactly as separate ``(in_dim, out_dim)`` weights
    would be.
    """
    shape = tuple(int(s) for s in shape)
    fan_in, fan_out = _fans(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    data = _rng(seed).uniform(-bound, bound, size=shape)
    return Tensor(data, requires_grad=True)


def kaiming_uniform(shape: Sequence[int], a: float = math.sqrt(5), seed: Optional[int] = None) -> Tensor:
    """Kaiming/He uniform initialisation (PyTorch's default for ``nn.Linear``)."""
    shape = tuple(int(s) for s in shape)
    fan_in, _ = _fans(shape)
    gain = math.sqrt(2.0 / (1 + a ** 2))
    bound = gain * math.sqrt(3.0 / fan_in)
    data = _rng(seed).uniform(-bound, bound, size=shape)
    return Tensor(data, requires_grad=True)


def uniform(shape: Sequence[int], low: float = -0.1, high: float = 0.1, seed: Optional[int] = None) -> Tensor:
    """Plain uniform initialisation in ``[low, high)``."""
    data = _rng(seed).uniform(low, high, size=tuple(int(s) for s in shape))
    return Tensor(data, requires_grad=True)


def zeros(shape: Sequence[int]) -> Tensor:
    """Zero initialisation (used for biases)."""
    return Tensor(np.zeros(tuple(int(s) for s in shape)), requires_grad=True)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 0:
        return 1, 1
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = shape[-2]
    fan_out = shape[-1]
    return fan_in, fan_out
