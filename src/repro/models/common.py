"""Shared utilities of the reference model implementations."""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.graph.hetero_graph import HeteroGraph
from repro.tensor import init as tensor_init
from repro.tensor.nn import Module, Parameter
from repro.tensor.tensor import Tensor


class ReferenceRGNNLayer(Module):
    """Base class of the reference (tensor-substrate) RGNN layers.

    Parameters are stored by the same names as the corresponding compiled
    plan's weight buffers so that tests can copy weights between the compiled
    module and the reference and compare outputs exactly.
    """

    def __init__(self, graph: HeteroGraph, in_dim: int, out_dim: int, seed: int = 0):
        super().__init__()
        self.graph = graph
        self.in_dim = in_dim
        self.out_dim = out_dim
        self._seed = seed

    # ------------------------------------------------------------------
    def _add_parameter(self, name: str, shape, offset: int) -> Parameter:
        parameter = Parameter(tensor_init.xavier_uniform(shape, seed=self._seed + offset))
        setattr(self, name, parameter)
        return parameter

    def named_parameter_dict(self) -> Dict[str, Parameter]:
        """Parameters keyed by their plan buffer names."""
        return {name: param for name, param in self.named_parameters()}

    def load_parameters(self, values: Mapping[str, np.ndarray]) -> None:
        """Overwrite parameters in place from arrays keyed by buffer name."""
        own = self.named_parameter_dict()
        for name, array in values.items():
            if name not in own:
                raise KeyError(f"unknown parameter {name!r}; known: {sorted(own)}")
            array = np.asarray(array, dtype=np.float64)
            if own[name].shape != array.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: expected {own[name].shape}, got {array.shape}"
                )
            own[name].data[...] = array

    # ------------------------------------------------------------------
    def _as_tensor(self, features) -> Tensor:
        if isinstance(features, Tensor):
            return features
        return Tensor(np.asarray(features, dtype=np.float64))

    def forward(self, features) -> Dict[str, Tensor]:  # pragma: no cover - abstract
        raise NotImplementedError
