"""Relational graph attention network (RGAT), Busbridge et al.

Single-head layer, following Figure 2 and Listing 1 of the paper::

    hs[e]   = h[src(e)] @ W[etype(e)]             # edge message
    atts[e] = < hs[e], w_s[etype(e)] >            # source attention term
    ht[e]   = h[dst(e)] @ W[etype(e)]
    attt[e] = < ht[e], w_t[etype(e)] >            # destination attention term
    att[e]  = edge_softmax( leaky_relu(atts + attt) )
    out[v]  = sum_{e -> v} att[e] * hs[e]

Linear operator reordering rewrites ``atts``/``attt`` into dot products with
pre-multiplied per-type vectors (``W @ w``), after which the ``ht`` projection
is dead code; compact materialization stores ``hs`` (and ``atts``) once per
unique ``(source node, edge type)`` pair.
"""

from __future__ import annotations

from typing import Dict


from repro.graph.hetero_graph import HeteroGraph
from repro.ir.inter_op.builder import ProgramBuilder
from repro.ir.inter_op.program import InterOpProgram
from repro.ir.inter_op.space import NodeBinding
from repro.models.common import ReferenceRGNNLayer
from repro.tensor import ops
from repro.tensor.tensor import Tensor

#: Negative slope of the leaky ReLU used for attention logits.
LEAKY_RELU_SLOPE = 0.2


def build_rgat_program(in_dim: int = 64, out_dim: int = 64) -> InterOpProgram:
    """Single-headed RGAT layer in the Hector inter-operator level IR."""
    g = ProgramBuilder("rgat", in_dim=in_dim, out_dim=out_dim)
    h = g.input_node_feature("h")
    W = g.weight("W", (in_dim, out_dim), per_type="edge_type")
    w_s = g.weight("w_s", (out_dim,), per_type="edge_type")
    w_t = g.weight("w_t", (out_dim,), per_type="edge_type")
    # Message generation (edgewise): hs = e.src.feature * W[e.etype]
    hs = g.typed_linear(h, W, "hs", binding=NodeBinding.SRC)
    atts = g.typed_vec_dot(hs, w_s, "atts")
    ht = g.typed_linear(h, W, "ht", binding=NodeBinding.DST)
    attt = g.typed_vec_dot(ht, w_t, "attt")
    att_raw = g.binary("add", atts, attt, "att_raw")
    att_l = g.unary("leaky_relu", att_raw, "att_l", negative_slope=LEAKY_RELU_SLOPE)
    att = g.edge_softmax(att_l, "att")
    # Node aggregation: weighted sum of edge messages.
    out = g.aggregate(hs, "out", scale=att)
    g.mark_output(out)
    return g.finish()


class RGATReference(ReferenceRGNNLayer):
    """Reference single-head RGAT layer on the tensor substrate."""

    def __init__(self, graph: HeteroGraph, in_dim: int = 64, out_dim: int = 64, seed: int = 0):
        super().__init__(graph, in_dim, out_dim, seed)
        self._add_parameter("W", (graph.num_edge_types, in_dim, out_dim), offset=0)
        self._add_parameter("w_s", (graph.num_edge_types, out_dim), offset=1)
        self._add_parameter("w_t", (graph.num_edge_types, out_dim), offset=2)

    def forward(self, features) -> Dict[str, Tensor]:
        """Compute attention-weighted messages aggregated at destinations."""
        graph = self.graph
        h = self._as_tensor(features)
        etype = graph.edge_type
        h_src = ops.gather_rows(h, graph.edge_src)
        h_dst = ops.gather_rows(h, graph.edge_dst)
        hs = ops.typed_linear(h_src, self.W, etype, strategy="loop")
        ht = ops.typed_linear(h_dst, self.W, etype, strategy="loop")
        w_s_e = ops.gather_rows(self.w_s, etype)
        w_t_e = ops.gather_rows(self.w_t, etype)
        atts = ops.dot_product(hs, w_s_e)
        attt = ops.dot_product(ht, w_t_e)
        att_logits = ops.leaky_relu(atts + attt, LEAKY_RELU_SLOPE)
        att = ops.edge_softmax(att_logits, graph.edge_dst, graph.num_nodes)
        weighted = hs * att.reshape(-1, 1)
        out = ops.scatter_add(weighted, graph.edge_dst, graph.num_nodes)
        return {"out": out}
