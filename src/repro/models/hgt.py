"""Heterogeneous graph transformer (HGT), Hu et al.

Single-head layer following Figure 2 of the paper (simplified to one head,
as in the paper's evaluation)::

    K[n]     = h[n] @ W_K[ntype(n)]               # nodewise projections
    Q[n]     = h[n] @ W_Q[ntype(n)]
    V[n]     = h[n] @ W_V[ntype(n)]
    k_att[e] = K[src(e)] @ W_ATT[etype(e)]        # edgewise typed linear
    att[e]   = edge_softmax( <k_att[e], Q[dst(e)]> / sqrt(d) )
    msg[e]   = V[src(e)] @ W_MSG[etype(e)]        # edgewise typed linear
    agg[v]   = sum_{e -> v} att[e] * msg[e]
    h_out[v] = agg[v] @ W_O[ntype(v)]  (+ h[v] residual when dims match)

Linear operator reordering collapses ``K`` followed by ``W_ATT`` into a single
per-edge-type weight product; compact materialization stores ``k_att`` and
``msg`` per unique ``(source node, edge type)`` pair.
"""

from __future__ import annotations

import math
from typing import Dict


from repro.graph.hetero_graph import HeteroGraph
from repro.ir.inter_op.builder import ProgramBuilder
from repro.ir.inter_op.program import InterOpProgram
from repro.ir.inter_op.space import LoopContext, NodeBinding, TypeSelector
from repro.models.common import ReferenceRGNNLayer
from repro.tensor import ops
from repro.tensor.tensor import Tensor


def build_hgt_program(in_dim: int = 64, out_dim: int = 64) -> InterOpProgram:
    """Single-headed HGT layer in the Hector inter-operator level IR."""
    g = ProgramBuilder("hgt", in_dim=in_dim, out_dim=out_dim)
    hidden = out_dim
    h = g.input_node_feature("h")
    W_K = g.weight("W_K", (in_dim, hidden), per_type="node_type")
    W_Q = g.weight("W_Q", (in_dim, hidden), per_type="node_type")
    W_V = g.weight("W_V", (in_dim, hidden), per_type="node_type")
    W_ATT = g.weight("W_ATT", (hidden, hidden), per_type="edge_type")
    W_MSG = g.weight("W_MSG", (hidden, hidden), per_type="edge_type")
    W_O = g.weight("W_O", (hidden, out_dim), per_type="node_type")
    # Nodewise typed projections into the shared semantic space.
    K = g.typed_linear(h, W_K, "K", type_selector=TypeSelector.SELF_NODE_TYPE,
                       context=LoopContext.NODEWISE)
    Q = g.typed_linear(h, W_Q, "Q", type_selector=TypeSelector.SELF_NODE_TYPE,
                       context=LoopContext.NODEWISE)
    V = g.typed_linear(h, W_V, "V", type_selector=TypeSelector.SELF_NODE_TYPE,
                       context=LoopContext.NODEWISE)
    # Edge attention: dot of the relation-projected key with the destination query.
    k_att = g.typed_linear(K, W_ATT, "k_att", binding=NodeBinding.SRC)
    att_raw = g.dot_product(k_att, Q, "att_raw", bindings={Q: NodeBinding.DST})
    att_scaled = g.unary("scale_const", att_raw, "att_scaled", constant=1.0 / math.sqrt(hidden))
    att = g.edge_softmax(att_scaled, "att")
    # Edge messages and attention-weighted aggregation.
    msg = g.typed_linear(V, W_MSG, "msg", binding=NodeBinding.SRC)
    agg = g.aggregate(msg, "agg", scale=att)
    # Output projection by destination node type, plus residual when dims match.
    out_proj = g.typed_linear(agg, W_O, "out_proj", type_selector=TypeSelector.SELF_NODE_TYPE,
                              context=LoopContext.NODEWISE)
    if in_dim == out_dim:
        h_out = g.binary("add", out_proj, h, "h_out", context=LoopContext.NODEWISE)
    else:
        h_out = g.copy(out_proj, "h_out")
    g.mark_output(h_out)
    return g.finish()


class HGTReference(ReferenceRGNNLayer):
    """Reference single-head HGT layer on the tensor substrate."""

    def __init__(self, graph: HeteroGraph, in_dim: int = 64, out_dim: int = 64, seed: int = 0):
        super().__init__(graph, in_dim, out_dim, seed)
        hidden = out_dim
        self.hidden_dim = hidden
        self._add_parameter("W_K", (graph.num_node_types, in_dim, hidden), offset=0)
        self._add_parameter("W_Q", (graph.num_node_types, in_dim, hidden), offset=1)
        self._add_parameter("W_V", (graph.num_node_types, in_dim, hidden), offset=2)
        self._add_parameter("W_ATT", (graph.num_edge_types, hidden, hidden), offset=3)
        self._add_parameter("W_MSG", (graph.num_edge_types, hidden, hidden), offset=4)
        self._add_parameter("W_O", (graph.num_node_types, hidden, out_dim), offset=5)

    def forward(self, features) -> Dict[str, Tensor]:
        """Compute the HGT layer output (attention, messages, output projection)."""
        graph = self.graph
        h = self._as_tensor(features)
        ntype = graph.node_type_ids
        etype = graph.edge_type
        K = ops.typed_linear(h, self.W_K, ntype, strategy="loop")
        Q = ops.typed_linear(h, self.W_Q, ntype, strategy="loop")
        V = ops.typed_linear(h, self.W_V, ntype, strategy="loop")
        K_src = ops.gather_rows(K, graph.edge_src)
        Q_dst = ops.gather_rows(Q, graph.edge_dst)
        V_src = ops.gather_rows(V, graph.edge_src)
        k_att = ops.typed_linear(K_src, self.W_ATT, etype, strategy="loop")
        att_logits = ops.dot_product(k_att, Q_dst) * (1.0 / math.sqrt(self.hidden_dim))
        att = ops.edge_softmax(att_logits, graph.edge_dst, graph.num_nodes)
        msg = ops.typed_linear(V_src, self.W_MSG, etype, strategy="loop")
        weighted = msg * att.reshape(-1, 1)
        agg = ops.scatter_add(weighted, graph.edge_dst, graph.num_nodes)
        out_proj = ops.typed_linear(agg, self.W_O, ntype, strategy="loop")
        if self.in_dim == self.out_dim:
            return {"h_out": out_proj + h}
        return {"h_out": out_proj}
