"""Relational graph convolutional network (RGCN), Schlichtkrull et al.

Layer definition (Formula 1 of the paper)::

    h_out[v] = relu( h[v] W0  +  sum_r sum_{u in N_r(v)} (1 / c_{v,r}) h[u] W_r )

The Hector-IR builder expresses the layer as an edgewise typed linear
(message generation), an edgewise scaling by the normalisation factor, a
nodewise aggregation, and the virtual self-loop applied through ``W0``.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.graph.hetero_graph import HeteroGraph
from repro.ir.inter_op.builder import ProgramBuilder
from repro.ir.inter_op.program import InterOpProgram
from repro.ir.inter_op.space import LoopContext, NodeBinding
from repro.models.common import ReferenceRGNNLayer
from repro.tensor import ops
from repro.tensor.tensor import Tensor


def build_rgcn_program(in_dim: int = 64, out_dim: int = 64) -> InterOpProgram:
    """RGCN layer in the Hector inter-operator level IR."""
    g = ProgramBuilder("rgcn", in_dim=in_dim, out_dim=out_dim)
    h = g.input_node_feature("h")
    norm = g.input_edge_scalar("norm")
    W = g.weight("W", (in_dim, out_dim), per_type="edge_type")
    W0 = g.weight("W0", (in_dim, out_dim), per_type=None)
    # for e in g.edges(): e["msg"] = e.src.feature * W[e.etype]
    msg = g.typed_linear(h, W, "msg", binding=NodeBinding.SRC)
    # for e in g.edges(): e["wmsg"] = e["msg"] * norm[e]
    wmsg = g.scale(msg, norm, "wmsg")
    # for n in g.dst_nodes(): n["agg"] = sum of incoming e["wmsg"]
    agg = g.aggregate(wmsg, "agg")
    # virtual self-loop: n["self_msg"] = n.feature * W0
    self_msg = g.linear(h, W0, "self_msg", context=LoopContext.NODEWISE)
    h_pre = g.binary("add", agg, self_msg, "h_pre", context=LoopContext.NODEWISE)
    h_out = g.unary("relu", h_pre, "h_out", context=LoopContext.NODEWISE)
    g.mark_output(h_out)
    return g.finish()


class RGCNReference(ReferenceRGNNLayer):
    """Reference RGCN layer on the tensor substrate (ground truth)."""

    def __init__(self, graph: HeteroGraph, in_dim: int = 64, out_dim: int = 64, seed: int = 0):
        super().__init__(graph, in_dim, out_dim, seed)
        self._add_parameter("W", (graph.num_edge_types, in_dim, out_dim), offset=0)
        self._add_parameter("W0", (in_dim, out_dim), offset=1)

    def forward(self, features, norm: np.ndarray = None) -> Dict[str, Tensor]:
        """Compute the layer output.

        Args:
            features: ``(num_nodes, in_dim)`` input node features.
            norm: optional per-edge ``1 / c_{v,r}`` factors; derived from the
                graph when omitted.

        Returns:
            ``{"h_out": (num_nodes, out_dim) tensor}``.
        """
        graph = self.graph
        h = self._as_tensor(features)
        if norm is None:
            norm = graph.degree_normalization()
        norm_t = Tensor(np.asarray(norm, dtype=np.float64).reshape(-1, 1))
        h_src = ops.gather_rows(h, graph.edge_src)
        msg = ops.typed_linear(h_src, self.W, graph.edge_type, strategy="loop")
        wmsg = msg * norm_t
        agg = ops.scatter_add(wmsg, graph.edge_dst, graph.num_nodes)
        self_msg = h.matmul(self.W0)
        return {"h_out": (agg + self_msg).relu()}
