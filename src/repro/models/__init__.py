"""RGNN models: Hector-IR definitions and reference implementations.

Each model module provides

* ``build_*_program(in_dim, out_dim)`` — the model expressed in the
  inter-operator level IR (the "51 lines of code" input to the compiler), and
* a ``*Reference`` module — the same layer implemented directly on the tensor
  substrate (gather / typed linear / edge softmax / scatter), used as the
  numerical ground truth for the generated kernels and as the computational
  core of the baseline system simulators.
"""

from typing import Callable, Dict

from repro.ir.inter_op.program import InterOpProgram
from repro.models.rgcn import RGCNReference, build_rgcn_program
from repro.models.rgat import RGATReference, build_rgat_program
from repro.models.hgt import HGTReference, build_hgt_program

#: Registry of inter-op IR builders keyed by model name.
MODEL_BUILDERS: Dict[str, Callable[..., InterOpProgram]] = {
    "rgcn": build_rgcn_program,
    "rgat": build_rgat_program,
    "hgt": build_hgt_program,
}

#: Registry of reference implementations keyed by model name.
REFERENCE_CLASSES = {
    "rgcn": RGCNReference,
    "rgat": RGATReference,
    "hgt": HGTReference,
}

#: Models evaluated in the paper, in figure order.
MODEL_NAMES = ["rgcn", "rgat", "hgt"]


def build_program(model: str, in_dim: int = 64, out_dim: int = 64) -> InterOpProgram:
    """Build the inter-op IR program of a named model."""
    try:
        builder = MODEL_BUILDERS[model]
    except KeyError:
        raise KeyError(f"unknown model {model!r}; known: {sorted(MODEL_BUILDERS)}") from None
    return builder(in_dim=in_dim, out_dim=out_dim)


__all__ = [
    "MODEL_BUILDERS",
    "REFERENCE_CLASSES",
    "MODEL_NAMES",
    "build_program",
    "build_rgcn_program",
    "build_rgat_program",
    "build_hgt_program",
    "RGCNReference",
    "RGATReference",
    "HGTReference",
]
