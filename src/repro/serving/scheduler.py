"""The serving event loop: clocks, fairness, and cross-endpoint scheduling.

The router separates three concerns the legacy engine fused into one method:

* **Clocks** — :class:`VirtualClock` replays a timestamped request stream in
  virtual time (arrivals are simulated offsets; service time is still the
  measured wall clock of sampling + execution), which keeps tests and studies
  fast and deterministic.  :class:`MonotonicClock` runs the same loop against
  ``time.monotonic()``, sleeping until the next admission — the "real"
  deployment mode.  Both expose ``now`` / ``advance_to`` / ``advance_by`` so
  the loop is clock-agnostic.

* **Batching** — :func:`partition_into_batches` applies the micro-batching
  policy of *one* endpoint to its (arrival-sorted) stream: a batch closes
  when it reaches ``max_batch_size`` (ready at its last member's arrival) or
  when admitting the next request would make the batch's oldest member wait
  longer than ``batch_timeout_s`` (ready when that window expires).  This is
  exactly the legacy ``ServingEngine.serve`` rule, factored out so every
  endpoint batches independently of its neighbours.

* **Fairness** — :class:`WeightedRoundRobin` implements smooth WRR (the
  nginx algorithm): each ready endpoint accumulates its weight, the largest
  accumulator wins the executor slot, and the winner is debited by the total
  active weight.  A weight-3 endpoint gets ~3 of every 4 contended slots,
  interleaved (A A B A, not A A A B), and a weight-1 endpoint is never
  starved.

:func:`run_event_loop` ties them together: admit whichever batches are ready
at the current clock, pick among them by WRR, execute, advance the clock by
the measured service time, repeat.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Mapping, Optional, Sequence

from repro.serving.endpoint import ServingRequest


class VirtualClock:
    """Simulated time: starts at 0, advances only when told to."""

    def __init__(self, start_s: float = 0.0):
        self._now = float(start_s)

    def now(self) -> float:
        return self._now

    def advance_to(self, when_s: float) -> None:
        """Jump forward to ``when_s`` (never backwards)."""
        self._now = max(self._now, float(when_s))

    def advance_by(self, seconds: float) -> None:
        """Account measured service time against the virtual clock."""
        self._now += max(0.0, float(seconds))


class MonotonicClock:
    """Real time relative to construction, backed by ``time.monotonic()``.

    ``advance_to`` sleeps until the target; ``advance_by`` is a no-op because
    real service time has already elapsed by the time it is called.
    """

    def __init__(self):
        self._origin = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._origin

    def advance_to(self, when_s: float) -> None:
        delay = when_s - self.now()
        if delay > 0:
            time.sleep(delay)

    def advance_by(self, seconds: float) -> None:
        pass


class WeightedRoundRobin:
    """Smooth weighted round-robin over named participants.

    Deterministic: ties break by registration order, and the accumulated
    credit of an idle participant carries over, so a low-weight endpoint that
    waited through a burst is served promptly once ready.
    """

    def __init__(self):
        self._weights: Dict[str, int] = {}
        self._credit: Dict[str, float] = {}

    def register(self, name: str, weight: int) -> None:
        if not isinstance(weight, int) or weight < 1:
            raise ValueError(f"scheduler weight for {name!r} must be an integer >= 1")
        self._weights[name] = weight
        self._credit.setdefault(name, 0.0)

    def weight(self, name: str) -> int:
        return self._weights[name]

    def pick(self, ready: Sequence[str]) -> str:
        """The next participant to run, among those currently ready."""
        if not ready:
            raise ValueError("pick() needs at least one ready participant")
        for name in ready:
            if name not in self._weights:
                raise KeyError(f"unregistered scheduler participant {name!r}")
        for name in ready:
            self._credit[name] += self._weights[name]
        # max() keeps the first maximum; `ready` arrives in registration
        # order from the router, so ties resolve deterministically.
        chosen = max(ready, key=lambda name: self._credit[name])
        self._credit[chosen] -= sum(self._weights[name] for name in ready)
        return chosen


@dataclass
class ScheduledBatch:
    """One endpoint's micro-batch plus the time it becomes schedulable."""

    endpoint: str
    requests: List[ServingRequest]
    ready_s: float = 0.0


def partition_into_batches(
    requests: Sequence[ServingRequest],
    endpoint: str,
    max_batch_size: int,
    batch_timeout_s: float,
) -> List[ScheduledBatch]:
    """Split one endpoint's request stream into timed micro-batches.

    ``requests`` must belong to one endpoint; they are sorted by arrival
    here.  The rule matches the legacy engine exactly (see module docstring),
    so a one-endpoint router reproduces the seed batching bit for bit.
    """
    ordered = sorted(requests, key=lambda request: request.arrival_s)
    batches: List[ScheduledBatch] = []
    index = 0
    while index < len(ordered):
        batch = [ordered[index]]
        window_end = ordered[index].arrival_s + batch_timeout_s
        index += 1
        while (
            index < len(ordered)
            and len(batch) < max_batch_size
            and ordered[index].arrival_s <= window_end
        ):
            batch.append(ordered[index])
            index += 1
        ready = batch[-1].arrival_s if len(batch) == max_batch_size else window_end
        batches.append(ScheduledBatch(endpoint=endpoint, requests=batch, ready_s=ready))
    return batches


@dataclass
class EventLoopResult:
    """What one :func:`run_event_loop` call did, for reports and tests."""

    execution_order: List[str] = field(default_factory=list)
    completed: List[ServingRequest] = field(default_factory=list)
    final_clock_s: float = 0.0


def run_event_loop(
    queues: Mapping[str, Deque[ScheduledBatch]],
    wrr: WeightedRoundRobin,
    execute: Callable[[str, List[ServingRequest]], float],
    clock=None,
    on_complete: Optional[Callable[[str, List[ServingRequest], float], None]] = None,
    stamp_latency: bool = True,
) -> EventLoopResult:
    """Drain per-endpoint batch queues through one shared executor.

    Args:
        queues: endpoint name → FIFO of :class:`ScheduledBatch` (each queue
            must be internally arrival-ordered; iteration order of the
            mapping defines WRR tie-breaking).
        wrr: the fairness policy (every queue's endpoint must be registered).
        execute: ``(endpoint, requests) -> measured service seconds``.
        clock: a :class:`VirtualClock` (default) or :class:`MonotonicClock`.
        on_complete: called after each batch with ``(endpoint, requests,
            finish_s)``; per-request latency is already set to
            ``finish_s - arrival_s`` when it runs.
        stamp_latency: set each request's ``latency_s`` to queueing + service
            (``finish_s - arrival_s``).  The flush path passes ``False`` —
            its contract is service time only, stamped by its executor.
    """
    clock = clock if clock is not None else VirtualClock()
    result = EventLoopResult()
    live: Dict[str, Deque[ScheduledBatch]] = {
        name: queue if isinstance(queue, deque) else deque(queue)
        for name, queue in queues.items()
        if queue
    }
    while live:
        now = clock.now()
        ready = [name for name, queue in live.items() if queue[0].ready_s <= now]
        if not ready:
            clock.advance_to(min(queue[0].ready_s for queue in live.values()))
            continue
        name = wrr.pick(ready)
        batch = live[name].popleft()
        if not live[name]:
            del live[name]
        elapsed = execute(name, batch.requests)
        clock.advance_by(elapsed)
        finish = clock.now()
        if stamp_latency:
            for request in batch.requests:
                request.latency_s = finish - request.arrival_s
        result.execution_order.append(name)
        result.completed.extend(batch.requests)
        if on_complete is not None:
            on_complete(name, batch.requests, finish)
    result.final_clock_s = clock.now()
    return result
