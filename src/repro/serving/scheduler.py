"""The serving event loop: clocks, fairness, and cross-endpoint scheduling.

The router separates three concerns the legacy engine fused into one method:

* **Clocks** — :class:`VirtualClock` replays a timestamped request stream in
  virtual time (arrivals are simulated offsets; service time is still the
  measured wall clock of sampling + execution), which keeps tests and studies
  fast and deterministic.  :class:`MonotonicClock` runs the same loop against
  ``time.monotonic()``, sleeping until the next admission — the "real"
  deployment mode.  Both expose ``now`` / ``advance_to`` / ``advance_by`` so
  the loop is clock-agnostic.

* **Batching** — :func:`partition_into_batches` applies the micro-batching
  policy of *one* endpoint to its (arrival-sorted) stream: a batch closes
  when it reaches ``max_batch_size`` (ready at its last member's arrival) or
  when admitting the next request would make the batch's oldest member wait
  longer than ``batch_timeout_s`` (ready when that window expires).  This is
  exactly the legacy ``ServingEngine.serve`` rule, factored out so every
  endpoint batches independently of its neighbours.

* **Fairness** — :class:`WeightedRoundRobin` implements smooth WRR (the
  nginx algorithm): each ready endpoint accumulates its weight, the largest
  accumulator wins the executor slot, and the winner is debited by the total
  active weight.  A weight-3 endpoint gets ~3 of every 4 contended slots,
  interleaved (A A B A, not A A A B), and a weight-1 endpoint is never
  starved.

:func:`run_event_loop` ties them together: admit whichever batches are ready
at the current clock, pick among them by WRR, execute, advance the clock by
the measured service time, repeat.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.serving.admission import AdmissionController
from repro.serving.endpoint import ServingRequest


class VirtualClock:
    """Simulated time: starts at 0, advances only when told to."""

    def __init__(self, start_s: float = 0.0):
        self._now = float(start_s)

    def now(self) -> float:
        return self._now

    def advance_to(self, when_s: float) -> None:
        """Jump forward to ``when_s`` (never backwards)."""
        self._now = max(self._now, float(when_s))

    def advance_by(self, seconds: float) -> None:
        """Account measured service time against the virtual clock."""
        self._now += max(0.0, float(seconds))


class MonotonicClock:
    """Real time relative to construction, backed by ``time.monotonic()``.

    ``advance_to`` sleeps until the target; ``advance_by`` is a no-op because
    real service time has already elapsed by the time it is called.
    """

    def __init__(self):
        self._origin = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._origin

    def advance_to(self, when_s: float) -> None:
        delay = when_s - self.now()
        if delay > 0:
            time.sleep(delay)

    def advance_by(self, seconds: float) -> None:
        pass


class WeightedRoundRobin:
    """Smooth weighted round-robin over named participants.

    Deterministic: ties break by registration order, and the accumulated
    credit of an idle participant carries over, so a low-weight endpoint that
    waited through a burst is served promptly once ready.
    """

    def __init__(self):
        self._weights: Dict[str, int] = {}
        self._credit: Dict[str, float] = {}

    def register(self, name: str, weight: int) -> None:
        if not isinstance(weight, int) or weight < 1:
            raise ValueError(f"scheduler weight for {name!r} must be an integer >= 1")
        self._weights[name] = weight
        self._credit.setdefault(name, 0.0)

    def weight(self, name: str) -> int:
        return self._weights[name]

    def pick(self, ready: Sequence[str]) -> str:
        """The next participant to run, among those currently ready."""
        if not ready:
            raise ValueError("pick() needs at least one ready participant")
        for name in ready:
            if name not in self._weights:
                raise KeyError(f"unregistered scheduler participant {name!r}")
        for name in ready:
            self._credit[name] += self._weights[name]
        # max() keeps the first maximum; `ready` arrives in registration
        # order from the router, so ties resolve deterministically.
        chosen = max(ready, key=lambda name: self._credit[name])
        self._credit[chosen] -= sum(self._weights[name] for name in ready)
        return chosen


@dataclass
class ScheduledBatch:
    """One endpoint's micro-batch plus the time it becomes schedulable."""

    endpoint: str
    requests: List[ServingRequest]
    ready_s: float = 0.0


def partition_into_batches(
    requests: Sequence[ServingRequest],
    endpoint: str,
    max_batch_size: int,
    batch_timeout_s: float,
) -> List[ScheduledBatch]:
    """Split one endpoint's request stream into timed micro-batches.

    ``requests`` must belong to one endpoint; they are sorted by arrival
    here.  The rule matches the legacy engine exactly (see module docstring),
    so a one-endpoint router reproduces the seed batching bit for bit.
    """
    ordered = sorted(requests, key=lambda request: request.arrival_s)
    batches: List[ScheduledBatch] = []
    index = 0
    while index < len(ordered):
        batch = [ordered[index]]
        window_end = ordered[index].arrival_s + batch_timeout_s
        index += 1
        while (
            index < len(ordered)
            and len(batch) < max_batch_size
            and ordered[index].arrival_s <= window_end
        ):
            batch.append(ordered[index])
            index += 1
        ready = batch[-1].arrival_s if len(batch) == max_batch_size else window_end
        batches.append(ScheduledBatch(endpoint=endpoint, requests=batch, ready_s=ready))
    return batches


@dataclass
class EventLoopResult:
    """What one :func:`run_event_loop` call did, for reports and tests."""

    execution_order: List[str] = field(default_factory=list)
    completed: List[ServingRequest] = field(default_factory=list)
    final_clock_s: float = 0.0


def run_event_loop(
    queues: Mapping[str, Deque[ScheduledBatch]],
    wrr: WeightedRoundRobin,
    execute: Callable[[str, List[ServingRequest]], float],
    clock=None,
    on_complete: Optional[Callable[[str, List[ServingRequest], float], None]] = None,
    stamp_latency: bool = True,
) -> EventLoopResult:
    """Drain per-endpoint batch queues through one shared executor.

    Args:
        queues: endpoint name → FIFO of :class:`ScheduledBatch` (each queue
            must be internally arrival-ordered; iteration order of the
            mapping defines WRR tie-breaking).
        wrr: the fairness policy (every queue's endpoint must be registered).
        execute: ``(endpoint, requests) -> measured service seconds``.
        clock: a :class:`VirtualClock` (default) or :class:`MonotonicClock`.
        on_complete: called after each batch with ``(endpoint, requests,
            finish_s)``; per-request latency is already set to
            ``finish_s - arrival_s`` when it runs.
        stamp_latency: set each request's ``latency_s`` to queueing + service
            (``finish_s - arrival_s``).  The flush path passes ``False`` —
            its contract is service time only, stamped by its executor.
    """
    clock = clock if clock is not None else VirtualClock()
    result = EventLoopResult()
    live: Dict[str, Deque[ScheduledBatch]] = {
        name: queue if isinstance(queue, deque) else deque(queue)
        for name, queue in queues.items()
        if queue
    }
    while live:
        now = clock.now()
        ready = [name for name, queue in live.items() if queue[0].ready_s <= now]
        if not ready:
            clock.advance_to(min(queue[0].ready_s for queue in live.values()))
            continue
        name = wrr.pick(ready)
        batch = live[name].popleft()
        if not live[name]:
            del live[name]
        elapsed = execute(name, batch.requests)
        clock.advance_by(elapsed)
        finish = clock.now()
        if stamp_latency:
            for request in batch.requests:
                request.latency_s = finish - request.arrival_s
        result.execution_order.append(name)
        result.completed.extend(batch.requests)
        if on_complete is not None:
            on_complete(name, batch.requests, finish)
    result.final_clock_s = clock.now()
    return result


# ----------------------------------------------------------------------
# the online serving loop: arrival-driven batching, admission, N workers
# ----------------------------------------------------------------------

@dataclass
class LaneSpec:
    """One endpoint's scheduling configuration, as the serving loop sees it.

    Decoupled from :class:`~repro.serving.endpoint.Endpoint` so the admission
    property tests can drive the loop with stub executors and synthetic
    service times.
    """

    max_batch_size: int
    batch_timeout_s: float
    admission: Optional[AdmissionController] = None


@dataclass
class ServingLoopResult:
    """What one :func:`run_serving_loop` call did."""

    execution_order: List[str] = field(default_factory=list)
    completed: List[ServingRequest] = field(default_factory=list)
    shed: List[ServingRequest] = field(default_factory=list)
    final_clock_s: float = 0.0
    #: Virtual time of the last batch completion (the parallel schedule
    #: length; aggregate throughput = completed requests / makespan).
    makespan_s: float = 0.0
    #: Sum of every executed batch's service seconds — the serial schedule
    #: length; ``busy_s / makespan_s`` is the modelled executor speedup.
    busy_s: float = 0.0
    workers: int = 1
    queue_depth_high_water: Dict[str, int] = field(default_factory=dict)


class _Lane:
    """Mutable per-endpoint loop state (open batch, ready queue, depth)."""

    __slots__ = ("spec", "open", "window_end_s", "ready", "depth", "high_water", "busy")

    def __init__(self, spec: LaneSpec):
        self.spec = spec
        self.open: List[ServingRequest] = []
        self.window_end_s = 0.0
        self.ready: Deque[ScheduledBatch] = deque()
        self.depth = 0          # admitted but not yet completed/shed
        self.high_water = 0
        self.busy = False       # one in-flight batch max: lane serialization


def run_serving_loop(
    arrivals: Sequence[Tuple[str, ServingRequest]],
    lanes: Mapping[str, LaneSpec],
    wrr: WeightedRoundRobin,
    execute: Callable[[str, List[ServingRequest]], float],
    clock=None,
    workers: int = 1,
    on_complete: Optional[Callable[[str, List[ServingRequest], float], None]] = None,
) -> ServingLoopResult:
    """The online event loop: admission → batching → WRR dispatch → N workers.

    Unlike :func:`run_event_loop` (which drains pre-partitioned queues), this
    loop processes *arrival events*: each request is admitted at its arrival
    time (token bucket / queue bound, when its lane has an
    :class:`~repro.serving.admission.AdmissionController`), joins its lane's
    open micro-batch under exactly the :func:`partition_into_batches` rule —
    batch membership is a pure function of the admitted arrival sequence, so
    replays are deterministic regardless of execution timing — and closed
    batches compete for executor workers under WRR, at most one in-flight
    batch per lane (lane serialization is what makes per-endpoint state —
    sampler, caches, stats — safe without locks and keeps per-lane execution
    order, and therefore per-request results, identical across worker
    counts).

    With ``workers == 1`` batches execute inline and the loop reproduces the
    single-threaded ``serve`` path decision-for-decision (same WRR sequence,
    same clock stops, same latencies).  With ``workers > 1`` batches run on a
    thread pool while the virtual clock tracks the *parallel* schedule: a
    batch dispatched at virtual time ``t`` with measured service ``s``
    finishes at ``t + s``; completions fold back on the loop thread in
    virtual-finish order, each first admitting any arrivals that virtually
    precede it.  Requests whose deadline expired before dispatch are shed,
    never executed.  A batch whose ``execute`` raises marks its requests
    ``"failed"`` (the router's executor narrows this to the poisonous
    request) and the loop keeps serving.

    Real wall-clock overlap additionally requires multiple CPUs; the virtual
    makespan accounts the schedule either way, which is what the throughput
    gates measure (the same convention as the scaling study's modelled
    aggregate throughput).
    """
    if workers < 1:
        raise ValueError("run_serving_loop needs workers >= 1")
    clock = clock if clock is not None else VirtualClock()
    result = ServingLoopResult(workers=workers)
    state = {name: _Lane(spec) for name, spec in lanes.items()}
    lane_index = {name: position for position, name in enumerate(state)}
    events: Deque[Tuple[str, ServingRequest]] = deque(
        sorted(
            ((name, request) for name, request in arrivals),
            key=lambda item: item[1].arrival_s,
        )
    )
    for name, _ in events:
        if name not in state:
            raise KeyError(f"arrival for unknown lane {name!r}")
    in_flight: Dict[str, Tuple[object, List[ServingRequest], float]] = {}
    free_slots = workers
    max_finish = 0.0
    pool = ThreadPoolExecutor(max_workers=workers) if workers > 1 else None

    def close_open(lane: _Lane, name: str, ready_s: float) -> None:
        lane.ready.append(ScheduledBatch(endpoint=name, requests=lane.open, ready_s=ready_s))
        lane.open = []

    def admit(name: str, request: ServingRequest) -> None:
        lane = state[name]
        if lane.spec.admission is not None:
            verdict = lane.spec.admission.admit(request, request.arrival_s, lane.depth)
            if verdict is not None:
                result.shed.append(request)
                return
        else:
            request.status = "queued"
        lane.depth += 1
        lane.high_water = max(lane.high_water, lane.depth)
        # The partition_into_batches rule, applied online: a batch closes when
        # an arrival falls past its oldest member's timeout window (ready at
        # the window's end) or when it reaches max size (ready at the filling
        # arrival).  Membership depends only on admitted arrival times.
        if lane.open and request.arrival_s > lane.window_end_s:
            close_open(lane, name, lane.window_end_s)
        if not lane.open:
            lane.open = [request]
            lane.window_end_s = request.arrival_s + lane.spec.batch_timeout_s
        else:
            lane.open.append(request)
        if len(lane.open) >= lane.spec.max_batch_size:
            close_open(lane, name, request.arrival_s)

    def process_due(limit_s: float) -> None:
        """Admit arrivals and close timed-out batches up to virtual ``limit_s``."""
        while events and events[0][1].arrival_s <= limit_s:
            admit(*events.popleft())
        for name, lane in state.items():
            # A timer close is only safe once no pending arrival can still
            # join the open batch (arrivals are processed in order).
            if (
                lane.open
                and lane.window_end_s <= limit_s
                and (not events or events[0][1].arrival_s > lane.window_end_s)
            ):
                close_open(lane, name, lane.window_end_s)

    def fold(name: str, requests: List[ServingRequest], service_s: float, finish_s: float) -> None:
        nonlocal max_finish
        lane = state[name]
        lane.depth -= len(requests)
        for request in requests:
            request.latency_s = finish_s - request.arrival_s
            if request.result is not None:
                request.status = "done"
            elif request.status != "failed":  # pragma: no cover - defensive
                request.status = "failed"
        result.completed.extend(requests)
        result.busy_s += service_s
        max_finish = max(max_finish, finish_s)
        if on_complete is not None:
            on_complete(name, requests, finish_s)

    def fold_finished(block: bool) -> bool:
        """Fold completed futures (optionally blocking for the first); returns
        whether anything folded."""
        nonlocal free_slots
        futures = [entry[0] for entry in in_flight.values()]
        if not futures:
            return False
        if block:
            wait(futures, return_when=FIRST_COMPLETED)
        finished = []
        for name, (future, requests, start_s) in list(in_flight.items()):
            if not future.done():
                continue
            try:
                service_s = float(future.result())
            except Exception as exc:  # last-resort guard; the router narrows
                service_s = 0.0
                for request in requests:
                    request.status = "failed"
                    if request.error is None:
                        request.error = f"endpoint {name!r}: batch execution raised {exc!r}"
            finished.append((start_s + service_s, name, requests, service_s))
        if not finished:
            return False
        # Fold in virtual-finish order, admitting arrivals that virtually
        # precede each completion first, so queue depths evolve in (almost)
        # virtual-time order even though real completions arrive unordered.
        for finish_s, name, requests, service_s in sorted(
            finished, key=lambda entry: (entry[0], lane_index[entry[1]])
        ):
            process_due(finish_s)
            clock.advance_to(finish_s)
            del in_flight[name]
            state[name].busy = False
            free_slots += 1
            fold(name, requests, service_s, finish_s)
        return True

    def dispatchable(now_s: float) -> List[str]:
        return [
            name
            for name, lane in state.items()
            if not lane.busy and lane.ready and lane.ready[0].ready_s <= now_s
        ]

    def dispatch_one(now_s: float) -> bool:
        nonlocal free_slots
        ready_names = dispatchable(now_s)
        if not ready_names or free_slots == 0:
            return False
        name = wrr.pick(ready_names)
        lane = state[name]
        batch = lane.ready.popleft()
        kept: List[ServingRequest] = []
        for request in batch.requests:
            if AdmissionController.deadline_expired(request, now_s):
                request.status = "shed-deadline"
                lane.depth -= 1
                result.shed.append(request)
            else:
                kept.append(request)
        if not kept:
            return True  # the batch was consumed; that is progress
        result.execution_order.append(name)
        if pool is None:
            try:
                service_s = float(execute(name, kept))
            except Exception as exc:  # last-resort guard; the router narrows
                service_s = 0.0
                for request in kept:
                    request.status = "failed"
                    if request.error is None:
                        request.error = f"endpoint {name!r}: batch execution raised {exc!r}"
            clock.advance_by(service_s)
            fold(name, kept, service_s, clock.now())
        else:
            lane.busy = True
            free_slots -= 1
            in_flight[name] = (pool.submit(execute, name, kept), kept, now_s)
        return True

    try:
        while True:
            now = clock.now()
            process_due(now)
            if dispatch_one(now):
                continue
            if fold_finished(block=False):
                continue
            # Nothing due: find the next known virtual event.
            candidates = []
            if events:
                candidates.append(events[0][1].arrival_s)
            for lane in state.values():
                if lane.open and (not events or events[0][1].arrival_s > lane.window_end_s):
                    candidates.append(lane.window_end_s)
                if not lane.busy and lane.ready:
                    candidates.append(lane.ready[0].ready_s)
            next_event = min(candidates) if candidates else None
            if next_event is not None and next_event > now and (free_slots > 0 or not in_flight):
                clock.advance_to(next_event)
                continue
            if in_flight:
                fold_finished(block=True)
                continue
            if next_event is None:
                break
            clock.advance_to(next_event)  # pragma: no cover - free_slots > 0 always holds here
    finally:
        if pool is not None:
            pool.shutdown(wait=True)
    result.final_clock_s = clock.now()
    result.makespan_s = max_finish
    result.queue_depth_high_water = {name: lane.high_water for name, lane in state.items()}
    return result
