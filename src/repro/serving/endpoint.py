"""Named serving endpoints: one compiled module + parent graph + sampler config.

An :class:`Endpoint` is the unit of multi-tenancy in the serving router: it
owns a schema-specialised compiled module, the parent graph requests sample
their blocks from, the per-endpoint feature store, sampler (fanouts + RNG),
micro-batching policy, an LRU **block cache** keyed on the frozen seed set
(hot seed sets skip resampling entirely), and per-endpoint telemetry.  Memory
is *not* owned here — endpoints lease arenas from the router's
:class:`~repro.runtime.planner.SharedArenaBudget` through a per-tenant
source, so all tenants stay under one byte cap.

Endpoints are created by :meth:`repro.serving.router.Router.register`; the
legacy single-tenant :class:`~repro.serving.engine.ServingEngine` is a thin
shim over a router with exactly one of them.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.frontend.compiler import compile_program
from repro.frontend.config import CompilerOptions
from repro.graph.generators import random_features
from repro.graph.hetero_graph import HeteroGraph
from repro.graph.sampler import Fanout, MinibatchBlock, NeighborSampler
from repro.runtime.module import CompiledRGNNModule
from repro.serving.stats import BatchRecord, EngineStats


@dataclass
class ServingRequest:
    """One in-flight query: seed nodes in, per-seed output rows out."""

    seeds: np.ndarray
    arrival_s: float = 0.0
    result: Optional[np.ndarray] = None
    latency_s: Optional[float] = None
    endpoint: Optional[str] = None

    @property
    def done(self) -> bool:
        return self.result is not None


def resolve_module(
    model: Union[str, CompiledRGNNModule],
    graph: HeteroGraph,
    *,
    in_dim: int,
    out_dim: int,
    options: Optional[CompilerOptions],
    seed: int,
) -> Tuple[CompiledRGNNModule, Optional[object], Optional[CompilerOptions]]:
    """Compile (or adopt) a module for one endpoint.

    Returns ``(module, program, options)``; ``program``/``options`` are kept
    only when the endpoint compiled the model itself with the compilation
    cache enabled — they drive the per-batch plan-replay check.  Adopted
    modules carry no program handle, so replay accounting is off for them
    (plan reuse still holds trivially: the endpoint binds the one module it
    was given).
    """
    if isinstance(model, CompiledRGNNModule):
        model.schema.validate_graph(graph)
        return model, None, None
    from repro.models import build_program  # local import to avoid a cycle

    options = options or CompilerOptions(emit_backward=False)
    program = build_program(model, in_dim=in_dim, out_dim=out_dim)
    result = compile_program(program, options, graph=graph)
    module = CompiledRGNNModule(result.plan, result.generated, graph, seed=seed)
    if options.enable_compilation_cache:
        # Per-batch replay checks only make sense when lookups are cache
        # hits; with the cache disabled each check would be a full,
        # discarded recompilation per batch.
        return module, program, options
    return module, None, None


def validate_endpoint_config(
    name: str,
    priority: int,
    max_batch_size: int,
    batch_timeout_s: float,
    block_cache_size: int,
) -> None:
    """Shared config checks, raised with the endpoint's name.

    Called by :meth:`Router.register` *before* the (expensive) model compile
    and again by :class:`Endpoint` itself for direct constructions — one
    implementation, so the two call sites cannot drift.
    """
    if not isinstance(priority, int) or priority < 1:
        raise ValueError(f"endpoint {name!r}: priority must be an integer >= 1")
    if max_batch_size < 1:
        raise ValueError(f"endpoint {name!r}: max_batch_size must be >= 1")
    if batch_timeout_s < 0:
        raise ValueError(f"endpoint {name!r}: batch_timeout_s must be >= 0")
    if block_cache_size < 0:
        raise ValueError(f"endpoint {name!r}: block_cache_size must be >= 0")


class Endpoint:
    """One tenant of the serving router.

    Args:
        name: the endpoint's registered name (appears in errors and reports).
        module: the schema-specialised compiled module serving this endpoint.
        graph: the parent graph requests sample their blocks from.
        features: ``(graph.num_nodes, in_dim)`` node-feature store; defaults
            to a deterministic random matrix keyed on ``seed``.
        fanouts: per-hop neighbor-sampling fanouts.
        priority: weighted-round-robin weight (≥ 1); an endpoint with weight
            3 gets ~3× the batch slots of a weight-1 endpoint under
            contention.
        max_batch_size / batch_timeout_s: micro-batching policy.
        arena_source: per-tenant view of the router's shared arena budget
            (``None`` only when memory planning is off for the plan).
        block_cache_size: LRU capacity of the sampled-block cache, in entries
            (0 disables caching — the legacy engine shim uses this to stay
            bit-identical with resample-every-batch behaviour under finite
            fanouts).
        program / options: compilation handles for plan-replay accounting
            (see :func:`resolve_module`).
        sampler_seed: RNG seed of the endpoint's private sampler.
    """

    def __init__(
        self,
        name: str,
        module: CompiledRGNNModule,
        graph: HeteroGraph,
        *,
        features: Optional[np.ndarray] = None,
        fanouts: Sequence[Fanout] = (None,),
        priority: int = 1,
        max_batch_size: int = 8,
        batch_timeout_s: float = 0.002,
        arena_source=None,
        block_cache_size: int = 32,
        program=None,
        options: Optional[CompilerOptions] = None,
        sampler_seed: int = 0,
        seed: int = 0,
    ):
        validate_endpoint_config(name, priority, max_batch_size, batch_timeout_s, block_cache_size)
        self.name = name
        self.module = module
        self.graph = graph
        self.priority = priority
        self.max_batch_size = max_batch_size
        self.batch_timeout_s = batch_timeout_s
        self.arena_source = arena_source
        self.block_cache_size = block_cache_size
        self._program = program
        self._options = options

        dim = module.input_feature_dim
        if features is None:
            if dim is None:
                raise ValueError(
                    f"endpoint {name!r}: the plan's input feature dimension is "
                    "ambiguous; pass features="
                )
            features = random_features(graph, dim, seed=seed)
        features = np.asarray(features, dtype=np.float64)
        if features.shape[0] != graph.num_nodes:
            raise ValueError(
                f"endpoint {name!r}: feature store must have {graph.num_nodes} rows "
                f"(graph {graph.name!r}), got {features.shape[0]}"
            )
        if dim is not None and features.shape[1] != dim:
            raise ValueError(
                f"endpoint {name!r}: feature store must have dimension {dim} (the "
                f"compiled plan's node-feature input), got {features.shape[1]}"
            )
        self.features = features
        self.sampler = NeighborSampler(graph, fanouts=fanouts, seed=sampler_seed)
        self.fanouts = self.sampler.fanouts
        self.output_name = module.plan.output_names[0]

        self.stats = EngineStats(arena=arena_source)
        self.plan_replays = 0
        self.plan_recompiles = 0
        self.pending: List[ServingRequest] = []
        self._block_cache: "OrderedDict[Tuple[int, ...], MinibatchBlock]" = OrderedDict()
        self.block_cache_hits = 0
        self.block_cache_misses = 0
        self.block_cache_evictions = 0

    # ------------------------------------------------------------------
    # request admission
    # ------------------------------------------------------------------
    def validate_seeds(self, seeds) -> np.ndarray:
        """Normalise and range-check seed ids *at admission time*.

        Out-of-range ids used to surface as a deep gather failure inside the
        sampler, long after ``submit()`` returned; here they fail fast with
        the endpoint name and the offending ids spelled out.
        """
        seeds = np.asarray(seeds, dtype=np.int64).reshape(-1)
        if seeds.size == 0:
            raise ValueError(
                f"endpoint {self.name!r}: a request needs at least one seed node"
            )
        bad = seeds[(seeds < 0) | (seeds >= self.graph.num_nodes)]
        if bad.size:
            shown = bad[:8].tolist()
            suffix = ", ..." if bad.size > 8 else ""
            raise ValueError(
                f"endpoint {self.name!r}: seed ids {shown}{suffix} out of range "
                f"[0, {self.graph.num_nodes}) for parent graph {self.graph.name!r}"
            )
        return seeds

    def make_request(self, seeds, arrival_s: float = 0.0) -> ServingRequest:
        return ServingRequest(
            seeds=self.validate_seeds(seeds),
            arrival_s=float(arrival_s),
            endpoint=self.name,
        )

    def submit(self, seeds, arrival_s: float = 0.0) -> ServingRequest:
        """Enqueue a request; it completes when the router schedules a batch."""
        request = self.make_request(seeds, arrival_s)
        self.pending.append(request)
        return request

    # ------------------------------------------------------------------
    # block cache
    # ------------------------------------------------------------------
    def _sample_block(self, union_seeds: np.ndarray) -> Tuple[MinibatchBlock, Optional[bool]]:
        """The batch's block, from the LRU cache when the seed set is hot.

        The key is the *frozen* (sorted, deduplicated) seed set, so request
        order and duplication inside a batch never fragment the cache.
        Returns ``(block, cache_hit)``; ``cache_hit`` is ``None`` when
        caching is disabled.

        Serving has no training epochs, so every actual sampling advances
        the sampler's epoch: each batch draws *fresh* neighborhoods under
        finite fanouts (the sampler's draw memo is epoch-scoped — without
        the resample, a hot seed set would be frozen to its first draw for
        the process lifetime).  Reuse of sampled blocks is the block cache's
        job, not the draw memo's.
        """
        if self.block_cache_size == 0:
            self.sampler.resample()
            return self.sampler.sample(union_seeds), None
        key = tuple(union_seeds.tolist())
        block = self._block_cache.get(key)
        if block is not None:
            self.block_cache_hits += 1
            self._block_cache.move_to_end(key)
            return block, True
        self.block_cache_misses += 1
        self.sampler.resample()
        block = self.sampler.sample(union_seeds)
        self._block_cache[key] = block
        while len(self._block_cache) > self.block_cache_size:
            self._block_cache.popitem(last=False)
            self.block_cache_evictions += 1
        return block, False

    def invalidate_block_cache(self) -> int:
        """Drop every cached block (e.g. after the parent graph's features or
        structure change); returns the number of entries dropped."""
        dropped = len(self._block_cache)
        self._block_cache.clear()
        return dropped

    @property
    def block_cache_len(self) -> int:
        return len(self._block_cache)

    @property
    def block_cache_hit_rate(self) -> float:
        lookups = self.block_cache_hits + self.block_cache_misses
        return self.block_cache_hits / lookups if lookups else 0.0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute_batch(self, requests: List[ServingRequest]) -> float:
        """Sample (or fetch), bind, execute, and scatter one micro-batch.

        Returns the measured service seconds (sampling + execution).
        """
        sample_start = time.perf_counter()
        all_seeds = np.concatenate([request.seeds for request in requests])
        union_seeds, inverse = np.unique(all_seeds, return_inverse=True)
        block, cache_hit = self._sample_block(union_seeds)
        execute_start = time.perf_counter()

        plan_replayed: Optional[bool] = None
        if self._program is not None:
            # Replay the compiled artefact through the cache, exactly as a
            # compile-per-request deployment would — except it must *hit*:
            # blocks share the parent's schema, and sizes never enter the key.
            result = compile_program(self._program, self._options, graph=block.graph)
            plan_replayed = result.plan is self.module.plan
            if plan_replayed:
                self.plan_replays += 1
            else:  # pragma: no cover - would indicate a cache-key regression
                self.plan_recompiles += 1

        binding = self.module.bind(
            block.graph,
            arena_source=self.arena_source,
            label=f"endpoint {self.name!r}",
        )
        outputs = binding.forward(block.gather_features(self.features))
        seed_rows = block.seed_outputs(outputs[self.output_name])
        offset = 0
        for request in requests:
            span = len(request.seeds)
            request.result = seed_rows[inverse[offset:offset + span]]
            offset += span
        done = time.perf_counter()

        self.stats.record_batch(BatchRecord(
            num_requests=len(requests),
            num_seeds=int(len(all_seeds)),
            block_nodes=block.num_nodes,
            block_edges=block.num_edges,
            sample_seconds=execute_start - sample_start,
            execute_seconds=done - execute_start,
            plan_replayed=plan_replayed,
            block_cache_hit=cache_hit,
        ))
        return done - sample_start

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Drop accumulated telemetry (e.g. after a warmup batch).

        Arena-budget and block-cache contents stay — warm state is precisely
        what warmup is for — but batch records, latencies, plan-replay and
        block-cache *counters* restart.
        """
        self.stats = EngineStats(arena=self.arena_source)
        self.plan_replays = 0
        self.plan_recompiles = 0
        self.block_cache_hits = 0
        self.block_cache_misses = 0
        self.block_cache_evictions = 0

    def report(self) -> Dict[str, object]:
        """Endpoint-scoped summary: throughput, latency, reuse, cache, memory."""
        out = self.stats.report()
        out["endpoint"] = self.name
        out["priority"] = self.priority
        out["max_batch_size"] = self.max_batch_size
        out["plan_replays"] = self.plan_replays
        out["plan_recompiles"] = self.plan_recompiles
        if self.block_cache_size:
            out["block_cache_hit_rate"] = round(self.block_cache_hit_rate, 3)
            out["block_cache_len"] = self.block_cache_len
            out["block_cache_evictions"] = self.block_cache_evictions
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Endpoint({self.name!r}, plan={self.module.plan.name!r}, "
            f"graph={self.graph.name!r}, priority={self.priority})"
        )
