"""Named serving endpoints: one compiled module + parent graph + sampler config.

An :class:`Endpoint` is the unit of multi-tenancy in the serving router: it
owns a schema-specialised compiled module (a single
:class:`~repro.runtime.module.CompiledRGNNModule` or a multi-layer
:class:`~repro.runtime.multilayer.MultiLayerModule` stack served per-hop),
the parent graph requests sample their blocks from, the per-endpoint feature
store, sampler (fanouts + RNG), micro-batching policy, a **per-seed block
cache** (each seed's drawn neighborhood is cached independently; a batch's
block is assembled from the per-seed draws with a cheap position union, so
overlapping-but-not-identical batches still reuse hot draws, and a feature
update invalidates only the seeds whose neighborhoods it touches), and
per-endpoint telemetry.  Memory is *not* owned here — endpoints lease arenas
from the router's :class:`~repro.runtime.planner.SharedArenaBudget` through a
per-tenant source, so all tenants stay under one byte cap.

Endpoints are created by :meth:`repro.serving.router.Router.register`; the
legacy single-tenant :class:`~repro.serving.engine.ServingEngine` is a thin
shim over a router with exactly one of them.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.frontend.compiler import compile_program
from repro.frontend.config import CompilerOptions
from repro.graph.generators import random_features
from repro.graph.hetero_graph import HeteroGraph
from repro.graph.sampler import Fanout, MinibatchBlock, NeighborSampler
from repro.runtime.module import CompiledRGNNModule
from repro.runtime.multilayer import MultiLayerModule
from repro.serving.admission import AdmissionController, AdmissionPolicy
from repro.serving.stats import BatchRecord, EngineStats


@dataclass
class ServingRequest:
    """One in-flight query: seed nodes in, per-seed output rows out.

    ``status`` walks ``"pending"`` → ``"queued"`` (admitted) → ``"done"``,
    or ends in ``"failed"`` (the batch raised; ``error`` names the cause) or
    one of the shed statuses (``"shed-rate"`` / ``"shed-queue"`` /
    ``"shed-deadline"``) when admission control turned the request away.
    ``deadline_s`` is the *absolute* SLO deadline stamped at admission
    (arrival + policy deadline); a request not dispatched by then is shed,
    never executed.
    """

    seeds: np.ndarray
    arrival_s: float = 0.0
    result: Optional[np.ndarray] = None
    latency_s: Optional[float] = None
    endpoint: Optional[str] = None
    status: str = "pending"
    error: Optional[str] = None
    deadline_s: Optional[float] = None

    @property
    def done(self) -> bool:
        return self.result is not None

    @property
    def shed(self) -> bool:
        return self.status.startswith("shed-")


def resolve_module(
    model: Union[str, CompiledRGNNModule],
    graph: HeteroGraph,
    *,
    in_dim: int,
    out_dim: int,
    options: Optional[CompilerOptions],
    seed: int,
) -> Tuple[CompiledRGNNModule, Optional[object], Optional[CompilerOptions]]:
    """Compile (or adopt) a module for one endpoint.

    Returns ``(module, program, options)``; ``program``/``options`` are kept
    only when the endpoint compiled the model itself with the compilation
    cache enabled — they drive the per-batch plan-replay check.  Adopted
    modules carry no program handle, so replay accounting is off for them
    (plan reuse still holds trivially: the endpoint binds the one module it
    was given).
    """
    if isinstance(model, CompiledRGNNModule):
        model.schema.validate_graph(graph)
        return model, None, None
    from repro.models import build_program  # local import to avoid a cycle

    options = options or CompilerOptions(emit_backward=False)
    program = build_program(model, in_dim=in_dim, out_dim=out_dim)
    result = compile_program(program, options, graph=graph)
    module = CompiledRGNNModule(result.plan, result.generated, graph, seed=seed)
    if options.enable_compilation_cache:
        # Per-batch replay checks only make sense when lookups are cache
        # hits; with the cache disabled each check would be a full,
        # discarded recompilation per batch.
        return module, program, options
    return module, None, None


def validate_endpoint_config(
    name: str,
    priority: int,
    max_batch_size: int,
    batch_timeout_s: float,
    block_cache_size: int,
) -> None:
    """Shared config checks, raised with the endpoint's name.

    Called by :meth:`Router.register` *before* the (expensive) model compile
    and again by :class:`Endpoint` itself for direct constructions — one
    implementation, so the two call sites cannot drift.
    """
    if not isinstance(priority, int) or priority < 1:
        raise ValueError(f"endpoint {name!r}: priority must be an integer >= 1")
    if max_batch_size < 1:
        raise ValueError(f"endpoint {name!r}: max_batch_size must be >= 1")
    if batch_timeout_s < 0:
        raise ValueError(f"endpoint {name!r}: batch_timeout_s must be >= 0")
    if block_cache_size < 0:
        raise ValueError(f"endpoint {name!r}: block_cache_size must be >= 0")


@dataclass
class _SeedEntry:
    """One seed's cached draw: its kept edge positions and the node set they
    touch (the per-seed invalidation footprint).

    ``positions`` is one per-relation dict for single-layer endpoints
    (:meth:`NeighborSampler.merged_positions`) or a per-hop list of them for
    per-hop stacks (:meth:`NeighborSampler.hop_positions`).
    """

    positions: object
    nodes: np.ndarray


@dataclass
class _UnionMemo:
    """A batch-level memo: the assembled block(s) of one frozen seed set,
    valid only while every constituent per-seed entry is still the live
    cache entry for its seed (checked by identity — entry replacement or
    eviction silently invalidates every memo built from it)."""

    block: object
    entries: Tuple[_SeedEntry, ...]


def _union_positions(dicts: List[Dict]) -> Dict:
    """Union per-relation position dicts (each already deduplicated/sorted)."""
    if len(dicts) == 1:
        return dicts[0]
    out = {}
    for etype in dicts[0]:
        chunks = [d[etype] for d in dicts if len(d[etype])]
        out[etype] = (
            np.unique(np.concatenate(chunks)) if chunks else np.zeros(0, dtype=np.int64)
        )
    return out


class Endpoint:
    """One tenant of the serving router.

    Args:
        name: the endpoint's registered name (appears in errors and reports).
        module: the schema-specialised compiled module serving this endpoint —
            a single :class:`CompiledRGNNModule`, or a
            :class:`MultiLayerModule` stack (served layer-by-hop through
            ``forward_blocks``; requires ``len(fanouts) == num_layers``).
        graph: the parent graph requests sample their blocks from.
        features: ``(graph.num_nodes, in_dim)`` node-feature store; defaults
            to a deterministic random matrix keyed on ``seed``.
        fanouts: per-hop neighbor-sampling fanouts.
        priority: weighted-round-robin weight (≥ 1); an endpoint with weight
            3 gets ~3× the batch slots of a weight-1 endpoint under
            contention.
        max_batch_size / batch_timeout_s: micro-batching policy.
        arena_source: per-tenant view of the router's shared arena budget
            (``None`` when memory planning is off for the plan, and for
            stacks — each stack layer is its own tenant, attached on the
            module itself).
        block_cache_size: capacity of the per-seed draw cache, in seeds
            (0 disables caching — the legacy engine shim uses this to stay
            bit-identical with resample-every-batch behaviour under finite
            fanouts).  The batch-level union memo is bounded by the same
            count.
        program / options: compilation handles for plan-replay accounting
            (see :func:`resolve_module`).
        sampler_seed: RNG seed of the endpoint's private sampler.
    """

    def __init__(
        self,
        name: str,
        module: Union[CompiledRGNNModule, MultiLayerModule],
        graph: HeteroGraph,
        *,
        features: Optional[np.ndarray] = None,
        fanouts: Sequence[Fanout] = (None,),
        priority: int = 1,
        max_batch_size: int = 8,
        batch_timeout_s: float = 0.002,
        arena_source=None,
        block_cache_size: int = 32,
        program=None,
        options: Optional[CompilerOptions] = None,
        sampler_seed: int = 0,
        seed: int = 0,
        admission: Optional[AdmissionPolicy] = None,
    ):
        validate_endpoint_config(name, priority, max_batch_size, batch_timeout_s, block_cache_size)
        self.name = name
        self.module = module
        self.graph = graph
        self.priority = priority
        self.max_batch_size = max_batch_size
        self.batch_timeout_s = batch_timeout_s
        self.arena_source = arena_source
        self.block_cache_size = block_cache_size
        self._program = program
        self._options = options
        #: Shared by the submit path and the serving loop, so rate/queue/
        #: deadline budgets apply to the endpoint's whole request stream.
        self.admission = AdmissionController(admission) if admission is not None else None
        self._per_hop = isinstance(module, MultiLayerModule)
        if self._per_hop and len(tuple(fanouts)) != module.num_layers:
            raise ValueError(
                f"endpoint {name!r}: a {module.num_layers}-layer stack is served "
                f"per-hop and needs one fanout per layer, got {len(tuple(fanouts))}"
            )

        dim = module.input_feature_dim
        if features is None:
            if dim is None:
                raise ValueError(
                    f"endpoint {name!r}: the plan's input feature dimension is "
                    "ambiguous; pass features="
                )
            features = random_features(graph, dim, seed=seed)
        features = np.asarray(features, dtype=np.float64)
        if features.shape[0] != graph.num_nodes:
            raise ValueError(
                f"endpoint {name!r}: feature store must have {graph.num_nodes} rows "
                f"(graph {graph.name!r}), got {features.shape[0]}"
            )
        if dim is not None and features.shape[1] != dim:
            raise ValueError(
                f"endpoint {name!r}: feature store must have dimension {dim} (the "
                f"compiled plan's node-feature input), got {features.shape[1]}"
            )
        self.features = features
        self.sampler = NeighborSampler(graph, fanouts=fanouts, seed=sampler_seed)
        self.fanouts = self.sampler.fanouts
        self.output_name = module.output_name

        self.stats = EngineStats(arena=arena_source)
        self.plan_replays = 0
        self.plan_recompiles = 0
        self.pending: List[ServingRequest] = []
        self._pending_lock = threading.Lock()
        # Two cache levels: per-seed draws (the unit of reuse and of
        # invalidation) and a batch-level union memo (skips even the cheap
        # assembly for exactly-repeated seed sets).
        self._seed_cache: "OrderedDict[int, _SeedEntry]" = OrderedDict()
        self._union_memo: "OrderedDict[Tuple[int, ...], _UnionMemo]" = OrderedDict()
        self.block_cache_hits = 0
        self.block_cache_misses = 0
        self.block_cache_evictions = 0
        self.seed_cache_hits = 0
        self.seed_cache_misses = 0
        self.seed_cache_evictions = 0
        self.seed_cache_invalidations = 0

    # ------------------------------------------------------------------
    # request admission
    # ------------------------------------------------------------------
    def validate_seeds(self, seeds) -> np.ndarray:
        """Normalise and range-check seed ids *at admission time*.

        Out-of-range ids used to surface as a deep gather failure inside the
        sampler, long after ``submit()`` returned; here they fail fast with
        the endpoint name and the offending ids spelled out.
        """
        seeds = np.asarray(seeds, dtype=np.int64).reshape(-1)
        if seeds.size == 0:
            raise ValueError(
                f"endpoint {self.name!r}: a request needs at least one seed node"
            )
        bad = seeds[(seeds < 0) | (seeds >= self.graph.num_nodes)]
        if bad.size:
            shown = bad[:8].tolist()
            suffix = ", ..." if bad.size > 8 else ""
            raise ValueError(
                f"endpoint {self.name!r}: seed ids {shown}{suffix} out of range "
                f"[0, {self.graph.num_nodes}) for parent graph {self.graph.name!r}"
            )
        return seeds

    def make_request(self, seeds, arrival_s: float = 0.0) -> ServingRequest:
        return ServingRequest(
            seeds=self.validate_seeds(seeds),
            arrival_s=float(arrival_s),
            endpoint=self.name,
        )

    def submit(self, seeds, arrival_s: float = 0.0) -> ServingRequest:
        """Enqueue a request; it completes when the router schedules a batch.

        Thread-safe: concurrent submitters only contend on the list append.
        When the endpoint has an admission policy, the decision is made here
        (rate bucket at ``arrival_s``, queue bound against the pending
        depth): a shed request is returned immediately with its shed status
        and is never enqueued.
        """
        request = self.make_request(seeds, arrival_s)
        with self._pending_lock:
            if self.admission is not None:
                verdict = self.admission.admit(request, request.arrival_s, len(self.pending))
                if verdict is not None:
                    self.stats.record_outcome(request.status)
                    return request
            self.pending.append(request)
            self.stats.queue_depth_high_water = max(
                self.stats.queue_depth_high_water, len(self.pending)
            )
        return request

    def drain_pending(self) -> List[ServingRequest]:
        """Atomically take (and clear) the pending queue."""
        with self._pending_lock:
            drained, self.pending = self.pending, []
        return drained

    # ------------------------------------------------------------------
    # block cache
    # ------------------------------------------------------------------
    def _draw_entry(self, seed_id: int) -> _SeedEntry:
        """Draw (and footprint) one seed's neighborhood in the current epoch."""
        seeds = np.asarray([seed_id], dtype=np.int64)
        if self._per_hop:
            positions = self.sampler.hop_positions(seeds)
        else:
            positions = self.sampler.merged_positions(seeds)
        return _SeedEntry(positions=positions, nodes=self.sampler.positions_nodes(seeds, positions))

    def _assemble(self, union_seeds: np.ndarray, entries: Tuple[_SeedEntry, ...]):
        """Assemble the batch block(s) from per-seed position draws.

        Pure compaction — no RNG — so the result is a deterministic function
        of the cached entries.  Under ``fanout=None`` the union of per-seed
        positions equals a fresh draw of the seed union (full neighborhoods
        compose); under finite fanouts a shared frontier node may keep the
        draws of several seeds, so per-node in-degree can exceed a single
        draw's cap — a denser but still valid sample.
        """
        if self._per_hop:
            hops = [
                _union_positions([entry.positions[hop] for entry in entries])
                for hop in range(len(self.fanouts))
            ]
            return self.sampler.assemble_hop_blocks(union_seeds, hops)
        merged = _union_positions([entry.positions for entry in entries])
        return self.sampler.assemble(union_seeds, merged)

    def _sample_block(self, union_seeds: np.ndarray) -> Tuple[object, Optional[bool]]:
        """The batch's block(s): per-seed cache + union assembly.

        Returns ``(block_or_blocks, cache_hit)``; ``cache_hit`` is ``None``
        when caching is disabled, else True iff no seed needed a fresh draw
        (the batch skipped sampling entirely).

        Serving has no training epochs, so every batch with at least one
        uncached seed advances the sampler's epoch: misses draw *fresh*
        neighborhoods under finite fanouts (the sampler's draw memo is
        epoch-scoped).  Reuse of drawn neighborhoods is the per-seed cache's
        job, not the draw memo's.
        """
        if self.block_cache_size == 0:
            self.sampler.resample()
            if self._per_hop:
                return self.sampler.sample_blocks(union_seeds), None
            return self.sampler.sample(union_seeds), None
        key = tuple(union_seeds.tolist())
        memo = self._union_memo.get(key)
        if memo is not None:
            if all(
                self._seed_cache.get(seed_id) is entry
                for seed_id, entry in zip(key, memo.entries)
            ):
                self.block_cache_hits += 1
                self.seed_cache_hits += len(key)
                self._union_memo.move_to_end(key)
                for seed_id in key:
                    self._seed_cache.move_to_end(seed_id)
                return memo.block, True
            del self._union_memo[key]  # built from since-replaced draws
        missing = [seed_id for seed_id in key if seed_id not in self._seed_cache]
        if missing:
            self.sampler.resample()
            for seed_id in missing:
                self._seed_cache[seed_id] = self._draw_entry(seed_id)
            self.seed_cache_misses += len(missing)
        self.seed_cache_hits += len(key) - len(missing)
        entries = tuple(self._seed_cache[seed_id] for seed_id in key)
        for seed_id in key:
            self._seed_cache.move_to_end(seed_id)
        while len(self._seed_cache) > self.block_cache_size:
            self._seed_cache.popitem(last=False)
            self.seed_cache_evictions += 1
        block = self._assemble(union_seeds, entries)
        self._union_memo[key] = _UnionMemo(block=block, entries=entries)
        while len(self._union_memo) > self.block_cache_size:
            self._union_memo.popitem(last=False)
            self.block_cache_evictions += 1
        # Batch-level hit = no sampling happened (assembly is cheap); this is
        # strictly more generous than the old whole-batch-union key, which
        # missed whenever the exact seed set was new.
        if missing:
            self.block_cache_misses += 1
            return block, False
        self.block_cache_hits += 1
        return block, True

    def invalidate_block_cache(self) -> int:
        """Drop every cached draw (e.g. after the parent graph's structure
        changes); returns the number of seed entries dropped."""
        dropped = len(self._seed_cache)
        self._seed_cache.clear()
        self._union_memo.clear()
        return dropped

    def update_features(self, node_ids, rows) -> int:
        """Update feature-store rows and invalidate only the affected seeds.

        A seed's cache entry dies iff its sampled neighborhood contains an
        updated node — hot seeds whose neighborhoods are disjoint from the
        update keep their draws (and their union memos).  Returns the number
        of seed entries invalidated.
        """
        node_ids = np.asarray(node_ids, dtype=np.int64).reshape(-1)
        if node_ids.size == 0:
            return 0
        bad = node_ids[(node_ids < 0) | (node_ids >= self.graph.num_nodes)]
        if bad.size:
            raise ValueError(
                f"endpoint {self.name!r}: feature-update node ids {bad[:8].tolist()} "
                f"out of range [0, {self.graph.num_nodes})"
            )
        rows = np.asarray(rows, dtype=np.float64).reshape(len(node_ids), -1)
        if rows.shape[1] != self.features.shape[1]:
            raise ValueError(
                f"endpoint {self.name!r}: feature-update rows have dimension "
                f"{rows.shape[1]}, the store holds {self.features.shape[1]}"
            )
        self.features[node_ids] = rows
        touched = [
            seed_id
            for seed_id, entry in self._seed_cache.items()
            if np.isin(node_ids, entry.nodes).any()
        ]
        for seed_id in touched:
            del self._seed_cache[seed_id]
        self.seed_cache_invalidations += len(touched)
        # Union memos built (in part) from dropped entries are now stale; the
        # identity check would catch them lazily, but drop them eagerly so
        # stale blocks do not pin memory.
        stale = [
            key
            for key, memo in self._union_memo.items()
            if any(
                self._seed_cache.get(seed_id) is not entry
                for seed_id, entry in zip(key, memo.entries)
            )
        ]
        for key in stale:
            del self._union_memo[key]
        return len(touched)

    @property
    def block_cache_len(self) -> int:
        """Cached seed draws (the cache's capacity unit)."""
        return len(self._seed_cache)

    @property
    def block_cache_hit_rate(self) -> float:
        lookups = self.block_cache_hits + self.block_cache_misses
        return self.block_cache_hits / lookups if lookups else 0.0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute_batch(
        self,
        requests: List[ServingRequest],
        timer: Callable[[], float] = time.perf_counter,
    ) -> float:
        """Sample (or assemble from cache), bind, execute, and scatter one
        micro-batch.

        Returns the measured service seconds (sampling + execution).
        ``timer`` defaults to the wall clock; the saturation study passes
        ``time.thread_time`` so service times stay CPU-exclusive (one
        worker's GIL wait does not inflate another batch's cost).
        """
        sample_start = timer()
        all_seeds = np.concatenate([request.seeds for request in requests])
        union_seeds, inverse = np.unique(all_seeds, return_inverse=True)
        block, cache_hit = self._sample_block(union_seeds)
        execute_start = timer()

        plan_replayed: Optional[bool] = None
        if self._program is not None and not self._per_hop:
            # Replay the compiled artefact through the cache, exactly as a
            # compile-per-request deployment would — except it must *hit*:
            # blocks share the parent's schema, and sizes never enter the key.
            result = compile_program(self._program, self._options, graph=block.graph)
            plan_replayed = result.plan is self.module.plan
            if plan_replayed:
                self.plan_replays += 1
            else:  # pragma: no cover - would indicate a cache-key regression
                self.plan_recompiles += 1

        if self._per_hop:
            run = self.module.forward_blocks(block, self.features)
            seed_rows = run.seed_outputs()
            block_nodes = block[0].num_nodes
            block_edges = sum(hop.num_edges for hop in block)
        else:
            binding = self.module.bind(
                block.graph,
                arena_source=self.arena_source,
                label=f"endpoint {self.name!r}",
            )
            outputs = binding.forward(block.gather_features(self.features))
            seed_rows = block.seed_outputs(outputs[self.output_name])
            block_nodes = block.num_nodes
            block_edges = block.num_edges
        offset = 0
        for request in requests:
            span = len(request.seeds)
            request.result = seed_rows[inverse[offset:offset + span]]
            request.status = "done"
            offset += span
        done = timer()

        self.stats.record_batch(BatchRecord(
            num_requests=len(requests),
            num_seeds=int(len(all_seeds)),
            block_nodes=block_nodes,
            block_edges=block_edges,
            sample_seconds=execute_start - sample_start,
            execute_seconds=done - execute_start,
            plan_replayed=plan_replayed,
            block_cache_hit=cache_hit,
        ))
        return done - sample_start

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Drop accumulated telemetry (e.g. after a warmup batch).

        Arena-budget and block-cache contents stay — warm state is precisely
        what warmup is for — but batch records, latencies, plan-replay and
        block-cache *counters* restart.
        """
        self.stats = EngineStats(arena=self.arena_source)
        self.plan_replays = 0
        self.plan_recompiles = 0
        self.block_cache_hits = 0
        self.block_cache_misses = 0
        self.block_cache_evictions = 0
        self.seed_cache_hits = 0
        self.seed_cache_misses = 0
        self.seed_cache_evictions = 0
        self.seed_cache_invalidations = 0

    def report(self) -> Dict[str, object]:
        """Endpoint-scoped summary: throughput, latency, reuse, cache, memory."""
        out = self.stats.report()
        out["endpoint"] = self.name
        out["priority"] = self.priority
        out["max_batch_size"] = self.max_batch_size
        out["plan_replays"] = self.plan_replays
        out["plan_recompiles"] = self.plan_recompiles
        if self.block_cache_size:
            out["block_cache_hit_rate"] = round(self.block_cache_hit_rate, 3)
            out["block_cache_len"] = self.block_cache_len
            out["block_cache_evictions"] = self.block_cache_evictions
            seed_lookups = self.seed_cache_hits + self.seed_cache_misses
            out["seed_cache_hit_rate"] = round(
                self.seed_cache_hits / seed_lookups if seed_lookups else 0.0, 3
            )
            out["seed_cache_evictions"] = self.seed_cache_evictions
            out["seed_cache_invalidations"] = self.seed_cache_invalidations
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        plan = "stack" if self._per_hop else repr(self.module.plan.name)
        return (
            f"Endpoint({self.name!r}, plan={plan}, "
            f"graph={self.graph.name!r}, priority={self.priority})"
        )
