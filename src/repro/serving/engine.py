"""The batched serving engine: per-request seed queries over one compiled plan.

``ServingEngine`` is the systems layer the compile→bind→execute refactor
exists for.  It compiles (or adopts) one schema-specialised module, then for
every request stream:

1. **micro-batches** pending requests (closing a batch at ``max_batch_size``
   or when the oldest request has waited ``batch_timeout_s``),
2. **samples** one minibatch block for the union of the batch's seed nodes,
3. **binds** the module against the block — the plan is replayed from the
   compilation cache, the arena comes from the module's bucketed pool —
4. **executes** the generated kernels once for the whole batch, and
5. **scatters** per-request output rows back to each request.

When the compilation cache is enabled (the default), every batch verifies
the replay invariant explicitly: a cache lookup for the block must return
the *identical* plan object the engine compiled at construction (zero
recompiles after warmup), and the hit is visible in the global cache
counters the benchmarks assert on.  With the cache disabled the check is
skipped — it would otherwise recompile per batch.

The engine is synchronous and single-threaded — requests are processed when
``flush()`` (or the simulated-arrival ``serve()`` driver) runs.  An
async/event-loop front end is a ROADMAP follow-on; the batching, sampling,
binding, and accounting below are the parts it will reuse.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.frontend.compiler import compile_program
from repro.frontend.config import CompilerOptions
from repro.graph.generators import random_features
from repro.graph.hetero_graph import HeteroGraph
from repro.graph.sampler import Fanout, NeighborSampler
from repro.runtime.module import CompiledRGNNModule
from repro.serving.stats import BatchRecord, EngineStats


@dataclass
class ServingRequest:
    """One in-flight query: seed nodes in, per-seed output rows out."""

    seeds: np.ndarray
    arrival_s: float = 0.0
    result: Optional[np.ndarray] = None
    latency_s: Optional[float] = None

    @property
    def done(self) -> bool:
        return self.result is not None


class ServingEngine:
    """Micro-batched inference over sampled blocks of one parent graph.

    Args:
        model: a model name (``"rgcn"`` / ``"rgat"`` / ``"hgt"``) compiled
            here, or an already-compiled :class:`CompiledRGNNModule` to adopt.
        graph: the parent graph requests sample their blocks from.
        in_dim / out_dim: feature dimensions (used when ``model`` is a name).
        options: compiler options; defaults to an inference configuration
            (``emit_backward=False``) with the memory planner and compilation
            cache on.
        features: ``(graph.num_nodes, in_dim)`` node-feature store served to
            every request.  Defaults to a deterministic random matrix so the
            quickstart ``ServingEngine(model, graph)`` runs out of the box;
            production callers pass their real features.
        fanouts: per-hop neighbor-sampling fanouts (see
            :class:`~repro.graph.sampler.NeighborSampler`).
        max_batch_size: micro-batch capacity.
        batch_timeout_s: oldest-request wait bound used by :meth:`serve`.
        sampler_seed / seed: RNG seeds (sampling / parameter init).
    """

    def __init__(
        self,
        model: Union[str, CompiledRGNNModule],
        graph: HeteroGraph,
        *,
        in_dim: int = 64,
        out_dim: int = 64,
        options: Optional[CompilerOptions] = None,
        features: Optional[np.ndarray] = None,
        fanouts: Sequence[Fanout] = (None,),
        max_batch_size: int = 8,
        batch_timeout_s: float = 0.002,
        sampler_seed: int = 0,
        seed: int = 0,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if batch_timeout_s < 0:
            raise ValueError("batch_timeout_s must be >= 0")
        self.graph = graph
        self.max_batch_size = max_batch_size
        self.batch_timeout_s = batch_timeout_s

        if isinstance(model, CompiledRGNNModule):
            model.schema.validate_graph(graph)
            self.module = model
            # Adopted modules carry no program handle, so per-batch cache
            # replays cannot be driven (or counted) — plan reuse still holds
            # trivially because the engine binds the one module it was given.
            self._program = None
            self._options = None
        else:
            from repro.models import build_program  # local import to avoid a cycle

            options = options or CompilerOptions(emit_backward=False)
            program = build_program(model, in_dim=in_dim, out_dim=out_dim)
            result = compile_program(program, options, graph=graph)
            self.module = CompiledRGNNModule(result.plan, result.generated, graph, seed=seed)
            # Per-batch replay checks only make sense when lookups are cache
            # hits; with the cache disabled each check would be a full,
            # discarded recompilation per batch.
            self._program = program if options.enable_compilation_cache else None
            self._options = options if options.enable_compilation_cache else None

        dim = self.module.input_feature_dim
        if features is None:
            if dim is None:
                raise ValueError(
                    "the plan's input feature dimension is ambiguous; pass features="
                )
            features = random_features(graph, dim, seed=seed)
        features = np.asarray(features, dtype=np.float64)
        if features.shape[0] != graph.num_nodes:
            raise ValueError(
                f"feature store must have {graph.num_nodes} rows (graph "
                f"{graph.name!r}), got {features.shape[0]}"
            )
        if dim is not None and features.shape[1] != dim:
            raise ValueError(
                f"feature store must have dimension {dim} (the compiled plan's "
                f"node-feature input), got {features.shape[1]}"
            )
        self.features = features
        self.sampler = NeighborSampler(graph, fanouts=fanouts, seed=sampler_seed)
        self.output_name = self.module.plan.output_names[0]
        self.stats = EngineStats()
        self.plan_replays = 0
        self.plan_recompiles = 0
        self._pending: List[ServingRequest] = []

    # ------------------------------------------------------------------
    # request interface
    # ------------------------------------------------------------------
    def _make_request(self, seeds, arrival_s: float) -> ServingRequest:
        seeds = np.asarray(seeds, dtype=np.int64).reshape(-1)
        if seeds.size == 0:
            raise ValueError("a request needs at least one seed node")
        if seeds.min() < 0 or seeds.max() >= self.graph.num_nodes:
            raise ValueError(
                f"seed ids must lie in [0, {self.graph.num_nodes}) for graph "
                f"{self.graph.name!r}"
            )
        return ServingRequest(seeds=seeds, arrival_s=float(arrival_s))

    def submit(self, seeds, arrival_s: float = 0.0) -> ServingRequest:
        """Enqueue a request; it completes on the next :meth:`flush`."""
        request = self._make_request(seeds, arrival_s)
        self._pending.append(request)
        return request

    def flush(self) -> List[ServingRequest]:
        """Drain the queue now, in arrival order, in batches of at most
        ``max_batch_size``; returns the completed requests.

        Request latency on this path is the batch's service time (sampling +
        execution) — there is no simulated queueing delay outside
        :meth:`serve`.
        """
        pending, self._pending = self._pending, []
        for start in range(0, len(pending), self.max_batch_size):
            batch = pending[start:start + self.max_batch_size]
            elapsed = self._execute_batch(batch)
            for request in batch:
                request.latency_s = elapsed
                self.stats.record_latency(elapsed)
        return pending

    def query(self, seeds) -> np.ndarray:
        """Synchronous single query: ``(len(seeds), out_dim)`` output rows.

        Flushes the queue, so any previously submitted requests complete too.
        """
        request = self.submit(seeds)
        self.flush()
        assert request.result is not None
        return request.result

    # ------------------------------------------------------------------
    # simulated open-loop driver
    # ------------------------------------------------------------------
    def serve(
        self,
        seed_lists: Sequence[np.ndarray],
        arrival_times: Optional[Sequence[float]] = None,
    ) -> Dict[str, object]:
        """Process a request stream under the micro-batching policy.

        Arrivals are simulated timestamps (seconds; default: all at 0, a
        closed-loop burst that fills every batch).  A batch closes when it
        reaches ``max_batch_size`` or when admitting the next request would
        make the *first* request in the batch wait longer than
        ``batch_timeout_s``.  Service time is the measured wall clock of
        sampling + execution; per-request latency = queueing (simulated) +
        service (measured).

        Requests previously queued via :meth:`submit` are flushed first, so
        none are left behind.

        Returns :meth:`report` for the stream.
        """
        if arrival_times is None:
            arrival_times = [0.0] * len(seed_lists)
        if len(arrival_times) != len(seed_lists):
            raise ValueError("need one arrival time per request")
        self.flush()
        requests = [
            self._make_request(seeds, arrival_s=arrival)
            for seeds, arrival in zip(seed_lists, arrival_times)
        ]
        requests.sort(key=lambda request: request.arrival_s)

        clock = 0.0
        index = 0
        while index < len(requests):
            batch = [requests[index]]
            window_end = requests[index].arrival_s + self.batch_timeout_s
            index += 1
            while (
                index < len(requests)
                and len(batch) < self.max_batch_size
                and requests[index].arrival_s <= window_end
            ):
                batch.append(requests[index])
                index += 1
            # The batch is ready when full (last member's arrival) or when its
            # oldest member's timeout window expires.
            ready = (
                batch[-1].arrival_s
                if len(batch) == self.max_batch_size
                else window_end
            )
            service_start = max(clock, ready)
            elapsed = self._execute_batch(batch)
            clock = service_start + elapsed
            for request in batch:
                request.latency_s = clock - request.arrival_s
                self.stats.record_latency(request.latency_s)
        return self.report()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _execute_batch(self, requests: List[ServingRequest]) -> float:
        """Sample, bind, execute, and scatter one micro-batch; returns seconds."""
        sample_start = time.perf_counter()
        all_seeds = np.concatenate([request.seeds for request in requests])
        union_seeds, inverse = np.unique(all_seeds, return_inverse=True)
        block = self.sampler.sample(union_seeds)
        execute_start = time.perf_counter()

        plan_replayed: Optional[bool] = None
        if self._program is not None:
            # Replay the compiled artefact through the cache, exactly as a
            # compile-per-request deployment would — except it must *hit*:
            # blocks share the parent's schema, and sizes never enter the key.
            result = compile_program(self._program, self._options, graph=block.graph)
            plan_replayed = result.plan is self.module.plan
            if plan_replayed:
                self.plan_replays += 1
            else:  # pragma: no cover - would indicate a cache-key regression
                self.plan_recompiles += 1

        binding = self.module.bind(block.graph)
        outputs = binding.forward(block.gather_features(self.features))
        seed_rows = block.seed_outputs(outputs[self.output_name])
        offset = 0
        for request in requests:
            span = len(request.seeds)
            request.result = seed_rows[inverse[offset:offset + span]]
            offset += span
        done = time.perf_counter()

        self.stats.record_batch(BatchRecord(
            num_requests=len(requests),
            num_seeds=int(len(all_seeds)),
            block_nodes=block.num_nodes,
            block_edges=block.num_edges,
            sample_seconds=execute_start - sample_start,
            execute_seconds=done - execute_start,
            plan_replayed=plan_replayed,
        ))
        return done - sample_start

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Drop accumulated telemetry (e.g. after a warmup batch).

        Arena-pool counters stay — warm arenas are precisely what warmup is
        for — but batch records, latencies, and plan-replay counts restart.
        """
        self.stats = EngineStats()
        self.plan_replays = 0
        self.plan_recompiles = 0

    def report(self) -> Dict[str, object]:
        """Engine-level summary: throughput, latency, occupancy, reuse rates.

        All numbers are scoped to *this engine*: plan replays/recompiles are
        the engine's own per-batch cache lookups, not the process-global
        cache counters (which mix in every other compilation in the process).
        """
        summary = self.stats.summary()
        summary["max_batch_size"] = self.max_batch_size
        pool = self.module.arena_pool
        if pool is not None:
            summary["arena_pool_hit_rate"] = round(pool.stats.hit_rate, 3)
            summary["live_arenas"] = pool.live_arenas
        summary["plan_replays"] = self.plan_replays
        summary["plan_recompiles"] = self.plan_recompiles
        return summary
