"""The legacy single-tenant serving engine, as a shim over the router.

.. deprecated::
    ``ServingEngine`` predates the multi-tenant redesign.  It remains fully
    supported — same constructor, same ``submit`` / ``flush`` / ``query`` /
    ``serve`` / ``report`` surface, bit-identical results — but it is now a
    thin wrapper around a :class:`~repro.serving.router.Router` hosting
    exactly one endpoint named ``"default"``.  New code should use the
    router directly: it adds named endpoints, cross-endpoint fairness,
    shared arena budgets, and block caching (``register`` / ``submit`` /
    ``serve``); see :mod:`repro.serving.router`.

Two intentional equivalences with the pre-router engine:

* The block cache is **disabled** for the shim's endpoint.  Under finite
  fanouts the legacy engine drew a fresh sample for every batch; caching
  would change which block a repeated seed set executes against, and the
  shim's contract is bit-identical outputs.
* The shim's endpoint leases arenas from the private router's shared budget
  (unbounded, one tenant) instead of the module's own :class:`ArenaPool`.
  Arena provenance never affects results — reused slabs are re-viewed and
  zero-filled by the generated kernels' ``_ensure`` before every write.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.frontend.config import CompilerOptions
from repro.graph.hetero_graph import HeteroGraph
from repro.graph.sampler import Fanout
from repro.runtime.module import CompiledRGNNModule
from repro.serving.endpoint import ServingRequest
from repro.serving.router import Router

__all__ = ["ServingEngine", "ServingRequest"]


class ServingEngine:
    """Micro-batched inference over sampled blocks of one parent graph.

    A one-endpoint :class:`~repro.serving.router.Router` under the legacy
    API (see the module docstring for the deprecation note).

    Args:
        model: a model name (``"rgcn"`` / ``"rgat"`` / ``"hgt"``) compiled
            here, or an already-compiled :class:`CompiledRGNNModule` to adopt.
        graph: the parent graph requests sample their blocks from.
        in_dim / out_dim: feature dimensions (used when ``model`` is a name).
        options: compiler options; defaults to an inference configuration
            (``emit_backward=False``) with the memory planner and compilation
            cache on.
        features: ``(graph.num_nodes, in_dim)`` node-feature store served to
            every request.  Defaults to a deterministic random matrix so the
            quickstart ``ServingEngine(model, graph)`` runs out of the box;
            production callers pass their real features.
        fanouts: per-hop neighbor-sampling fanouts (see
            :class:`~repro.graph.sampler.NeighborSampler`).
        max_batch_size: micro-batch capacity.
        batch_timeout_s: oldest-request wait bound used by :meth:`serve`.
        sampler_seed / seed: RNG seeds (sampling / parameter init).
    """

    _ENDPOINT = "default"

    def __init__(
        self,
        model: Union[str, CompiledRGNNModule],
        graph: HeteroGraph,
        *,
        in_dim: int = 64,
        out_dim: int = 64,
        options: Optional[CompilerOptions] = None,
        features: Optional[np.ndarray] = None,
        fanouts: Sequence[Fanout] = (None,),
        max_batch_size: int = 8,
        batch_timeout_s: float = 0.002,
        sampler_seed: int = 0,
        seed: int = 0,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if batch_timeout_s < 0:
            raise ValueError("batch_timeout_s must be >= 0")
        self.graph = graph
        # max_arenas=4 mirrors the pre-router per-module ArenaPool bound, so
        # a long tail of rare block sizes stays as bounded as it always was.
        self.router = Router(max_arenas=4)
        self._endpoint = self.router.register(
            self._ENDPOINT,
            model,
            graph,
            in_dim=in_dim,
            out_dim=out_dim,
            options=options,
            features=features,
            fanouts=fanouts,
            max_batch_size=max_batch_size,
            batch_timeout_s=batch_timeout_s,
            block_cache_size=0,  # legacy engines resample every batch
            sampler_seed=sampler_seed,
            seed=seed,
        )

    # ------------------------------------------------------------------
    # delegated state (kept as properties: reset_stats swaps the objects)
    # ------------------------------------------------------------------
    @property
    def module(self) -> CompiledRGNNModule:
        return self._endpoint.module

    @property
    def features(self) -> np.ndarray:
        return self._endpoint.features

    @property
    def sampler(self):
        return self._endpoint.sampler

    @property
    def stats(self):
        return self._endpoint.stats

    @property
    def plan_replays(self) -> int:
        return self._endpoint.plan_replays

    @property
    def plan_recompiles(self) -> int:
        return self._endpoint.plan_recompiles

    @property
    def max_batch_size(self) -> int:
        return self._endpoint.max_batch_size

    @property
    def batch_timeout_s(self) -> float:
        return self._endpoint.batch_timeout_s

    @property
    def output_name(self) -> str:
        return self._endpoint.output_name

    # ------------------------------------------------------------------
    # request interface
    # ------------------------------------------------------------------
    def submit(self, seeds, arrival_s: float = 0.0) -> ServingRequest:
        """Enqueue a request; it completes on the next :meth:`flush`."""
        return self.router.submit(self._ENDPOINT, seeds, arrival_s)

    def flush(self) -> List[ServingRequest]:
        """Drain the queue now, in arrival order, in batches of at most
        ``max_batch_size``; returns the completed requests.

        Request latency on this path is the batch's service time (sampling +
        execution) — there is no simulated queueing delay outside
        :meth:`serve`.
        """
        return self.router.flush()

    def query(self, seeds) -> np.ndarray:
        """Synchronous single query: ``(len(seeds), out_dim)`` output rows.

        Flushes the queue, so any previously submitted requests complete too.
        """
        return self.router.query(self._ENDPOINT, seeds)

    # ------------------------------------------------------------------
    # simulated open-loop driver
    # ------------------------------------------------------------------
    def serve(
        self,
        seed_lists: Sequence[np.ndarray],
        arrival_times: Optional[Sequence[float]] = None,
    ) -> Dict[str, object]:
        """Process a request stream under the micro-batching policy.

        Arrivals are simulated timestamps (seconds; default: all at 0, a
        closed-loop burst that fills every batch).  A batch closes when it
        reaches ``max_batch_size`` or when admitting the next request would
        make the *first* request in the batch wait longer than
        ``batch_timeout_s``.  Service time is the measured wall clock of
        sampling + execution; per-request latency = queueing (simulated) +
        service (measured).

        Requests previously queued via :meth:`submit` are flushed first, so
        none are left behind.

        Returns :meth:`report` for the stream.
        """
        if arrival_times is None:
            arrival_times = [0.0] * len(seed_lists)
        if len(arrival_times) != len(seed_lists):
            raise ValueError("need one arrival time per request")
        self.router.serve([
            (self._ENDPOINT, seeds, float(arrival))
            for seeds, arrival in zip(seed_lists, arrival_times)
        ])
        return self.report()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Drop accumulated telemetry (e.g. after a warmup batch).

        Arena counters stay — warm arenas are precisely what warmup is for —
        but batch records, latencies, and plan-replay counts restart.
        """
        self.router.reset_stats()

    def report(self) -> Dict[str, object]:
        """Engine-level summary: throughput, latency, occupancy, reuse rates.

        All numbers are scoped to *this engine*: plan replays/recompiles are
        the engine's own per-batch cache lookups, not the process-global
        cache counters (which mix in every other compilation in the process).
        Arena counters come from the engine's tenant slice of the (private)
        shared budget; the keys keep their legacy names.
        """
        summary = self._endpoint.report()
        summary.pop("endpoint", None)
        summary.pop("priority", None)
        summary["live_arenas"] = self.router.budget.live_arenas
        if "arena_pool_hit_rate" not in summary:
            # Memory planning disabled for this plan: no arena telemetry.
            summary["arena_pool_hit_rate"] = 0.0
        return summary
