"""Multi-tenant serving over sampled minibatch blocks.

The subsystem the compile→bind→execute split enables: schema-specialised
compiled modules serve per-request seed-node queries by micro-batching
requests, sampling (or block-cache-fetching) blocks, binding against arenas
leased from a shared budget, executing the generated kernels once per batch,
and scattering per-request outputs back — with throughput / latency /
occupancy / reuse telemetry throughout.

The primary API is the :class:`Router`: named endpoints (compiled module +
parent graph + sampler + batching policy + priority), async admission, an
event-loop scheduler with weighted-round-robin fairness across endpoints,
and one :class:`~repro.runtime.planner.SharedArenaBudget` byte cap over all
tenants' arenas.

Quickstart::

    from repro.serving import Router

    router = Router(arena_capacity_bytes=64 << 20)
    router.register("rgat-main", "rgat", graph, in_dim=64, out_dim=64)
    outputs = router.query("rgat-main", [3, 17, 42])  # (3, 64) rows
    print(router.report()["aggregate"])

The single-tenant :class:`ServingEngine` remains as a thin shim over a
one-endpoint router (see :mod:`repro.serving.engine` for the deprecation
note and migration pointers).
"""

from repro.serving.admission import AdmissionController, AdmissionPolicy, TokenBucket
from repro.serving.endpoint import Endpoint, ServingRequest
from repro.serving.engine import ServingEngine
from repro.serving.router import Router
from repro.serving.scheduler import (
    EventLoopResult,
    LaneSpec,
    MonotonicClock,
    ScheduledBatch,
    ServingLoopResult,
    VirtualClock,
    WeightedRoundRobin,
    partition_into_batches,
    run_event_loop,
    run_serving_loop,
)
from repro.serving.stats import BatchRecord, EngineStats, aggregate_summary, percentile

__all__ = [
    "Router",
    "Endpoint",
    "ServingEngine",
    "ServingRequest",
    "AdmissionPolicy",
    "AdmissionController",
    "TokenBucket",
    "BatchRecord",
    "EngineStats",
    "aggregate_summary",
    "percentile",
    "VirtualClock",
    "MonotonicClock",
    "WeightedRoundRobin",
    "ScheduledBatch",
    "EventLoopResult",
    "LaneSpec",
    "ServingLoopResult",
    "partition_into_batches",
    "run_event_loop",
    "run_serving_loop",
]
