"""Batched serving over sampled minibatch blocks.

The subsystem the compile→bind→execute split enables: one schema-specialised
compiled module serves per-request seed-node queries by micro-batching
requests, sampling blocks, binding against pooled arenas, executing the
generated kernels once per batch, and scattering per-request outputs back —
with throughput / latency / occupancy / reuse telemetry throughout.

Quickstart::

    from repro.serving import ServingEngine

    engine = ServingEngine("rgat", graph, in_dim=64, out_dim=64)
    outputs = engine.query([3, 17, 42])     # (3, 64) rows, one per seed
    print(engine.report())
"""

from repro.serving.engine import ServingEngine, ServingRequest
from repro.serving.stats import BatchRecord, EngineStats, percentile

__all__ = [
    "ServingEngine",
    "ServingRequest",
    "BatchRecord",
    "EngineStats",
    "percentile",
]
