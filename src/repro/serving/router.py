"""The multi-tenant serving router: named endpoints over a shared executor pool.

One :class:`Router` hosts any number of named endpoints — each a compiled
module (or a multi-layer stack served per-hop) + parent graph + sampler +
micro-batching policy (:mod:`repro.serving.endpoint`) — and multiplexes their
request streams onto a pool of ``num_workers`` executor workers under a
single :class:`~repro.runtime.planner.SharedArenaBudget` byte cap.
Scheduling is a real event loop (:mod:`repro.serving.scheduler`): requests
are admitted concurrently across endpoints (optionally through per-tenant
:class:`~repro.serving.admission.AdmissionPolicy` rate/queue/deadline
limits), each endpoint micro-batches its own queue, and ready batches compete
for executor slots under smooth weighted round-robin — at most one in-flight
batch per endpoint, so per-endpoint state needs no locks and per-request
results are identical for every worker count.

Quickstart::

    from repro.serving import AdmissionPolicy, Router

    router = Router(arena_capacity_bytes=64 << 20, num_workers=4)
    router.register("rgcn-small", "rgcn", small_graph, in_dim=64, out_dim=64)
    router.register("hgt-large", "hgt", large_graph, in_dim=64, out_dim=64,
                    priority=2, fanouts=(8,),
                    admission=AdmissionPolicy(rate_limit=500.0, deadline_s=0.05))

    rows = router.query("rgcn-small", [3, 17, 42])   # synchronous
    router.submit("hgt-large", [5, 9], arrival_s=0.0)  # async admission
    report = router.serve([("rgcn-small", [1, 2]), ("hgt-large", [7])])
    print(report["aggregate"], report["serve"], report["arena_budget"])
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.frontend.config import CompilerOptions
from repro.graph.hetero_graph import HeteroGraph
from repro.graph.sampler import Fanout
from repro.runtime.module import CompiledRGNNModule
from repro.runtime.multilayer import MultiLayerModule
from repro.runtime.planner import SharedArenaBudget
from repro.serving.admission import AdmissionPolicy
from repro.serving.endpoint import (
    Endpoint,
    ServingRequest,
    resolve_module,
    validate_endpoint_config,
)
from repro.serving.scheduler import (
    LaneSpec,
    MonotonicClock,
    ScheduledBatch,
    VirtualClock,
    WeightedRoundRobin,
    run_event_loop,
    run_serving_loop,
)
from repro.serving.stats import aggregate_summary

#: One entry of a ``Router.serve`` stream: ``(endpoint, seeds)`` or
#: ``(endpoint, seeds, arrival_s)``.
StreamItem = Union[Tuple[str, object], Tuple[str, object, float]]

#: Retention bound of :attr:`Router.execution_log` (most recent batches).
EXECUTION_LOG_LIMIT = 4096


class Router:
    """Admission, scheduling, and memory arbitration across named endpoints.

    Args:
        arena_capacity_bytes: global byte cap of the shared arena budget
            every endpoint leases from (``None`` = unbounded).
        max_arenas: global cap on live arenas across all endpoints (``None``
            = unbounded; the legacy engine shim passes 4, the old per-module
            pool bound).
        num_workers: executor workers for :meth:`serve` (≥ 1).  Workers run
            batches from *different* endpoints concurrently; per-endpoint
            execution stays serialised, so results are bit-identical to
            ``num_workers=1``.
    """

    def __init__(
        self,
        *,
        arena_capacity_bytes: Optional[int] = None,
        max_arenas: Optional[int] = None,
        num_workers: int = 1,
    ):
        if num_workers < 1:
            raise ValueError("Router needs num_workers >= 1")
        self.num_workers = int(num_workers)
        self.budget = SharedArenaBudget(
            capacity_bytes=arena_capacity_bytes, max_arenas=max_arenas
        )
        self._endpoints: Dict[str, Endpoint] = {}
        self._wrr = WeightedRoundRobin()
        #: Endpoint name per executed batch, in execution order — the
        #: fairness tests and the study read this to see the interleaving.
        #: Bounded to the most recent :data:`EXECUTION_LOG_LIMIT` batches so
        #: a long-lived router's telemetry cannot grow without limit.
        self.execution_log: List[str] = []
        #: Requests admitted by the most recent :meth:`serve` call, in stream
        #: order — callers that need per-request results (e.g. the
        #: multi-tenant study's bit-identical cross-check) read them here.
        #: Replaced wholesale on every ``serve``, so it only ever pins one
        #: stream's requests.  Shed requests appear here too, result-less,
        #: with their shed status.
        self.last_served: List[ServingRequest] = []
        #: Loop-level metrics of the most recent :meth:`serve` call (worker
        #: count, virtual makespan, busy seconds, modelled speedup).
        self.last_serve_metrics: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        model: Union[str, CompiledRGNNModule, MultiLayerModule],
        parent_graph: HeteroGraph,
        *,
        in_dim: int = 64,
        out_dim: int = 64,
        options: Optional[CompilerOptions] = None,
        features: Optional[np.ndarray] = None,
        fanouts: Sequence[Fanout] = (None,),
        priority: int = 1,
        arena_budget: Optional[int] = None,
        max_batch_size: int = 8,
        batch_timeout_s: float = 0.002,
        block_cache_size: int = 32,
        sampler_seed: int = 0,
        seed: int = 0,
        admission: Optional[AdmissionPolicy] = None,
    ) -> Endpoint:
        """Create a named endpoint: compiled module + graph + sampler + stats.

        Args:
            name: unique endpoint name; the address of ``submit``/``query``.
            model: a model name (``"rgcn"`` / ``"rgat"`` / ``"hgt"``)
                compiled here, an already-compiled module to adopt, or a
                :class:`MultiLayerModule` stack — stacks are served per-hop
                through ``forward_blocks`` and need one fanout per layer.
            parent_graph: the graph this endpoint's requests sample from.
            priority: weighted-round-robin weight (≥ 1).
            arena_budget: optional per-endpoint byte cap inside the shared
                budget (the global ``arena_capacity_bytes`` always applies;
                for stacks the cap applies to each layer tenant).
            block_cache_size: per-seed draw-cache capacity (seeds; 0
                disables).
            admission: optional rate/queue/deadline limits enforced on this
                endpoint's stream (see :class:`AdmissionPolicy`).
            Remaining arguments mirror the legacy ``ServingEngine``.
        """
        if name in self._endpoints:
            raise ValueError(f"endpoint {name!r} is already registered")
        # Cheap config checks fail before the (expensive) model compile.
        validate_endpoint_config(name, priority, max_batch_size, batch_timeout_s, block_cache_size)
        arena_source = None
        layer_tenants: List[str] = []
        if isinstance(model, MultiLayerModule):
            # A stack leases one tenant per planned layer (layers never share
            # slabs); the endpoint itself carries no arena source.
            model.schema.validate_graph(parent_graph)
            module, program, kept_options = model, None, None
            layer_tenants = model.attach_arena_sources(
                self.budget, name, capacity_bytes=arena_budget
            )
        else:
            module, program, kept_options = resolve_module(
                model, parent_graph, in_dim=in_dim, out_dim=out_dim, options=options, seed=seed
            )
            if module.memory_planner is not None:
                arena_source = self.budget.tenant(name, capacity_bytes=arena_budget)
        try:
            endpoint = Endpoint(
                name,
                module,
                parent_graph,
                features=features,
                fanouts=fanouts,
                priority=priority,
                max_batch_size=max_batch_size,
                batch_timeout_s=batch_timeout_s,
                arena_source=arena_source,
                block_cache_size=block_cache_size,
                program=program,
                options=kept_options,
                sampler_seed=sampler_seed,
                seed=seed,
                admission=admission,
            )
        except Exception:
            # Roll the tenants back: a failed registration must not leave
            # phantom entries (or sticky per-tenant caps) in the budget.
            if arena_source is not None:
                self.budget.drop_tenant(name)
            for tenant in layer_tenants:
                self.budget.drop_tenant(tenant)
            raise
        self._endpoints[name] = endpoint
        self._wrr.register(name, priority)
        return endpoint

    def endpoint(self, name: str) -> Endpoint:
        """The endpoint registered under ``name`` (clear error otherwise)."""
        try:
            return self._endpoints[name]
        except KeyError:
            known = ", ".join(repr(n) for n in self._endpoints) or "none"
            raise ValueError(
                f"unknown endpoint {name!r}; registered endpoints: {known}"
            ) from None

    @property
    def endpoint_names(self) -> List[str]:
        return list(self._endpoints)

    def __contains__(self, name: str) -> bool:
        return name in self._endpoints

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(self, endpoint_name: str, seeds, arrival_s: float = 0.0) -> ServingRequest:
        """Admit one request asynchronously; seeds are validated *now*.

        The request completes on the next :meth:`flush` / :meth:`serve` — or
        comes back immediately with a ``"shed-rate"`` / ``"shed-queue"``
        status (no result, never enqueued) when the endpoint's admission
        policy turns it away.
        """
        return self.endpoint(endpoint_name).submit(seeds, arrival_s)

    def query(self, endpoint_name: str, seeds) -> np.ndarray:
        """Synchronous single query: ``(len(seeds), out_dim)`` output rows.

        Flushes the router, so any previously submitted requests (on any
        endpoint) complete too.  Raises if the endpoint's admission policy
        sheds the query (synchronous callers cannot retry transparently).
        """
        request = self.submit(endpoint_name, seeds)
        if request.shed:
            raise RuntimeError(
                f"endpoint {endpoint_name!r} shed the query ({request.status}); "
                "back off and retry, or loosen its AdmissionPolicy"
            )
        self.flush()
        assert request.result is not None
        return request.result

    # ------------------------------------------------------------------
    # execution (shared by flush and serve)
    # ------------------------------------------------------------------
    def _execute(
        self,
        name: str,
        requests: List[ServingRequest],
        timer: Optional[Callable[[], float]] = None,
    ) -> float:
        """Execute one batch with per-request fault isolation.

        A raising batch is split and retried request-by-request, so only the
        request whose seeds actually trigger the fault fails (status
        ``"failed"``, ``error`` naming the endpoint and cause) while its
        batch-mates are served.  Returns the batch's total service seconds.
        """
        endpoint = self._endpoints[name]
        kwargs = {"timer": timer} if timer is not None else {}
        try:
            return endpoint.execute_batch(requests, **kwargs)
        except Exception as exc:
            if len(requests) == 1:
                request = requests[0]
                request.status = "failed"
                request.error = f"endpoint {name!r}: {exc!r}"
                return 0.0
            return sum(self._execute(name, [request], timer=timer) for request in requests)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def flush(self) -> List[ServingRequest]:
        """Drain every endpoint's queue now, fairly; returns completed requests.

        Each endpoint's pending requests are chunked into batches of at most
        its ``max_batch_size`` in submission order (no timeout logic — they
        are all already here), and the batch queues drain through weighted
        round-robin.  As on the legacy flush path, request latency is the
        batch's service time — queueing delay is a :meth:`serve` concept.
        """
        queues: Dict[str, Deque[ScheduledBatch]] = {}
        for name, endpoint in self._endpoints.items():
            pending = endpoint.drain_pending()
            if pending:
                queues[name] = deque(
                    ScheduledBatch(endpoint=name, requests=pending[start:start + endpoint.max_batch_size])
                    for start in range(0, len(pending), endpoint.max_batch_size)
                )
        if not queues:
            return []
        completed: List[ServingRequest] = []

        def execute(name: str, requests: List[ServingRequest]) -> float:
            elapsed = self._execute(name, requests)
            endpoint = self._endpoints[name]
            for request in requests:
                request.latency_s = elapsed
                endpoint.stats.record_outcome(request.status)
                if request.done:
                    endpoint.stats.record_latency(elapsed)
            completed.extend(requests)
            return elapsed

        result = run_event_loop(
            queues, self._wrr, execute, clock=VirtualClock(), stamp_latency=False
        )
        self._log_executions(result.execution_order)
        return completed

    def _log_executions(self, order: List[str]) -> None:
        self.execution_log.extend(order)
        if len(self.execution_log) > EXECUTION_LOG_LIMIT:
            del self.execution_log[:-EXECUTION_LOG_LIMIT]

    def serve(
        self,
        stream: Optional[Sequence[StreamItem]] = None,
        *,
        realtime: bool = False,
        workers: Optional[int] = None,
        timer: Optional[Callable[[], float]] = None,
    ) -> Dict[str, object]:
        """Serve a timed request stream through the event-loop scheduler.

        Args:
            stream: ``(endpoint, seeds)`` or ``(endpoint, seeds, arrival_s)``
                tuples; omitted arrivals default to 0 (a closed-loop burst).
                ``None`` serves only what :meth:`submit` already queued.
            realtime: drive the loop with a monotonic wall clock (admission
                waits for real arrivals) instead of virtual time.
            workers: executor workers for this call (defaults to the
                router's ``num_workers``).
            timer: service-time measurement for batch execution (defaults to
                the wall clock; the saturation study passes
                ``time.thread_time`` for CPU-exclusive accounting).

        Per endpoint, arrivals are micro-batched under its size/timeout
        policy and admission-checked at arrival time (rate bucket, queue
        bound; deadline-expired requests are shed at dispatch, never
        executed); across endpoints, ready batches compete for executor
        workers under weighted round-robin.  Per-request latency = queueing
        + service.

        Returns :meth:`report`; the stream's requests (with per-request
        results, latencies, and statuses — including shed ones) are kept in
        :attr:`last_served`, stream order.
        """
        # Requests admitted before this call complete first, so none are
        # left behind (same contract as the legacy engine).
        self.flush()
        self.last_served = []
        arrivals: List[Tuple[str, ServingRequest]] = []
        for item in stream or []:
            if len(item) == 2:
                endpoint_name, seeds = item
                arrival_s = 0.0
            else:
                endpoint_name, seeds, arrival_s = item
            request = self.endpoint(endpoint_name).make_request(seeds, arrival_s)
            self.last_served.append(request)
            arrivals.append((endpoint_name, request))

        lanes = {  # registration order fixes WRR tie-breaks
            name: LaneSpec(
                max_batch_size=endpoint.max_batch_size,
                batch_timeout_s=endpoint.batch_timeout_s,
                admission=endpoint.admission,
            )
            for name, endpoint in self._endpoints.items()
        }
        workers = self.num_workers if workers is None else int(workers)

        def on_complete(name: str, requests: List[ServingRequest], finish_s: float) -> None:
            stats = self._endpoints[name].stats
            for request in requests:
                if request.done:
                    stats.record_latency(request.latency_s)

        clock = MonotonicClock() if realtime else VirtualClock()
        result = run_serving_loop(
            arrivals,
            lanes,
            self._wrr,
            lambda name, requests: self._execute(name, requests, timer=timer),
            clock=clock,
            workers=workers,
            on_complete=on_complete,
        )
        self._log_executions(result.execution_order)
        for request in result.completed + result.shed:
            self._endpoints[request.endpoint].stats.record_outcome(request.status)
        for name, high_water in result.queue_depth_high_water.items():
            stats = self._endpoints[name].stats
            stats.queue_depth_high_water = max(stats.queue_depth_high_water, high_water)
        self.last_serve_metrics = {
            "workers": result.workers,
            "completed": len(result.completed),
            "shed": len(result.shed),
            "makespan_s": round(result.makespan_s, 6),
            "busy_s": round(result.busy_s, 6),
            # Serial work over schedule length: the executor pool's modelled
            # speedup (1.0 with one worker; capped by lane parallelism).
            "modelled_speedup": (
                round(result.busy_s / result.makespan_s, 3) if result.makespan_s > 0 else 1.0
            ),
        }
        return self.report()

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Restart telemetry on every endpoint (warm arenas and caches stay)."""
        for endpoint in self._endpoints.values():
            endpoint.reset_stats()
        self.execution_log = []
        self.last_serve_metrics = None

    def report(self) -> Dict[str, object]:
        """Router-level view: per-endpoint reports, aggregate, memory budget."""
        out = {
            "endpoints": {name: endpoint.report() for name, endpoint in self._endpoints.items()},
            "aggregate": aggregate_summary(
                endpoint.stats for endpoint in self._endpoints.values()
            ),
            "arena_budget": self.budget.report(),
        }
        if self.last_serve_metrics is not None:
            out["serve"] = dict(self.last_serve_metrics)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Router(endpoints={self.endpoint_names}, budget={self.budget.capacity_bytes}, "
            f"workers={self.num_workers})"
        )
