"""The multi-tenant serving router: named endpoints over one shared executor.

One :class:`Router` hosts any number of named endpoints — each a compiled
module + parent graph + sampler + micro-batching policy
(:mod:`repro.serving.endpoint`) — and multiplexes their request streams onto
one executor under a single :class:`~repro.runtime.planner.SharedArenaBudget`
byte cap.  Scheduling is a real event loop (:mod:`repro.serving.scheduler`):
requests are admitted concurrently across endpoints, each endpoint
micro-batches its own queue, and ready batches compete for the executor under
smooth weighted round-robin, so a heavy tenant cannot starve a light one.

Quickstart::

    from repro.serving import Router

    router = Router(arena_capacity_bytes=64 << 20)
    router.register("rgcn-small", "rgcn", small_graph, in_dim=64, out_dim=64)
    router.register("hgt-large", "hgt", large_graph, in_dim=64, out_dim=64,
                    priority=2, fanouts=(8,))

    rows = router.query("rgcn-small", [3, 17, 42])   # synchronous
    router.submit("hgt-large", [5, 9], arrival_s=0.0)  # async admission
    report = router.serve([("rgcn-small", [1, 2]), ("hgt-large", [7])])
    print(report["aggregate"], report["arena_budget"])
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.frontend.config import CompilerOptions
from repro.graph.hetero_graph import HeteroGraph
from repro.graph.sampler import Fanout
from repro.runtime.module import CompiledRGNNModule
from repro.runtime.planner import SharedArenaBudget
from repro.serving.endpoint import (
    Endpoint,
    ServingRequest,
    resolve_module,
    validate_endpoint_config,
)
from repro.serving.scheduler import (
    MonotonicClock,
    ScheduledBatch,
    VirtualClock,
    WeightedRoundRobin,
    partition_into_batches,
    run_event_loop,
)
from repro.serving.stats import aggregate_summary

#: One entry of a ``Router.serve`` stream: ``(endpoint, seeds)`` or
#: ``(endpoint, seeds, arrival_s)``.
StreamItem = Union[Tuple[str, object], Tuple[str, object, float]]

#: Retention bound of :attr:`Router.execution_log` (most recent batches).
EXECUTION_LOG_LIMIT = 4096


class Router:
    """Admission, scheduling, and memory arbitration across named endpoints.

    Args:
        arena_capacity_bytes: global byte cap of the shared arena budget
            every endpoint leases from (``None`` = unbounded).
        max_arenas: global cap on live arenas across all endpoints (``None``
            = unbounded; the legacy engine shim passes 4, the old per-module
            pool bound).
    """

    def __init__(
        self,
        *,
        arena_capacity_bytes: Optional[int] = None,
        max_arenas: Optional[int] = None,
    ):
        self.budget = SharedArenaBudget(
            capacity_bytes=arena_capacity_bytes, max_arenas=max_arenas
        )
        self._endpoints: Dict[str, Endpoint] = {}
        self._wrr = WeightedRoundRobin()
        #: Endpoint name per executed batch, in execution order — the
        #: fairness tests and the study read this to see the interleaving.
        #: Bounded to the most recent :data:`EXECUTION_LOG_LIMIT` batches so
        #: a long-lived router's telemetry cannot grow without limit.
        self.execution_log: List[str] = []
        #: Requests admitted by the most recent :meth:`serve` call, in stream
        #: order — callers that need per-request results (e.g. the
        #: multi-tenant study's bit-identical cross-check) read them here.
        #: Replaced wholesale on every ``serve``, so it only ever pins one
        #: stream's requests.
        self.last_served: List[ServingRequest] = []

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        model: Union[str, CompiledRGNNModule],
        parent_graph: HeteroGraph,
        *,
        in_dim: int = 64,
        out_dim: int = 64,
        options: Optional[CompilerOptions] = None,
        features: Optional[np.ndarray] = None,
        fanouts: Sequence[Fanout] = (None,),
        priority: int = 1,
        arena_budget: Optional[int] = None,
        max_batch_size: int = 8,
        batch_timeout_s: float = 0.002,
        block_cache_size: int = 32,
        sampler_seed: int = 0,
        seed: int = 0,
    ) -> Endpoint:
        """Create a named endpoint: compiled module + graph + sampler + stats.

        Args:
            name: unique endpoint name; the address of ``submit``/``query``.
            model: a model name (``"rgcn"`` / ``"rgat"`` / ``"hgt"``)
                compiled here, or an already-compiled module to adopt.
            parent_graph: the graph this endpoint's requests sample from.
            priority: weighted-round-robin weight (≥ 1).
            arena_budget: optional per-endpoint byte cap inside the shared
                budget (the global ``arena_capacity_bytes`` always applies).
            block_cache_size: LRU capacity of the sampled-block cache
                (entries; 0 disables).
            Remaining arguments mirror the legacy ``ServingEngine``.
        """
        if name in self._endpoints:
            raise ValueError(f"endpoint {name!r} is already registered")
        # Cheap config checks fail before the (expensive) model compile.
        validate_endpoint_config(name, priority, max_batch_size, batch_timeout_s, block_cache_size)
        module, program, kept_options = resolve_module(
            model, parent_graph, in_dim=in_dim, out_dim=out_dim, options=options, seed=seed
        )
        arena_source = (
            self.budget.tenant(name, capacity_bytes=arena_budget)
            if module.memory_planner is not None
            else None
        )
        try:
            endpoint = Endpoint(
                name,
                module,
                parent_graph,
                features=features,
                fanouts=fanouts,
                priority=priority,
                max_batch_size=max_batch_size,
                batch_timeout_s=batch_timeout_s,
                arena_source=arena_source,
                block_cache_size=block_cache_size,
                program=program,
                options=kept_options,
                sampler_seed=sampler_seed,
                seed=seed,
            )
        except Exception:
            # Roll the tenant back: a failed registration must not leave a
            # phantom entry (or a sticky per-tenant cap) in the budget.
            if arena_source is not None:
                self.budget.drop_tenant(name)
            raise
        self._endpoints[name] = endpoint
        self._wrr.register(name, priority)
        return endpoint

    def endpoint(self, name: str) -> Endpoint:
        """The endpoint registered under ``name`` (clear error otherwise)."""
        try:
            return self._endpoints[name]
        except KeyError:
            known = ", ".join(repr(n) for n in self._endpoints) or "none"
            raise ValueError(
                f"unknown endpoint {name!r}; registered endpoints: {known}"
            ) from None

    @property
    def endpoint_names(self) -> List[str]:
        return list(self._endpoints)

    def __contains__(self, name: str) -> bool:
        return name in self._endpoints

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(self, endpoint_name: str, seeds, arrival_s: float = 0.0) -> ServingRequest:
        """Admit one request asynchronously; seeds are validated *now*.

        The request completes on the next :meth:`flush` / :meth:`serve`.
        """
        return self.endpoint(endpoint_name).submit(seeds, arrival_s)

    def query(self, endpoint_name: str, seeds) -> np.ndarray:
        """Synchronous single query: ``(len(seeds), out_dim)`` output rows.

        Flushes the router, so any previously submitted requests (on any
        endpoint) complete too.
        """
        request = self.submit(endpoint_name, seeds)
        self.flush()
        assert request.result is not None
        return request.result

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _drain_pending(self) -> Dict[str, List[ServingRequest]]:
        drained: Dict[str, List[ServingRequest]] = {}
        for name, endpoint in self._endpoints.items():
            if endpoint.pending:
                drained[name], endpoint.pending = endpoint.pending, []
        return drained

    def flush(self) -> List[ServingRequest]:
        """Drain every endpoint's queue now, fairly; returns completed requests.

        Each endpoint's pending requests are chunked into batches of at most
        its ``max_batch_size`` in submission order (no timeout logic — they
        are all already here), and the batch queues drain through weighted
        round-robin.  As on the legacy flush path, request latency is the
        batch's service time — queueing delay is a :meth:`serve` concept.
        """
        queues: Dict[str, Deque[ScheduledBatch]] = {}
        for name, pending in self._drain_pending().items():
            endpoint = self._endpoints[name]
            queues[name] = deque(
                ScheduledBatch(endpoint=name, requests=pending[start:start + endpoint.max_batch_size])
                for start in range(0, len(pending), endpoint.max_batch_size)
            )
        if not queues:
            return []
        completed: List[ServingRequest] = []

        def execute(name: str, requests: List[ServingRequest]) -> float:
            elapsed = self._endpoints[name].execute_batch(requests)
            for request in requests:
                request.latency_s = elapsed
                self._endpoints[name].stats.record_latency(elapsed)
            completed.extend(requests)
            return elapsed

        result = run_event_loop(
            queues, self._wrr, execute, clock=VirtualClock(), stamp_latency=False
        )
        self._log_executions(result.execution_order)
        return completed

    def _log_executions(self, order: List[str]) -> None:
        self.execution_log.extend(order)
        if len(self.execution_log) > EXECUTION_LOG_LIMIT:
            del self.execution_log[:-EXECUTION_LOG_LIMIT]

    def serve(
        self,
        stream: Optional[Sequence[StreamItem]] = None,
        *,
        realtime: bool = False,
    ) -> Dict[str, object]:
        """Serve a timed request stream through the event-loop scheduler.

        Args:
            stream: ``(endpoint, seeds)`` or ``(endpoint, seeds, arrival_s)``
                tuples; omitted arrivals default to 0 (a closed-loop burst).
                ``None`` serves only what :meth:`submit` already queued.
            realtime: drive the loop with a monotonic wall clock (admission
                waits for real arrivals) instead of virtual time.

        Per endpoint, arrivals are micro-batched under its size/timeout
        policy; across endpoints, ready batches compete for the executor
        under weighted round-robin.  Per-request latency = queueing + service.

        Returns :meth:`report`; the admitted requests (with per-request
        results and latencies) are kept in :attr:`last_served`, stream order.
        """
        # Requests admitted before this call complete first, so none are
        # left behind (same contract as the legacy engine).
        self.flush()
        self.last_served = []
        per_endpoint: Dict[str, List[ServingRequest]] = {}
        for item in stream or []:
            if len(item) == 2:
                endpoint_name, seeds = item
                arrival_s = 0.0
            else:
                endpoint_name, seeds, arrival_s = item
            request = self.endpoint(endpoint_name).make_request(seeds, arrival_s)
            self.last_served.append(request)
            per_endpoint.setdefault(endpoint_name, []).append(request)

        queues: Dict[str, Deque[ScheduledBatch]] = {}
        for name in self._endpoints:  # registration order fixes WRR tie-breaks
            if name not in per_endpoint:
                continue
            endpoint = self._endpoints[name]
            queues[name] = deque(partition_into_batches(
                per_endpoint[name], name, endpoint.max_batch_size, endpoint.batch_timeout_s
            ))
        if queues:
            def execute(name: str, requests: List[ServingRequest]) -> float:
                return self._endpoints[name].execute_batch(requests)

            def on_complete(name: str, requests: List[ServingRequest], finish_s: float) -> None:
                for request in requests:
                    self._endpoints[name].stats.record_latency(request.latency_s)

            clock = MonotonicClock() if realtime else VirtualClock()
            result = run_event_loop(queues, self._wrr, execute, clock=clock, on_complete=on_complete)
            self._log_executions(result.execution_order)
        return self.report()

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Restart telemetry on every endpoint (warm arenas and caches stay)."""
        for endpoint in self._endpoints.values():
            endpoint.reset_stats()
        self.execution_log = []

    def report(self) -> Dict[str, object]:
        """Router-level view: per-endpoint reports, aggregate, memory budget."""
        return {
            "endpoints": {name: endpoint.report() for name, endpoint in self._endpoints.items()},
            "aggregate": aggregate_summary(
                endpoint.stats for endpoint in self._endpoints.values()
            ),
            "arena_budget": self.budget.report(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Router(endpoints={self.endpoint_names}, budget={self.budget.capacity_bytes})"
