"""Serving telemetry: per-batch records, endpoint summaries, aggregate views.

The ROADMAP's serving goal is characterised the way HPC platform studies
characterise hardware: not one number, but throughput, latency percentiles,
batch occupancy, and reuse rates (plan replays, arena hits, block-cache hits)
reported together so regressions in any one dimension are visible.  With the
multi-tenant router, telemetry comes in two scopes: one
:class:`EngineStats` per endpoint, and :func:`aggregate_summary` pooling
every endpoint's records into the router-level view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence


@dataclass
class BatchRecord:
    """Telemetry of one executed micro-batch."""

    num_requests: int
    num_seeds: int
    block_nodes: int
    block_edges: int
    sample_seconds: float
    execute_seconds: float
    plan_replayed: Optional[bool] = None
    block_cache_hit: Optional[bool] = None

    @property
    def total_seconds(self) -> float:
        return self.sample_seconds + self.execute_seconds


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) of a sequence, by linear interpolation.

    Well-defined for *every* history length: an empty history yields ``0.0``
    (there is nothing to summarise), a single record yields that record, and
    ``q`` is clamped into [0, 100] — no index can ever fall outside the
    sorted data.  Matches ``numpy.percentile``'s default (linear) method on
    longer histories.
    """
    data = sorted(float(v) for v in values)
    if not data:
        return 0.0
    if len(data) == 1:
        return data[0]
    q = min(max(float(q), 0.0), 100.0)
    rank = (len(data) - 1) * (q / 100.0)
    low = int(rank)
    high = min(low + 1, len(data) - 1)
    fraction = rank - low
    return data[low] * (1.0 - fraction) + data[high] * fraction


@dataclass
class EngineStats:
    """Accumulated serving telemetry of one engine or endpoint.

    ``arena`` optionally references the owner's arena counters — an
    :class:`~repro.runtime.planner.ArenaPoolStats` or a
    :class:`~repro.runtime.planner.TenantArenaSource` (both expose
    hits/misses/evictions/hit_rate) — so :meth:`report` can surface memory
    reuse next to throughput without the caller stitching dicts together.
    """

    batches: List[BatchRecord] = field(default_factory=list)
    request_latencies: List[float] = field(default_factory=list)
    arena: Optional[object] = None
    #: Admission-control counters (all zero when no admission policy is set,
    #: in which case the summary omits them entirely).
    admitted: int = 0
    shed_rate: int = 0
    shed_queue: int = 0
    shed_deadline: int = 0
    failed_requests: int = 0
    queue_depth_high_water: int = 0

    # ------------------------------------------------------------------
    def record_batch(self, record: BatchRecord) -> None:
        self.batches.append(record)

    def record_latency(self, seconds: float) -> None:
        self.request_latencies.append(seconds)

    def record_outcome(self, status: str) -> None:
        """Fold one request's terminal status into the admission counters."""
        if status == "queued" or status == "done":
            self.admitted += 1
        elif status == "shed-rate":
            self.shed_rate += 1
        elif status == "shed-queue":
            self.shed_queue += 1
        elif status == "shed-deadline":
            self.shed_deadline += 1
        elif status == "failed":
            self.admitted += 1
            self.failed_requests += 1

    # ------------------------------------------------------------------
    @property
    def num_batches(self) -> int:
        return len(self.batches)

    @property
    def num_requests(self) -> int:
        return sum(record.num_requests for record in self.batches)

    @property
    def num_seeds(self) -> int:
        return sum(record.num_seeds for record in self.batches)

    @property
    def total_seconds(self) -> float:
        """Wall time spent sampling + executing across all batches."""
        return sum(record.total_seconds for record in self.batches)

    @property
    def mean_occupancy(self) -> float:
        """Mean requests per batch (the micro-batching win lives here)."""
        return self.num_requests / self.num_batches if self.num_batches else 0.0

    @property
    def requests_per_second(self) -> float:
        total = self.total_seconds
        return self.num_requests / total if total > 0 else 0.0

    @property
    def seeds_per_second(self) -> float:
        total = self.total_seconds
        return self.num_seeds / total if total > 0 else 0.0

    @property
    def plan_replay_rate(self) -> Optional[float]:
        """Fraction of batches that replayed the cached plan (None if untracked)."""
        tracked = [record.plan_replayed for record in self.batches if record.plan_replayed is not None]
        if not tracked:
            return None
        return sum(tracked) / len(tracked)

    def latency_percentile(self, q: float) -> float:
        return percentile(self.request_latencies, q)

    @property
    def total_shed(self) -> int:
        return self.shed_rate + self.shed_queue + self.shed_deadline

    @property
    def shed_fraction(self) -> float:
        """Shed requests over all terminal outcomes (admitted + shed)."""
        offered = self.admitted + self.total_shed
        return self.total_shed / offered if offered else 0.0

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """One flat dict for reports and the benchmark tables.

        Admission counters appear only once admission control has actually
        touched the endpoint (``record_outcome`` calls), so endpoints without
        a policy keep the legacy summary shape.
        """
        out = self._base_summary()
        if self.admitted or self.total_shed or self.queue_depth_high_water:
            out.update({
                "admitted": self.admitted,
                "shed_rate_limited": self.shed_rate,
                "shed_queue_full": self.shed_queue,
                "shed_deadline": self.shed_deadline,
                "deadline_misses": self.shed_deadline,
                "failed_requests": self.failed_requests,
                "shed_fraction": round(self.shed_fraction, 3),
                "queue_depth_high_water": self.queue_depth_high_water,
            })
        return out

    def _base_summary(self) -> Dict[str, object]:
        return {
            "requests": self.num_requests,
            "batches": self.num_batches,
            "mean_occupancy": round(self.mean_occupancy, 2),
            "throughput_rps": round(self.requests_per_second, 1),
            "seeds_per_s": round(self.seeds_per_second, 1),
            "latency_p50_ms": round(self.latency_percentile(50) * 1e3, 3),
            "latency_p95_ms": round(self.latency_percentile(95) * 1e3, 3),
            "plan_replay_rate": self.plan_replay_rate,
        }

    def report(self) -> Dict[str, object]:
        """:meth:`summary` plus the attached arena hit/miss/eviction counters."""
        out = self.summary()
        if self.arena is not None:
            out["arena_hits"] = int(self.arena.hits)
            out["arena_misses"] = int(self.arena.misses)
            out["arena_evictions"] = int(self.arena.evictions)
            out["arena_pool_hit_rate"] = round(float(self.arena.hit_rate), 3)
        return out


def aggregate_summary(stats: Iterable[EngineStats]) -> Dict[str, object]:
    """Pool several endpoints' records into one router-level summary.

    Throughput here is total requests over the *sum* of busy seconds — the
    endpoints share one executor, so their service times accumulate rather
    than overlap — and latency percentiles are computed over the pooled
    per-request latencies.
    """
    stats = list(stats)
    requests = sum(s.num_requests for s in stats)
    batches = sum(s.num_batches for s in stats)
    seeds = sum(s.num_seeds for s in stats)
    busy = sum(s.total_seconds for s in stats)
    latencies: List[float] = []
    tracked_replays: List[bool] = []
    for s in stats:
        latencies.extend(s.request_latencies)
        tracked_replays.extend(
            record.plan_replayed for record in s.batches if record.plan_replayed is not None
        )
    out = {
        "endpoints": len(stats),
        "requests": requests,
        "batches": batches,
        "mean_occupancy": round(requests / batches, 2) if batches else 0.0,
        "throughput_rps": round(requests / busy, 1) if busy > 0 else 0.0,
        "seeds_per_s": round(seeds / busy, 1) if busy > 0 else 0.0,
        "latency_p50_ms": round(percentile(latencies, 50) * 1e3, 3),
        "latency_p95_ms": round(percentile(latencies, 95) * 1e3, 3),
        # Same zero-record guard as EngineStats.plan_replay_rate: pooling
        # zero tracked batch records must report None, not divide by zero.
        "plan_replay_rate": (
            round(sum(tracked_replays) / len(tracked_replays), 3) if tracked_replays else None
        ),
    }
    admitted = sum(s.admitted for s in stats)
    shed = sum(s.total_shed for s in stats)
    high_water = max((s.queue_depth_high_water for s in stats), default=0)
    if admitted or shed or high_water:
        offered = admitted + shed
        out.update({
            "admitted": admitted,
            "shed": shed,
            "shed_fraction": round(shed / offered, 3) if offered else 0.0,
            "deadline_misses": sum(s.shed_deadline for s in stats),
            "failed_requests": sum(s.failed_requests for s in stats),
            "queue_depth_high_water": high_water,
        })
    return out
