"""Serving telemetry: per-batch records and engine-level summaries.

The ROADMAP's serving goal is characterised the way HPC platform studies
characterise hardware: not one number, but throughput, latency percentiles,
batch occupancy, and reuse rates (plan replays, arena-pool hits) reported
together so regressions in any one dimension are visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class BatchRecord:
    """Telemetry of one executed micro-batch."""

    num_requests: int
    num_seeds: int
    block_nodes: int
    block_edges: int
    sample_seconds: float
    execute_seconds: float
    plan_replayed: Optional[bool] = None

    @property
    def total_seconds(self) -> float:
        return self.sample_seconds + self.execute_seconds


def percentile(values: List[float], q: float) -> float:
    """The q-th percentile (0..100) of a list; 0.0 when empty."""
    if not values:
        return 0.0
    return float(np.percentile(values, q))


@dataclass
class EngineStats:
    """Accumulated serving telemetry of one engine."""

    batches: List[BatchRecord] = field(default_factory=list)
    request_latencies: List[float] = field(default_factory=list)

    # ------------------------------------------------------------------
    def record_batch(self, record: BatchRecord) -> None:
        self.batches.append(record)

    def record_latency(self, seconds: float) -> None:
        self.request_latencies.append(seconds)

    # ------------------------------------------------------------------
    @property
    def num_batches(self) -> int:
        return len(self.batches)

    @property
    def num_requests(self) -> int:
        return sum(record.num_requests for record in self.batches)

    @property
    def num_seeds(self) -> int:
        return sum(record.num_seeds for record in self.batches)

    @property
    def total_seconds(self) -> float:
        """Wall time spent sampling + executing across all batches."""
        return sum(record.total_seconds for record in self.batches)

    @property
    def mean_occupancy(self) -> float:
        """Mean requests per batch (the micro-batching win lives here)."""
        return self.num_requests / self.num_batches if self.num_batches else 0.0

    @property
    def requests_per_second(self) -> float:
        total = self.total_seconds
        return self.num_requests / total if total > 0 else 0.0

    @property
    def seeds_per_second(self) -> float:
        total = self.total_seconds
        return self.num_seeds / total if total > 0 else 0.0

    @property
    def plan_replay_rate(self) -> Optional[float]:
        """Fraction of batches that replayed the cached plan (None if untracked)."""
        tracked = [record.plan_replayed for record in self.batches if record.plan_replayed is not None]
        if not tracked:
            return None
        return sum(tracked) / len(tracked)

    def latency_percentile(self, q: float) -> float:
        return percentile(self.request_latencies, q)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """One flat dict for reports and the benchmark tables."""
        return {
            "requests": self.num_requests,
            "batches": self.num_batches,
            "mean_occupancy": round(self.mean_occupancy, 2),
            "throughput_rps": round(self.requests_per_second, 1),
            "seeds_per_s": round(self.seeds_per_second, 1),
            "latency_p50_ms": round(self.latency_percentile(50) * 1e3, 3),
            "latency_p95_ms": round(self.latency_percentile(95) * 1e3, 3),
            "plan_replay_rate": self.plan_replay_rate,
        }
