"""SLO-aware admission control for serving endpoints.

An overloaded router used to queue without bound: every request was admitted,
queues grew with offered load, and p99 latency collapsed past the capacity
knee.  This module adds the three standard guards, layered *in front of* the
WRR scheduler so fairness still decides who runs among admitted work:

* **Token-bucket rate limiting** (:class:`TokenBucket`) — per-tenant
  sustained requests/s with a bounded burst allowance.  The bucket is driven
  by explicit timestamps (the event loop's virtual or monotonic clock), so
  admission decisions replay deterministically under a
  :class:`~repro.serving.scheduler.VirtualClock`.

* **Bounded queues with backpressure** — an endpoint whose admitted-but-
  uncompleted depth reaches ``max_queue_depth`` sheds new arrivals instead of
  queueing them; the caller sees the shed status immediately and can back
  off.

* **Deadline shedding** — requests carry an absolute deadline
  (``arrival + deadline_s``); the scheduler drops a request *at dispatch
  time* when its deadline has already expired, so executor capacity is never
  spent on work whose SLO is already lost.  Past the knee this converts
  unbounded latency growth into a rising shed rate while the latency of
  admitted requests stays bounded (wait ≤ deadline, plus one batch's
  service).

Shedding is non-throwing: a shed request is returned with
``status`` ∈ {``"shed-rate"``, ``"shed-queue"``, ``"shed-deadline"``} and no
result, and per-endpoint shed/queue-depth counters land in
:class:`~repro.serving.stats.EngineStats`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class AdmissionPolicy:
    """Per-endpoint admission limits; ``None`` fields are unenforced.

    Args:
        rate_limit: sustained admission rate in requests/s.
        burst: token-bucket depth (max requests admitted back-to-back after
            an idle period); defaults to ``max(1, ceil(rate_limit))`` — one
            second's worth of traffic — when a rate limit is set.
        max_queue_depth: max admitted-but-uncompleted requests per endpoint.
        deadline_s: per-request SLO; a request not *dispatched* within this
            many seconds of its arrival is shed instead of executed.
    """

    rate_limit: Optional[float] = None
    burst: Optional[int] = None
    max_queue_depth: Optional[int] = None
    deadline_s: Optional[float] = None

    def __post_init__(self):
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ValueError("rate_limit must be positive (or None for unlimited)")
        if self.burst is not None:
            if self.rate_limit is None:
                raise ValueError("burst needs a rate_limit (a bucket without a refill rate)")
            if self.burst < 1:
                raise ValueError("burst must be >= 1 (or None for the default)")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 (or None for unbounded)")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None for no deadline)")

    @property
    def effective_burst(self) -> Optional[int]:
        if self.rate_limit is None:
            return None
        return self.burst if self.burst is not None else max(1, math.ceil(self.rate_limit))


class TokenBucket:
    """A deterministic token bucket driven by caller-supplied timestamps.

    Starts full.  ``try_admit(now)`` refills ``rate`` tokens per elapsed
    second (capped at ``burst``), then admits iff at least one whole token is
    available.  Timestamps may repeat or (when a multi-worker loop folds a
    completion before a logically-earlier arrival) step backwards; refill
    only ever uses forward progress, so the admitted count over any window
    ``w`` never exceeds ``burst + rate * w``.
    """

    def __init__(self, rate: float, burst: int):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last_s = 0.0
        self.admitted = 0
        self.rejected = 0

    def try_admit(self, now_s: float) -> bool:
        now_s = float(now_s)
        if now_s > self._last_s:
            self.tokens = min(self.burst, self.tokens + (now_s - self._last_s) * self.rate)
            self._last_s = now_s
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.admitted += 1
            return True
        self.rejected += 1
        return False


class AdmissionController:
    """One endpoint's admission state: policy + bucket, shared by the
    ``submit`` path and the serving event loop.

    ``admit`` returns ``None`` for an admitted request (its ``status`` is set
    to ``"queued"`` and its absolute ``deadline_s`` stamped) or the shed
    status string.  Decisions are made at the request's *arrival* time —
    under a virtual clock the same stream always sheds the same requests.
    Queue-depth checks come before the rate bucket so a backpressured
    request does not also burn a token.
    """

    def __init__(self, policy: AdmissionPolicy):
        self.policy = policy
        self.bucket = (
            TokenBucket(policy.rate_limit, policy.effective_burst)
            if policy.rate_limit is not None
            else None
        )

    def admit(self, request, now_s: float, queue_depth: int) -> Optional[str]:
        if (
            self.policy.max_queue_depth is not None
            and queue_depth >= self.policy.max_queue_depth
        ):
            request.status = "shed-queue"
            return "shed-queue"
        if self.bucket is not None and not self.bucket.try_admit(now_s):
            request.status = "shed-rate"
            return "shed-rate"
        request.status = "queued"
        if self.policy.deadline_s is not None:
            request.deadline_s = float(now_s) + self.policy.deadline_s
        return None

    @staticmethod
    def deadline_expired(request, now_s: float) -> bool:
        """True when dispatching ``request`` at ``now_s`` cannot meet its SLO."""
        return request.deadline_s is not None and float(now_s) > request.deadline_s
