"""Hector programming interface: compiler options, compile entry points, decorator."""

from repro.frontend.config import CompilerOptions
from repro.frontend.compiler import (
    CompilationResult,
    compile_model,
    compile_program,
    hector_compile,
)

__all__ = [
    "CompilerOptions",
    "CompilationResult",
    "compile_program",
    "compile_model",
    "hector_compile",
]
