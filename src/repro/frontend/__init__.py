"""Hector programming interface: compiler options, compile entry points, decorator."""

from repro.frontend.cache import (
    CompilationCache,
    clear_compilation_cache,
    global_compilation_cache,
)
from repro.frontend.config import CompilerOptions
from repro.frontend.compiler import (
    CompilationResult,
    compile_model,
    compile_program,
    hector_compile,
)

__all__ = [
    "CompilerOptions",
    "CompilationResult",
    "CompilationCache",
    "compile_program",
    "compile_model",
    "hector_compile",
    "global_compilation_cache",
    "clear_compilation_cache",
]
