"""Compiler configuration.

The optimization switches correspond to the configurations evaluated in the
paper: unoptimised (``U``), compact materialization (``C``), linear operator
reordering (``R``), and both (``C+R``) — Table 5 and Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Optional

from repro.ir.intra_op.schedule import GemmSchedule, TraversalSchedule


@dataclass
class CompilerOptions:
    """Options controlling the pass pipeline, schedules, lowering, and runtime.

    Attributes:
        compact_materialization: enable the compact materialization pass.
        linear_operator_reordering: enable the reordering pass.
        enable_fusion: fuse adjacent traversal operators into one kernel.
        emit_backward: also generate backward (training) kernels.
        gemm_tile_size: shared-memory tile width of GEMM instances.
        gemm_coarsening: thread coarsening factor of GEMM instances (1, 2, 4).
        gemm_launch_bounds: optional ``__launch_bounds__`` register cap.
        traversal_rows_per_block: traversal work assignment.
        traversal_partial_aggregation: accumulate partial results before atomics.
        enable_compilation_cache: reuse :class:`CompilationResult` objects
            across ``compile_program`` / ``compile_model`` calls.  Results are
            keyed on the program's structural fingerprint plus every
            codegen-relevant option, so two models sharing a subprogram (or the
            same model compiled twice) skip the pass pipeline, lowering, and
            the ``exec`` of the generated kernels entirely.  The cache is
            transparent: a hit returns the identical plan and generated module
            that a fresh compilation would produce.
        enable_memory_planning: analyse the plan's buffer lifetimes and bind
            intermediate buffers from a preallocated
            :class:`repro.runtime.planner.BufferArena` instead of allocating
            fresh numpy arrays on every forward/backward invocation.
            Inference-only plans additionally share arena slots between
            intermediates with disjoint lifetimes.
        fuse_elementwise: run the
            :class:`repro.ir.inter_op.passes.ElementwiseFusionPass`
            (dependence-preserving clustering of traversal-eligible operators
            so the greedy lowering fuses larger groups) and merge adjacent
            compatible traversal kernels after lowering.  Disabled by default
            because it changes kernel counts relative to the paper's figures;
            the hot-path runtime configurations enable it.
        optimization_level: ``None`` (use the switches as given) or ``"auto"``
            — ask the :mod:`repro.tuner` autotuner to pick the best point of
            the compilation design space for the (program, graph schema,
            dimensions) at hand.  ``"auto"`` is resolved by ``compile_model``
            (or :func:`repro.tuner.resolve_tuned_options`) *before*
            compilation; ``compile_program`` rejects unresolved ``"auto"``
            options.
        backend: name of the registered execution backend
            (:mod:`repro.ir.codegen.registry`) that turns the lowered kernel
            plan into something runnable.  ``"python-interp"`` (default) emits
            one Python function per kernel plus a fused dispatch program;
            ``"python-codegen"`` emits a single specialised ``main_forward`` /
            ``main_backward`` source function per plan — kernels inlined,
            segment loops unrolled over the schema's relations, buffers and
            graph index arrays resolved to function locals.  The backend is
            part of :meth:`cache_key`, so interp and codegen artifacts never
            collide in the compilation cache, and a searchable tuner axis
            (:class:`repro.tuner.TuningSpace`).  ``"mixed"`` selects a
            backend per *kernel* (interp for numpy-bound traversal kernels,
            codegen segments for dispatch-bound chains).
        mixed_assignment: optional explicit per-kernel assignment for the
            ``"mixed"`` backend — a tuple of ``(kernel_name, token)`` pairs
            with tokens ``"interp"``/``"codegen"`` (the tuner's beam search
            emits these).  Kernels not named fall back to the cost-model
            policy.  Only valid with ``backend="mixed"``.
    """

    compact_materialization: bool = False
    linear_operator_reordering: bool = False
    enable_fusion: bool = True
    emit_backward: bool = True
    gemm_tile_size: int = 16
    gemm_coarsening: int = 1
    gemm_launch_bounds: Optional[int] = None
    traversal_rows_per_block: int = 128
    traversal_partial_aggregation: bool = True
    enable_compilation_cache: bool = True
    enable_memory_planning: bool = True
    fuse_elementwise: bool = False
    optimization_level: Optional[str] = None
    backend: str = "python-interp"
    mixed_assignment: Optional[tuple] = None

    def __post_init__(self):
        if self.optimization_level not in (None, "auto"):
            raise ValueError(
                f"unknown optimization_level {self.optimization_level!r}; expected None or 'auto'"
            )
        if self.mixed_assignment is not None:
            if self.backend != "mixed":
                raise ValueError(
                    "mixed_assignment is only valid with backend='mixed' "
                    f"(got backend={self.backend!r})"
                )
            # Normalise JSON round-trips (lists of lists) to hashable tuples.
            pairs = tuple((str(name), str(token)) for name, token in self.mixed_assignment)
            bad = sorted({token for _, token in pairs if token not in ("interp", "codegen")})
            if bad:
                raise ValueError(
                    f"unknown mixed_assignment tokens {bad}; use 'interp' or 'codegen'"
                )
            self.mixed_assignment = pairs

    @property
    def is_auto(self) -> bool:
        """Whether these options request autotuning instead of fixed switches."""
        return self.optimization_level == "auto"

    def gemm_schedule(self) -> GemmSchedule:
        """Schedule applied to every GEMM-template instance."""
        return GemmSchedule(
            tile_size=self.gemm_tile_size,
            coarsening=self.gemm_coarsening,
            launch_bounds=self.gemm_launch_bounds,
        )

    def traversal_schedule(self) -> TraversalSchedule:
        """Schedule applied to every traversal-template instance."""
        return TraversalSchedule(
            rows_per_block=self.traversal_rows_per_block,
            partial_aggregation=self.traversal_partial_aggregation,
        )

    def label(self) -> str:
        """Short configuration label used in tables (U, C, R, C+R)."""
        if self.compact_materialization and self.linear_operator_reordering:
            return "C+R"
        if self.compact_materialization:
            return "C"
        if self.linear_operator_reordering:
            return "R"
        return "U"

    def with_(self, **overrides) -> "CompilerOptions":
        """Return a copy with selected fields replaced."""
        return replace(self, **overrides)

    def schedule_label(self) -> str:
        """Compact description of the non-default schedule/fusion choices."""
        default_gemm, default_traversal = GemmSchedule(), TraversalSchedule()
        parts = [self.label()]
        if self.fuse_elementwise:
            parts.append("fuse")
        if (self.gemm_tile_size, self.gemm_coarsening) != (
            default_gemm.tile_size,
            default_gemm.coarsening,
        ):
            parts.append(f"gemm{self.gemm_tile_size}x{self.gemm_coarsening}")
        if (self.traversal_rows_per_block, self.traversal_partial_aggregation) != (
            default_traversal.rows_per_block,
            default_traversal.partial_aggregation,
        ):
            suffix = "" if self.traversal_partial_aggregation else "-nopartial"
            parts.append(f"trav{self.traversal_rows_per_block}{suffix}")
        if self.backend != "python-interp":
            parts.append(self.backend)
        return "+".join(parts)

    def to_dict(self) -> dict:
        """JSON-serialisable mapping of every option field (tuning database)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "CompilerOptions":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown CompilerOptions fields: {sorted(unknown)}")
        return cls(**data)

    def cache_key(self) -> tuple:
        """Hashable key of every option that changes the compiled artefact.

        ``enable_compilation_cache`` is deliberately excluded: it controls
        whether the cache is consulted, not what is produced.
        ``optimization_level`` is likewise excluded: ``"auto"`` is resolved to
        concrete switches before any compilation happens.
        """
        return (
            self.compact_materialization,
            self.linear_operator_reordering,
            self.enable_fusion,
            self.emit_backward,
            self.gemm_tile_size,
            self.gemm_coarsening,
            self.gemm_launch_bounds,
            self.traversal_rows_per_block,
            self.traversal_partial_aggregation,
            self.enable_memory_planning,
            self.fuse_elementwise,
            self.backend,
            self.mixed_assignment,
        )


#: The four optimization configurations studied in Table 5 / Figure 9.
CONFIGURATIONS = {
    "U": CompilerOptions(),
    "C": CompilerOptions(compact_materialization=True),
    "R": CompilerOptions(linear_operator_reordering=True),
    "C+R": CompilerOptions(compact_materialization=True, linear_operator_reordering=True),
}
