"""Compilation cache: reuse compiled artefacts across calls and models.

Recompiling an RGNN layer on every ``compile_model`` / ``hector_compile`` call
repeats the pass pipeline, the lowering driver, and — most expensively — the
``exec`` of the generated Python kernels.  None of that work depends on
anything but the program's structure and the compiler options, so this module
provides a process-wide :class:`CompilationCache` keyed on

* a structural fingerprint of the inter-op program (operators, values,
  dimensions — not object identity),
* the :meth:`repro.frontend.config.CompilerOptions.cache_key` tuple — which
  includes ``options.backend``, so ``python-interp`` and ``python-codegen``
  artefacts of one program occupy distinct entries and a backend switch can
  never replay the other backend's generated module — and
* optionally a graph *schema* fingerprint (node/edge type vocabulary), so
  callers that specialise per schema get distinct entries.

Two models sharing a subprogram, or one model compiled repeatedly (the
compile-once-run-many serving pattern), hit the cache and receive the
identical :class:`~repro.frontend.compiler.CompilationResult`.  This mirrors
how gt4py's backends cache generated artefacts per builder fingerprint and
how slope compiles a program once into a single executable rather than
re-deriving it per call.

Exact node/edge counts deliberately never enter the key: compiled plans are
specialised per (schema, feature dims), not per graph size, so differently
sized sampled minibatch blocks of one graph replay one plan with zero
recompiles.  Size-dependent runtime state (arena slabs) is handled one layer
down, where :func:`repro.runtime.planner.dim_bucket` buckets runtime
dimensions into power-of-two classes and the
:class:`~repro.runtime.planner.ArenaPool` shares one pooled arena per bucket.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.ir.inter_op.program import InterOpProgram

if TYPE_CHECKING:  # pragma: no cover - type hints only, avoids an import cycle
    from repro.frontend.compiler import CompilationResult
    from repro.frontend.config import CompilerOptions
    from repro.graph.hetero_graph import HeteroGraph

#: Cache keys: (program fingerprint, options key, graph-schema fingerprint).
CacheKey = Tuple[str, tuple, Optional[str]]


def fingerprint_program(program: InterOpProgram) -> str:
    """Stable structural fingerprint of an inter-op program.

    Two programs with the same values, operators, and dimensions fingerprint
    identically regardless of object identity, so independently built copies
    of a model share one cache entry.
    """
    digest = hashlib.sha256()
    digest.update(repr((program.name, program.in_dim, program.out_dim)).encode())
    for name in sorted(program.values):
        info = program.values[name]
        digest.update(
            repr(
                (
                    name,
                    info.space.value,
                    tuple(info.feature_shape),
                    info.per_type,
                    info.is_input,
                    info.is_parameter,
                    info.is_output,
                    info.dtype_bytes,
                )
            ).encode()
        )
    for operator in program.operators:
        digest.update(
            repr(
                (
                    operator.name,
                    operator.kind.value,
                    operator.context.value,
                    tuple(operator.inputs),
                    operator.output,
                    operator.type_selector.value,
                    tuple(sorted((k, v.value) for k, v in operator.bindings.items())),
                    tuple(sorted((k, repr(v)) for k, v in operator.attrs.items())),
                )
            ).encode()
        )
    return digest.hexdigest()


def fingerprint_graph_schema(graph: "HeteroGraph") -> str:
    """Fingerprint of a graph's *schema* (type vocabulary, not its edges).

    The generated kernels are specialised per schema — parameter shapes and
    segment counts follow the node/edge type vocabulary — but not per concrete
    edge list or node/edge count, so serving many graphs with one schema
    (including every minibatch block sampled from one parent graph) reuses one
    compilation.
    """
    digest = hashlib.sha256()
    digest.update(repr(tuple(sorted(graph.num_nodes_per_type))).encode())
    digest.update(repr(tuple(sorted(map(tuple, graph.canonical_etypes)))).encode())
    return digest.hexdigest()


def make_cache_key(
    program: InterOpProgram,
    options: "CompilerOptions",
    graph: Optional["HeteroGraph"] = None,
) -> CacheKey:
    """Build the full cache key for one compilation request."""
    schema = fingerprint_graph_schema(graph) if graph is not None else None
    return (fingerprint_program(program), options.cache_key(), schema)


def fingerprint_workload(workload) -> str:
    """Fingerprint of a workload's sizes (tuning without a concrete graph).

    Covers everything the cost model prices candidates against: node/edge
    counts, type vocabulary sizes, compaction opportunity, and the
    per-relation / per-node-type distributions.
    """
    digest = hashlib.sha256()
    digest.update(
        repr(
            (
                workload.num_nodes,
                workload.num_edges,
                workload.num_node_types,
                workload.num_edge_types,
                workload.num_unique_pairs,
            )
        ).encode()
    )
    digest.update(workload.relation_edge_counts.tobytes())
    digest.update(workload.node_type_counts.tobytes())
    return digest.hexdigest()


def make_tuning_key(
    program: InterOpProgram,
    graph: Optional["HeteroGraph"],
    in_dim: int,
    out_dim: int,
    device_name: str,
    mode: str,
    workload=None,
) -> str:
    """Key of one autotuning entry: program × schema × dims × device × mode.

    The tuning database is keyed the same way as the compilation cache —
    structural program fingerprint plus graph-*schema* fingerprint — so every
    graph sharing a schema reuses one tuned configuration, with the device
    and the tuning objective (``"inference"`` / ``"training"``) qualifying the
    entry.  A ``workload`` additionally scopes the entry by its size
    fingerprint: callers pass it when tuning against published dataset
    statistics, or when pricing a schema against an explicit workload (so
    different pricing workloads for one schema never collide on one record).
    Returned as a flat string so it can serve as a JSON object key in the
    on-disk database.
    """
    parts = []
    if graph is not None:
        parts.append(fingerprint_graph_schema(graph))
    if workload is not None:
        parts.append(fingerprint_workload(workload))
    scope = "+".join(parts) if parts else "any"
    return "|".join(
        [fingerprint_program(program), scope, f"{in_dim}x{out_dim}", device_name, mode]
    )


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`CompilationCache`."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class CompilationCache:
    """Thread-safe map from :data:`CacheKey` to compilation results."""

    _entries: Dict[CacheKey, "CompilationResult"] = field(default_factory=dict)
    stats: CacheStats = field(default_factory=CacheStats)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def lookup(self, key: CacheKey) -> Optional["CompilationResult"]:
        """Return the cached result for ``key``, recording a hit or miss."""
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
            return result

    def store(self, key: CacheKey, result: "CompilationResult") -> "CompilationResult":
        with self._lock:
            self._entries[key] = result
            return result

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)


#: The process-wide cache consulted when ``enable_compilation_cache`` is set.
_GLOBAL_CACHE = CompilationCache()


def global_compilation_cache() -> CompilationCache:
    """The default process-wide compilation cache."""
    return _GLOBAL_CACHE


def clear_compilation_cache() -> None:
    """Drop every entry of the global cache (tests, benchmarks)."""
    _GLOBAL_CACHE.clear()
