"""Compile entry points: program → passes → lowering → code generation.

``compile_program`` runs the optimization pipeline selected by
:class:`repro.frontend.config.CompilerOptions`, lowers the result to a kernel
plan, and generates both the executable Python kernels and the CUDA-like /
host source text.  ``compile_model`` additionally *binds* the result: it
builds a schema-specialised :class:`repro.runtime.module.CompiledRGNNModule`
and attaches the given graph as the module's default binding, so the module
is ready to run — and can be rebound to any other graph sharing the schema
(e.g. sampled minibatch blocks) via ``module.bind(graph)`` without
recompiling.  ``hector_compile`` is the decorator-style interface
corresponding to the paper's ``@hector.compile``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.frontend.cache import CompilationCache, global_compilation_cache, make_cache_key
from repro.frontend.config import CompilerOptions
from repro.graph.hetero_graph import HeteroGraph
from repro.ir.codegen.host import generate_host_source
from repro.ir.codegen.python_backend import GeneratedModule
from repro.ir.codegen.registry import BackendOptions, get_backend
from repro.ir.inter_op.lowering import LoweringOptions, lower_program
from repro.ir.inter_op.passes import pipeline_for_options
from repro.ir.inter_op.program import InterOpProgram
from repro.ir.intra_op.plan import KernelPlan
from repro.runtime.module import CompiledRGNNModule


@dataclass
class CompilationResult:
    """Everything the compiler produces for one program + option set."""

    program: InterOpProgram
    optimized_program: InterOpProgram
    plan: KernelPlan
    generated: GeneratedModule
    options: CompilerOptions

    def cuda_source(self) -> str:
        """CUDA-like kernel source text for the plan (the ``cuda-emit`` backend)."""
        return get_backend("cuda-emit").generate(self.plan).source

    def host_source(self) -> str:
        """C++-like host wrapper / registration source text for the plan."""
        return generate_host_source(self.plan)

    def generated_line_counts(self) -> Dict[str, int]:
        """Line counts of every generated artefact (programming-effort metric)."""
        return {
            "python_kernels": self.generated.line_count(),
            "cuda_kernels": len(self.cuda_source().splitlines()),
            "host_code": len(self.host_source().splitlines()),
            "input_program": self.program.source_line_count(),
        }


def compile_program(
    program: InterOpProgram,
    options: Optional[CompilerOptions] = None,
    cache: Optional[CompilationCache] = None,
    graph: Optional[HeteroGraph] = None,
) -> CompilationResult:
    """Optimize, lower, and generate code for an inter-op program.

    When ``options.enable_compilation_cache`` is set (the default) the global
    compilation cache — or the explicit ``cache`` argument — is consulted
    first: a structurally identical program compiled under identical options
    returns the already-built result without re-running passes, lowering, or
    code generation.  ``graph``, when given, adds the graph's schema
    fingerprint to the cache key (``compile_model`` passes it), so entries are
    qualified by the (program, options, schema) triple the runtime module is
    specialised for.

    The executing backend is selected by ``options.backend`` through the
    registry (:mod:`repro.ir.codegen.registry`); emit-only backends such as
    ``cuda-emit`` are rejected here.  The backend name is part of the options
    cache key, so interp and codegen artifacts of one program never collide,
    and the generated module — including the codegen backend's ``exec``-compiled
    ``main_forward``/``main_backward`` callables — is cached alongside the plan.
    """
    options = options or CompilerOptions()
    if options.is_auto:
        raise ValueError(
            "optimization_level='auto' must be resolved before compilation: use "
            "compile_model(..., tune=True) or repro.tuner.resolve_tuned_options"
        )
    backend = get_backend(options.backend)
    if not backend.executes:
        raise ValueError(
            f"backend {backend.name!r} only emits source and cannot execute plans; "
            f"pick an executing backend for CompilerOptions(backend=...) and read "
            f"emitted source through CompilationResult.cuda_source() or "
            f"get_backend({backend.name!r}).generate(plan).source"
        )
    if options.emit_backward and not backend.supports_training:
        raise ValueError(
            f"backend {backend.name!r} does not generate backward artifacts; "
            "compile with emit_backward=False or pick a training-capable backend"
        )
    if cache is None and options.enable_compilation_cache:
        cache = global_compilation_cache()
    # The key is computed even with caching disabled: it also derives the
    # persistent artifact-cache key for the generated-source backends.
    key = make_cache_key(program, options, graph)
    if cache is not None:
        cached = cache.lookup(key)
        if cached is not None:
            return cached
    optimized = pipeline_for_options(options).run(program)
    plan = lower_program(
        optimized,
        LoweringOptions(
            gemm_schedule=options.gemm_schedule(),
            traversal_schedule=options.traversal_schedule(),
            enable_fusion=options.enable_fusion,
            merge_adjacent_kernels=options.fuse_elementwise,
            emit_backward=options.emit_backward,
        ),
    )
    plan.name = f"{program.name}_{options.label()}"
    plan.metadata["memory_planning_enabled"] = options.enable_memory_planning
    plan.metadata["backend"] = backend.name
    workload = None
    if graph is not None and options.backend == "mixed" and options.mixed_assignment is None:
        # evaluation sits above frontend in the layering; import lazily.
        from repro.evaluation.workload import WorkloadSpec

        workload = WorkloadSpec.from_graph(graph, in_dim=program.in_dim, out_dim=program.out_dim)
    from repro.ir.codegen.artifact_cache import artifact_key_for

    generated = backend.generate(
        plan,
        BackendOptions(
            num_edge_types=graph.num_edge_types if graph is not None else None,
            num_node_types=graph.num_node_types if graph is not None else None,
            workload=workload,
            mixed_assignment=options.mixed_assignment,
            artifact_key=artifact_key_for(key),
        ),
    )
    result = CompilationResult(
        program=program,
        optimized_program=optimized,
        plan=plan,
        generated=generated,
        options=options,
    )
    if cache is not None:
        cache.store(key, result)
    return result


#: Memoised inter-op programs keyed by (model, in_dim, out_dim); building the
#: IR is cheap relative to codegen but still worth skipping on the hot path.
_PROGRAM_MEMO: Dict[tuple, InterOpProgram] = {}


def compile_model(
    model: str,
    graph: HeteroGraph,
    in_dim: int = 64,
    out_dim: int = 64,
    options: Optional[CompilerOptions] = None,
    seed: int = 0,
    tune: bool = False,
    tuning_db=None,
    tuning_space=None,
    measure_top_k: int = 0,
    backend: Optional[str] = None,
) -> CompiledRGNNModule:
    """Compile a named model (``"rgcn"``, ``"rgat"``, ``"hgt"``) for a graph.

    Compilation specialises per *schema* (type vocabulary + feature dims);
    binding to the concrete ``graph`` is a separate, cheap step this function
    performs last, so the returned module can serve any graph sharing the
    schema through ``module.bind(other_graph)`` — the rebind path the serving
    engine uses for sampled minibatch blocks.  With the compilation cache
    enabled (the default) repeated calls for the same (model, dimensions,
    options, graph schema) reuse the compiled plan and generated kernels;
    only the parameter initialisation and the binding run per call.

    Args:
        model: model name registered in :mod:`repro.models`.
        graph: the heterogeneous graph the module is specialised for.
        in_dim / out_dim: feature dimensions (the paper uses 64/64).
        options: compiler options; defaults to the unoptimised configuration.
            ``CompilerOptions(optimization_level="auto")`` implies ``tune=True``.
        seed: parameter-initialisation seed.
        tune: ask the :mod:`repro.tuner` autotuner to pick the configuration.
            The first call for a (program, schema, dims, device, mode) key
            searches the design space and persists the winner in the tuning
            database; subsequent calls replay the stored winner without
            re-searching.  Tuned plans flow through the compilation cache,
            memory planner, and executor exactly like hand-picked options.
        tuning_db: explicit :class:`repro.tuner.TuningDatabase` (defaults to
            the process-wide, disk-backed database).
        tuning_space: explicit :class:`repro.tuner.TuningSpace` to search.
        measure_top_k: when > 0, the search validates this many top-ranked
            candidates by measured wall-clock of the python backend on
            ``graph`` before declaring the winner.
        backend: convenience override for ``options.backend`` — the name of a
            registered executing backend (``"python-interp"``,
            ``"python-codegen"``, or a custom registrant).
    """
    from repro.models import build_program  # local import to avoid a cycle

    options = options or CompilerOptions()
    if backend is not None:
        options = options.with_(backend=backend)
    tuning = tune or options.is_auto
    if not tuning and (tuning_db is not None or tuning_space is not None or measure_top_k):
        raise ValueError(
            "tuning_db / tuning_space / measure_top_k only take effect with tune=True "
            "or CompilerOptions(optimization_level='auto')"
        )
    if options.enable_compilation_cache:
        memo_key = (model, in_dim, out_dim)
        program = _PROGRAM_MEMO.get(memo_key)
        if program is None:
            program = _PROGRAM_MEMO.setdefault(memo_key, build_program(model, in_dim=in_dim, out_dim=out_dim))
    else:
        program = build_program(model, in_dim=in_dim, out_dim=out_dim)
    if tuning:
        from repro.tuner import resolve_tuned_options  # local import to avoid a cycle

        options = resolve_tuned_options(
            program,
            graph=graph,
            base_options=options,
            mode="training" if options.emit_backward else "inference",
            db=tuning_db,
            space=tuning_space,
            measure_top_k=measure_top_k,
        )
    result = compile_program(program, options, graph=graph)
    return CompiledRGNNModule(result.plan, result.generated, graph, seed=seed)


def hector_compile(
    in_dim: int = 64,
    out_dim: int = 64,
    options: Optional[CompilerOptions] = None,
) -> Callable:
    """Decorator-style interface mirroring the paper's ``@hector.compile``.

    The decorated function receives a
    :class:`repro.ir.inter_op.builder.ProgramBuilder` and expresses the model
    with it (the transpiled form of the DGL/PyG forward function).  The
    decorator returns a factory: calling it with a graph yields a compiled
    module.

    Example::

        @hector_compile(in_dim=64, out_dim=64)
        def my_layer(g):
            h = g.input_node_feature("h")
            W = g.weight("W", (64, 64))
            msg = g.typed_linear(h, W, "msg")
            g.mark_output(g.aggregate(msg, "out"))

        module = my_layer(graph)
    """

    def decorator(model_fn: Callable) -> Callable:
        def factory(graph: HeteroGraph, seed: int = 0) -> CompiledRGNNModule:
            from repro.ir.inter_op.builder import ProgramBuilder

            builder = ProgramBuilder(model_fn.__name__, in_dim=in_dim, out_dim=out_dim)
            model_fn(builder)
            program = builder.finish()
            result = compile_program(program, options)
            return CompiledRGNNModule(result.plan, result.generated, graph, seed=seed)

        factory.__name__ = f"compiled_{model_fn.__name__}"
        factory.__doc__ = model_fn.__doc__
        return factory

    return decorator
