"""Shared machinery of the baseline system models.

A baseline's execution of one RGNN layer is assembled from building blocks
(typed linear layers, gather/copy kernels, SDDMM-style dot products, edge
softmax, SpMM aggregation) according to its :class:`BaselineConfig`.  The
blocks produce :class:`repro.gpu.costmodel.KernelWork` records priced by the
shared GPU cost model, and buffer footprints summed by the shared memory
model, so all systems are compared on identical terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.gpu.costmodel import ExecutionEstimate, KernelWork, estimate_execution
from repro.gpu.device import DeviceSpec, RTX_3090
from repro.runtime.memory import OutOfMemoryError, check_footprint

if TYPE_CHECKING:  # pragma: no cover - type hints only, avoids an import cycle
    from repro.evaluation.workload import WorkloadSpec

FLOAT_BYTES = 4
INDEX_BYTES = 8


class UnsupportedModelError(RuntimeError):
    """Raised when a system has no implementation for a model/mode combination."""


@dataclass
class SystemEstimate:
    """Result of evaluating one system on one workload."""

    system: str
    model: str
    workload: str
    mode: str
    estimate: Optional[ExecutionEstimate]
    memory_bytes: float
    oom: bool = False
    unsupported: bool = False

    @property
    def time_ms(self) -> Optional[float]:
        if self.oom or self.unsupported or self.estimate is None:
            return None
        return self.estimate.total_time_ms

    def status(self) -> str:
        if self.unsupported:
            return "n/a"
        if self.oom:
            return "OOM"
        return f"{self.time_ms:.2f} ms"


@dataclass
class BaselineConfig:
    """Execution-strategy description of a baseline system.

    Attributes:
        name: system name as used in the paper's figures.
        typed_linear_strategy: per model, one of ``"segment"`` (one segmented
            GEMM kernel), ``"per_relation"`` (one GEMM launch per relation),
            ``"replicate_bmm"`` (materialise a per-row weight tensor, then a
            batched matmul).
        separate_gather_kernels: materialise gathered operands with dedicated
            indexing/copy kernels before compute kernels (the "Indexing /
            Copying" share of Figure 3).
        fused_message_passing: elementwise/softmax/aggregation stages are
            fused into few kernels (compiled systems) rather than one kernel
            per framework operator.
        replicates_weights: keeps a per-edge (or per-node) copy of the typed
            weights in device memory (memory-footprint penalty and extra
            gradient buffers in training).
        host_overhead_us: host framework overhead per operator call.
        supports_training / supports_inference: evaluation modes available.
        supported_models: models the system implements.
        rgat_unfused_penalty: extra unfused elementwise kernels RGAT needs
            when the system's pre-programmed fused kernels do not cover it
            (Graphiler's degradation in Section 4.2).
    """

    name: str
    typed_linear_strategy: Dict[str, str]
    separate_gather_kernels: bool = True
    fused_message_passing: bool = False
    replicates_weights: bool = False
    host_overhead_us: float = 30.0
    supports_training: bool = True
    supports_inference: bool = True
    supported_models: Sequence[str] = ("rgcn", "rgat", "hgt")
    rgat_unfused_penalty: int = 0


# ----------------------------------------------------------------------
# kernel-work building blocks
# ----------------------------------------------------------------------
def gemm_work(name: str, rows: int, k_dim: int, n_dim: int, num_weight_slices: int = 1,
              gathered: bool = False, category: str = "gemm") -> KernelWork:
    """A single (possibly segmented) GEMM over ``rows`` rows."""
    bytes_read = rows * k_dim * FLOAT_BYTES + num_weight_slices * k_dim * n_dim * FLOAT_BYTES
    if gathered:
        bytes_read += rows * INDEX_BYTES
    return KernelWork(
        name=name,
        category=category,
        flops=2.0 * rows * k_dim * n_dim,
        bytes_read=bytes_read,
        bytes_written=rows * n_dim * FLOAT_BYTES,
        launches=1,
        host_ops=1,
        rows=rows,
        cols=n_dim,
    )


def per_relation_gemm_works(name: str, relation_counts: np.ndarray, k_dim: int, n_dim: int) -> List[KernelWork]:
    """One GEMM launch per relation (DGL HeteroConv / PyG RGCNConv behaviour)."""
    works: List[KernelWork] = []
    for index, count in enumerate(relation_counts):
        rows = int(count)
        if rows <= 0:
            continue
        works.append(gemm_work(f"{name}_rel{index}", rows, k_dim, n_dim, num_weight_slices=1))
    return works


def weight_replication_work(name: str, rows: int, k_dim: int, n_dim: int, num_types: int) -> KernelWork:
    """Materialise ``W'[i] = W[T[i]]`` — the redundant copy of Section 2.3."""
    return KernelWork(
        name=name,
        category="index_copy",
        flops=0.0,
        bytes_read=num_types * k_dim * n_dim * FLOAT_BYTES + rows * INDEX_BYTES,
        bytes_written=rows * k_dim * n_dim * FLOAT_BYTES,
        launches=1,
        host_ops=1,
        rows=rows,
        cols=k_dim * n_dim,
    )


def bmm_with_replicated_weights_work(name: str, rows: int, k_dim: int, n_dim: int) -> KernelWork:
    """Batched matmul whose weight operand is the materialised per-row tensor."""
    return KernelWork(
        name=name,
        category="gemm",
        flops=2.0 * rows * k_dim * n_dim,
        bytes_read=rows * k_dim * FLOAT_BYTES + rows * k_dim * n_dim * FLOAT_BYTES,
        bytes_written=rows * n_dim * FLOAT_BYTES,
        launches=1,
        host_ops=1,
        rows=rows,
        cols=n_dim,
    )


def gather_copy_work(name: str, rows: int, dim: int) -> KernelWork:
    """Dedicated indexing/copy kernel materialising gathered rows."""
    return KernelWork(
        name=name,
        category="index_copy",
        flops=0.0,
        bytes_read=rows * dim * FLOAT_BYTES + rows * INDEX_BYTES,
        bytes_written=rows * dim * FLOAT_BYTES,
        launches=1,
        host_ops=1,
        rows=rows,
        cols=dim,
    )


def elementwise_work(name: str, rows: int, dim: int, launches: int = 1) -> KernelWork:
    """Per-row elementwise kernel (scale, add, activation)."""
    return KernelWork(
        name=name,
        category="traversal",
        flops=float(rows * dim),
        bytes_read=2.0 * rows * dim * FLOAT_BYTES,
        bytes_written=rows * dim * FLOAT_BYTES,
        launches=launches,
        host_ops=launches,
        rows=rows,
        cols=dim,
    )


def sddmm_work(name: str, edges: int, dim: int) -> KernelWork:
    """Per-edge dot products of gathered endpoint features."""
    return KernelWork(
        name=name,
        category="traversal",
        flops=2.0 * edges * dim,
        bytes_read=2.0 * edges * dim * FLOAT_BYTES + 2.0 * edges * INDEX_BYTES,
        bytes_written=edges * FLOAT_BYTES,
        launches=1,
        host_ops=1,
        rows=edges,
        cols=dim,
    )


def spmm_work(name: str, edges: int, nodes: int, dim: int, weighted: bool = True) -> KernelWork:
    """Aggregation of edge rows into destination nodes (atomic scatter-add)."""
    bytes_read = edges * dim * FLOAT_BYTES + edges * INDEX_BYTES
    if weighted:
        bytes_read += edges * FLOAT_BYTES
    return KernelWork(
        name=name,
        category="traversal",
        flops=float(edges * dim) * (2.0 if weighted else 1.0),
        bytes_read=bytes_read,
        bytes_written=nodes * dim * FLOAT_BYTES,
        launches=1,
        host_ops=1,
        rows=edges,
        cols=dim,
        uses_atomics=True,
    )


def edge_softmax_works(name: str, edges: int, nodes: int, fused: bool) -> List[KernelWork]:
    """Edge softmax: exp, per-destination sum, broadcast-divide."""
    if fused:
        return [
            KernelWork(
                name=f"{name}_fused",
                category="traversal",
                flops=6.0 * edges,
                bytes_read=2.0 * edges * FLOAT_BYTES + edges * INDEX_BYTES,
                bytes_written=edges * FLOAT_BYTES + nodes * FLOAT_BYTES,
                launches=2,
                host_ops=1,
                rows=edges,
                cols=1,
                uses_atomics=True,
            )
        ]
    return [
        elementwise_work(f"{name}_exp", edges, 1),
        spmm_work(f"{name}_sum", edges, nodes, 1, weighted=False),
        elementwise_work(f"{name}_div", edges, 1),
    ]


def backward_works(forward: Sequence[KernelWork]) -> List[KernelWork]:
    """Derive backward-pass work from a forward kernel sequence.

    GEMM-like kernels produce an input-gradient GEMM and a weight-gradient
    GEMM (outer products, atomic accumulation); traversal kernels produce one
    adjoint kernel with atomics and roughly doubled traffic; pure copy kernels
    produce a scatter-style adjoint.
    """
    backward: List[KernelWork] = []
    for work in reversed(forward):
        if work.category == "gemm":
            backward.append(
                KernelWork(
                    name=f"{work.name}_dgrad",
                    category="gemm",
                    flops=work.flops,
                    bytes_read=work.bytes_read,
                    bytes_written=work.bytes_written,
                    launches=work.launches,
                    host_ops=work.host_ops,
                    rows=work.rows,
                    cols=work.cols,
                    uses_atomics=True,
                    direction="backward",
                )
            )
            backward.append(
                KernelWork(
                    name=f"{work.name}_wgrad",
                    category="gemm",
                    flops=work.flops,
                    bytes_read=work.bytes_read,
                    bytes_written=work.bytes_written * 0.5,
                    launches=work.launches,
                    host_ops=work.host_ops,
                    rows=work.rows,
                    cols=work.cols,
                    uses_atomics=True,
                    has_outer_product=True,
                    direction="backward",
                )
            )
        else:
            backward.append(
                KernelWork(
                    name=f"{work.name}_bwd",
                    category=work.category,
                    flops=2.0 * work.flops,
                    bytes_read=2.0 * work.bytes_read,
                    bytes_written=2.0 * work.bytes_written,
                    launches=work.launches,
                    host_ops=work.host_ops,
                    rows=work.rows,
                    cols=work.cols,
                    uses_atomics=True,
                    direction="backward",
                )
            )
    return backward


# ----------------------------------------------------------------------
# the baseline system driver
# ----------------------------------------------------------------------
class BaselineSystem:
    """A baseline system evaluated through the shared cost and memory models."""

    def __init__(self, config: BaselineConfig):
        self.config = config

    @property
    def name(self) -> str:
        return self.config.name

    # -- support matrix ---------------------------------------------------
    def supports(self, model: str, training: bool) -> bool:
        if model not in self.config.supported_models:
            return False
        return self.config.supports_training if training else self.config.supports_inference

    # -- kernel plans -------------------------------------------------------
    def forward_works(self, model: str, workload: WorkloadSpec) -> List[KernelWork]:
        """Kernel work of one forward pass of ``model`` under ``workload``."""
        builder = {
            "rgcn": self._rgcn_forward,
            "rgat": self._rgat_forward,
            "hgt": self._hgt_forward,
        }.get(model)
        if builder is None:
            raise UnsupportedModelError(f"{self.name} has no {model} implementation")
        return builder(workload)

    def works(self, model: str, workload: WorkloadSpec, training: bool) -> List[KernelWork]:
        forward = self.forward_works(model, workload)
        if not training:
            return forward
        return forward + backward_works(forward)

    # -- typed linear layers ------------------------------------------------
    def _typed_linear(self, name: str, model: str, workload: WorkloadSpec, rows: int,
                      k_dim: int, n_dim: int, num_types: int,
                      relation_counts: Optional[np.ndarray] = None,
                      gather_rows_dim: Optional[int] = None) -> List[KernelWork]:
        """Typed linear layer according to the system's strategy for ``model``."""
        strategy = self.config.typed_linear_strategy.get(model, "per_relation")
        works: List[KernelWork] = []
        if self.config.separate_gather_kernels and gather_rows_dim is not None:
            works.append(gather_copy_work(f"{name}_gather", rows, gather_rows_dim))
        if strategy == "segment":
            works.append(gemm_work(name, rows, k_dim, n_dim, num_weight_slices=num_types, gathered=True))
        elif strategy == "replicate_bmm":
            works.append(weight_replication_work(f"{name}_replicate_w", rows, k_dim, n_dim, num_types))
            works.append(bmm_with_replicated_weights_work(name, rows, k_dim, n_dim))
        else:  # per_relation
            counts = relation_counts if relation_counts is not None else workload.relation_edge_counts
            works.extend(per_relation_gemm_works(name, counts, k_dim, n_dim))
        return works

    # -- per-model forward plans ---------------------------------------------
    def _rgcn_forward(self, workload: WorkloadSpec) -> List[KernelWork]:
        E, N = workload.num_edges, workload.num_nodes
        d_in, d_out = workload.in_dim, workload.out_dim
        works: List[KernelWork] = []
        works += self._typed_linear("rgcn_msg", "rgcn", workload, E, d_in, d_out,
                                    workload.num_edge_types, gather_rows_dim=d_in)
        works.append(elementwise_work("rgcn_norm_scale", E, d_out))
        works.append(spmm_work("rgcn_aggregate", E, N, d_out, weighted=False))
        works.append(gemm_work("rgcn_self_loop", N, d_in, d_out))
        works.append(elementwise_work("rgcn_add_relu", N, d_out))
        return works

    def _rgat_forward(self, workload: WorkloadSpec) -> List[KernelWork]:
        E, N = workload.num_edges, workload.num_nodes
        d_in, d_out = workload.in_dim, workload.out_dim
        works: List[KernelWork] = []
        works += self._typed_linear("rgat_hs", "rgat", workload, E, d_in, d_out,
                                    workload.num_edge_types, gather_rows_dim=d_in)
        works += self._typed_linear("rgat_ht", "rgat", workload, E, d_in, d_out,
                                    workload.num_edge_types, gather_rows_dim=d_in)
        works.append(sddmm_work("rgat_atts", E, d_out))
        works.append(sddmm_work("rgat_attt", E, d_out))
        works.append(elementwise_work("rgat_add_leaky", E, 1, launches=1 if self.config.fused_message_passing else 2))
        works += edge_softmax_works("rgat_softmax", E, N, fused=self.config.fused_message_passing)
        works.append(spmm_work("rgat_aggregate", E, N, d_out, weighted=True))
        for index in range(self.config.rgat_unfused_penalty):
            works.append(elementwise_work(f"rgat_unfused_extra_{index}", E, d_out))
        return works

    def _hgt_forward(self, workload: WorkloadSpec) -> List[KernelWork]:
        E, N = workload.num_edges, workload.num_nodes
        d_in, d_out = workload.in_dim, workload.out_dim
        node_counts = workload.node_type_counts
        works: List[KernelWork] = []
        for projection in ("k", "q", "v"):
            works += self._typed_linear(f"hgt_{projection}_proj", "hgt", workload, N, d_in, d_out,
                                        workload.num_node_types, relation_counts=node_counts)
        works += self._typed_linear("hgt_k_att", "hgt", workload, E, d_out, d_out,
                                    workload.num_edge_types, gather_rows_dim=d_out)
        works.append(sddmm_work("hgt_att_dot", E, d_out))
        works += edge_softmax_works("hgt_softmax", E, N, fused=self.config.fused_message_passing)
        works += self._typed_linear("hgt_msg", "hgt", workload, E, d_out, d_out,
                                    workload.num_edge_types, gather_rows_dim=d_out)
        works.append(spmm_work("hgt_aggregate", E, N, d_out, weighted=True))
        works += self._typed_linear("hgt_out_proj", "hgt", workload, N, d_out, d_out,
                                    workload.num_node_types, relation_counts=node_counts)
        works.append(elementwise_work("hgt_residual", N, d_out))
        return works

    # -- memory model ---------------------------------------------------------
    def memory_bytes(self, model: str, workload: WorkloadSpec, training: bool) -> float:
        """Device footprint of one pass (weights, features, intermediates, grads)."""
        E, N = workload.num_edges, workload.num_nodes
        d_in, d_out = workload.in_dim, workload.out_dim
        T_e, T_n = workload.num_edge_types, workload.num_node_types
        weights = {
            "rgcn": T_e * d_in * d_out + d_in * d_out,
            "rgat": T_e * d_in * d_out + 2 * T_e * d_out,
            "hgt": 3 * T_n * d_in * d_out + 2 * T_e * d_out * d_out + T_n * d_out * d_out,
        }[model] * FLOAT_BYTES
        features = N * (d_in + d_out) * FLOAT_BYTES
        edge_intermediates = {
            "rgcn": E * d_out,
            "rgat": 2 * E * d_out + 5 * E,
            "hgt": 2 * E * d_out + 3 * E + 3 * N * d_out,
        }[model] * FLOAT_BYTES
        if self.config.separate_gather_kernels:
            edge_intermediates += E * d_in * FLOAT_BYTES
        total = weights + features + edge_intermediates
        if self.config.replicates_weights:
            total += E * d_in * d_out * FLOAT_BYTES
        total += 3 * E * INDEX_BYTES  # COO structure
        if training:
            total *= 2.0  # gradient buffers for every materialised tensor
        return total

    # -- end-to-end estimate ---------------------------------------------------
    def estimate(self, model: str, workload: WorkloadSpec, training: bool,
                 device: DeviceSpec = RTX_3090) -> SystemEstimate:
        """Evaluate the system on one workload; reports OOM / unsupported cases."""
        mode = "training" if training else "inference"
        if not self.supports(model, training):
            return SystemEstimate(self.name, model, workload.name, mode, None, 0.0, unsupported=True)
        memory = self.memory_bytes(model, workload, training)
        try:
            check_footprint(memory, device.memory_bytes, label=f"{self.name}/{model}/{workload.name}")
        except OutOfMemoryError:
            return SystemEstimate(self.name, model, workload.name, mode, None, memory, oom=True)
        works = self.works(model, workload, training)
        estimate = estimate_execution(works, device, self.config.host_overhead_us)
        return SystemEstimate(self.name, model, workload.name, mode, estimate, memory)
