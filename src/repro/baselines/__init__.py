"""Baseline RGNN system models.

Each baseline is described by the execution strategy the paper attributes to
it (Sections 2.3, 4.2, 5): how it implements typed linear layers (segment MM,
per-relation kernel loops, or weight replication plus batched matmul), whether
it materialises gathered operands with separate indexing/copy kernels, whether
its message-passing kernels are fused, whether it replicates per-type weights,
and how much host-side framework overhead each operator call costs.  The
strategies are executed against the shared GPU cost and memory models, which
is what produces the comparative figures.
"""

from repro.baselines.base import (
    BaselineConfig,
    BaselineSystem,
    SystemEstimate,
    UnsupportedModelError,
)
from repro.baselines.systems import (
    ALL_BASELINES,
    DGLSystem,
    GraphilerSystem,
    HGLSystem,
    PyGSystem,
    SeastarSystem,
    get_baseline,
)
from repro.baselines.hector_system import HectorSystem
from repro.baselines.capabilities import TABLE1_FEATURES, feature_table_rows

__all__ = [
    "BaselineConfig",
    "BaselineSystem",
    "SystemEstimate",
    "UnsupportedModelError",
    "DGLSystem",
    "PyGSystem",
    "SeastarSystem",
    "GraphilerSystem",
    "HGLSystem",
    "HectorSystem",
    "ALL_BASELINES",
    "get_baseline",
    "TABLE1_FEATURES",
    "feature_table_rows",
]
