"""The five baseline systems evaluated in the paper.

The configurations encode the behaviours the paper describes:

* **DGL** — segment-MM based built-in layers for RGCN and HGT (the fastest
  DGL variants per Section 4.2); RGAT runs through HeteroConv-style
  per-relation kernel loops; eager PyTorch dispatch overhead; separate
  indexing/copy kernels for gathers.
* **PyG** — ``FastRGCNConv``-style execution: the per-row weight tensor is
  materialised and batched matmul is used (weight replication), which is fast
  for small graphs but out-of-memory for large ones; the attention models use
  per-relation loops for their typed projections.
* **Seastar** — a vertex-centric compiler: everything is lowered to fused
  sparse/traversal kernels (no GEMM lowering), with small host overhead but
  low arithmetic throughput for the dense projections.
* **Graphiler** — inference only; compiled TorchScript with fused
  message-passing kernels (close to Hector on RGCN/HGT), but its
  pre-programmed fused kernels do not cover RGAT, which falls back to many
  unfused operators; replicates weights (memory-hungry on large graphs).
* **HGL** — training only, RGCN and RGAT (no HGT support); compiler-generated
  kernels with per-relation typed linear layers and weight replication.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.base import BaselineConfig, BaselineSystem


class DGLSystem(BaselineSystem):
    """Deep Graph Library with its best-performing built-in layers."""

    def __init__(self):
        super().__init__(
            BaselineConfig(
                name="DGL",
                typed_linear_strategy={"rgcn": "segment", "rgat": "per_relation", "hgt": "segment"},
                separate_gather_kernels=True,
                fused_message_passing=False,
                replicates_weights=False,
                host_overhead_us=35.0,
                supports_training=True,
                supports_inference=True,
            )
        )


class PyGSystem(BaselineSystem):
    """PyTorch Geometric (``FastRGCNConv`` weight replication strategy)."""

    def __init__(self):
        super().__init__(
            BaselineConfig(
                name="PyG",
                typed_linear_strategy={"rgcn": "replicate_bmm", "rgat": "per_relation", "hgt": "per_relation"},
                separate_gather_kernels=True,
                fused_message_passing=False,
                replicates_weights=True,
                host_overhead_us=35.0,
                supports_training=True,
                supports_inference=True,
            )
        )


class SeastarSystem(BaselineSystem):
    """Seastar: vertex-centric code generation, everything lowered to sparse kernels."""

    def __init__(self):
        super().__init__(
            BaselineConfig(
                name="Seastar",
                typed_linear_strategy={"rgcn": "per_relation", "rgat": "per_relation", "hgt": "per_relation"},
                separate_gather_kernels=False,
                fused_message_passing=True,
                replicates_weights=True,
                host_overhead_us=12.0,
                supports_training=True,
                supports_inference=True,
            )
        )

    def forward_works(self, model, workload):
        """Seastar lowers dense projections to traversal-style kernels too.

        This reflects the paper's observation that "sparse kernel code
        generation alone is not efficient in RGNNs: it is better to lower to
        GEMM kernels as much as possible" — re-labelling the GEMM work as
        traversal work drops its achievable throughput in the cost model.
        """
        works = super().forward_works(model, workload)
        for work in works:
            if work.category == "gemm":
                work.category = "traversal"
        return works


class GraphilerSystem(BaselineSystem):
    """Graphiler: TorchScript message-passing data-flow-graph compiler (inference only)."""

    def __init__(self):
        super().__init__(
            BaselineConfig(
                name="Graphiler",
                typed_linear_strategy={"rgcn": "segment", "rgat": "per_relation", "hgt": "segment"},
                separate_gather_kernels=True,
                fused_message_passing=True,
                replicates_weights=True,
                host_overhead_us=6.0,
                supports_training=False,
                supports_inference=True,
                rgat_unfused_penalty=4,
            )
        )


class HGLSystem(BaselineSystem):
    """HGL: heterogeneous-GNN training compiler (no HGT support, training only)."""

    def __init__(self):
        super().__init__(
            BaselineConfig(
                name="HGL",
                typed_linear_strategy={"rgcn": "per_relation", "rgat": "per_relation", "hgt": "per_relation"},
                separate_gather_kernels=True,
                fused_message_passing=True,
                replicates_weights=True,
                host_overhead_us=15.0,
                supports_training=True,
                supports_inference=False,
                supported_models=("rgcn", "rgat"),
            )
        )


def all_baselines() -> List[BaselineSystem]:
    """Fresh instances of the five baseline systems."""
    return [DGLSystem(), PyGSystem(), SeastarSystem(), GraphilerSystem(), HGLSystem()]


#: Singleton-style instances, keyed by name, used by the evaluation harness.
ALL_BASELINES: Dict[str, BaselineSystem] = {system.name: system for system in all_baselines()}


def get_baseline(name: str) -> BaselineSystem:
    """Look up a baseline system by its figure name."""
    try:
        return ALL_BASELINES[name]
    except KeyError:
        raise KeyError(f"unknown baseline {name!r}; known: {sorted(ALL_BASELINES)}") from None
