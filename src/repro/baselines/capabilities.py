"""Feature comparison of Hector and prior GNN compilers (Table 1)."""

from __future__ import annotations

from typing import Dict, List

#: Table 1 of the paper: which capabilities each system covers.
TABLE1_FEATURES: Dict[str, Dict[str, object]] = {
    "Graphiler": {
        "target_inference": True,
        "target_training": False,
        "memory_efficiency": True,
        "design_space_data_layout": False,
        "design_space_intra_operator_schedule": False,
        "design_space_inter_operator_optimization": True,
    },
    "Seastar": {
        "target_inference": True,
        "target_training": True,
        "memory_efficiency": False,
        "design_space_data_layout": False,
        "design_space_intra_operator_schedule": False,
        "design_space_inter_operator_optimization": True,
    },
    "HGL": {
        "target_inference": False,
        "target_training": True,
        "memory_efficiency": False,
        "design_space_data_layout": False,
        "design_space_intra_operator_schedule": False,
        "design_space_inter_operator_optimization": True,
    },
    "Hector": {
        "target_inference": True,
        "target_training": True,
        "memory_efficiency": "better",
        "design_space_data_layout": True,
        "design_space_intra_operator_schedule": True,
        "design_space_inter_operator_optimization": True,
    },
}

#: Row order / labels used when printing the table.
FEATURE_LABELS = [
    ("target_inference", "Target: inference"),
    ("target_training", "Target: training"),
    ("memory_efficiency", "Memory efficiency"),
    ("design_space_data_layout", "Design space: data layout"),
    ("design_space_intra_operator_schedule", "Design space: intra-operator schedule"),
    ("design_space_inter_operator_optimization", "Design space: inter-operator optimization"),
]


def feature_table_rows() -> List[Dict[str, object]]:
    """Rows of Table 1: one per feature, with a column per system."""
    rows: List[Dict[str, object]] = []
    for key, label in FEATURE_LABELS:
        row: Dict[str, object] = {"feature": label}
        for system, features in TABLE1_FEATURES.items():
            row[system] = features[key]
        rows.append(row)
    return rows


def hector_claimed_features() -> Dict[str, object]:
    """Hector's column of Table 1 (used by capability tests)."""
    return dict(TABLE1_FEATURES["Hector"])
