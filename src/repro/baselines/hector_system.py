"""Hector presented through the same evaluation interface as the baselines.

The difference from the baseline models is fundamental: Hector's kernel work
is not hand-described — it is derived from the kernel plan the actual compiler
produced for the requested optimization configuration, so every effect the
passes have (fewer GEMM rows under compact materialization, eliminated
projections under reordering, fused traversal kernels, single segmented GEMM
launches) shows up in the cost and memory models automatically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.baselines.base import SystemEstimate
from repro.frontend.compiler import CompilationResult, compile_program
from repro.frontend.config import CompilerOptions
from repro.gpu.costmodel import KernelWork, estimate_execution, kernel_work_from_instance
from repro.gpu.device import DeviceSpec, RTX_3090
from repro.models import build_program
from repro.runtime.memory import OutOfMemoryError, check_footprint

if TYPE_CHECKING:  # pragma: no cover - type hints only, avoids an import cycle
    from repro.evaluation.workload import WorkloadSpec

#: Host overhead per generated-kernel invocation: Hector launches precompiled
#: kernels from generated host functions, avoiding per-operator framework
#: dispatch.
HECTOR_HOST_OVERHEAD_US = 4.0


class HectorSystem:
    """Hector under one optimization configuration (U, C, R, or C+R)."""

    def __init__(self, options: Optional[CompilerOptions] = None, name: Optional[str] = None):
        self.options = options or CompilerOptions()
        self.name = name or f"Hector ({self.options.label()})"
        self._compiled: Dict[Tuple[str, int, int], CompilationResult] = {}

    # ------------------------------------------------------------------
    def compiled(self, model: str, in_dim: int, out_dim: int) -> CompilationResult:
        """Compile (and cache) the model for the given feature dimensions."""
        key = (model, in_dim, out_dim)
        if key not in self._compiled:
            program = build_program(model, in_dim=in_dim, out_dim=out_dim)
            self._compiled[key] = compile_program(program, self.options)
        return self._compiled[key]

    def supports(self, model: str, training: bool) -> bool:
        return model in ("rgcn", "rgat", "hgt")

    # ------------------------------------------------------------------
    def works(
        self, model: str, workload: WorkloadSpec, training: bool,
        device: DeviceSpec = RTX_3090,
    ) -> List[KernelWork]:
        """Kernel work derived from the compiled plan under a workload."""
        plan = self.compiled(model, workload.in_dim, workload.out_dim).plan
        kernels = plan.kernels("all" if training else "forward")
        return [kernel_work_from_instance(kernel, workload, device) for kernel in kernels]

    def memory_bytes(self, model: str, workload: WorkloadSpec, training: bool) -> float:
        plan = self.compiled(model, workload.in_dim, workload.out_dim).plan
        return plan.memory_bytes(workload, training=training)

    def estimate(self, model: str, workload: WorkloadSpec, training: bool,
                 device: DeviceSpec = RTX_3090) -> SystemEstimate:
        """Evaluate Hector on one workload through the shared cost/memory models."""
        mode = "training" if training else "inference"
        memory = self.memory_bytes(model, workload, training)
        try:
            check_footprint(memory, device.memory_bytes, label=f"{self.name}/{model}/{workload.name}")
        except OutOfMemoryError:
            return SystemEstimate(self.name, model, workload.name, mode, None, memory, oom=True)
        works = self.works(model, workload, training, device)
        estimate = estimate_execution(works, device, HECTOR_HOST_OVERHEAD_US)
        return SystemEstimate(self.name, model, workload.name, mode, estimate, memory)
