"""Sampled-block minibatch training, single-worker and data-parallel.

The training counterpart of the serving layer: a
:class:`~repro.train.trainer.MinibatchTrainer` iterates deterministic
shuffled seed minibatches per epoch, samples each minibatch's k-hop block
(merged, or per-hop for multi-layer stacks), binds the schema-compiled
module to the block, accumulates gradients across bindings, and steps a
:mod:`repro.tensor.optim` optimizer — locked down by equivalence tests
(``tests/test_minibatch_training.py``) that pin minibatch epochs against
full-graph training.

:class:`~repro.train.distributed.ShardedTrainer` scales the same loop
data-parallel: each epoch's minibatches are partitioned round-robin over N
workers whose window gradients are combined through a pluggable
:class:`~repro.train.collective.Collective` — bit-identical to the 1-worker
trainer (``tests/test_sharded_training.py``).
"""

from repro.train.collective import (
    COLLECTIVES,
    Collective,
    CollectiveStats,
    LocalCollective,
    SharedMemoryCollective,
    make_collective,
    register_collective,
    tree_reduce,
)
from repro.train.distributed import ShardedTrainer, shard_minibatches
from repro.train.objectives import (
    OBJECTIVES,
    Objective,
    mean_squared_error,
    resolve_objective,
    softmax_cross_entropy,
)
from repro.train.stats import DistributedTrainStats, EpochStats, ShardEpochStats, TrainStats
from repro.train.trainer import OPTIMIZERS, MinibatchTrainer

__all__ = [
    "MinibatchTrainer",
    "ShardedTrainer",
    "shard_minibatches",
    "OPTIMIZERS",
    "EpochStats",
    "TrainStats",
    "ShardEpochStats",
    "DistributedTrainStats",
    "Collective",
    "CollectiveStats",
    "LocalCollective",
    "SharedMemoryCollective",
    "COLLECTIVES",
    "make_collective",
    "register_collective",
    "tree_reduce",
    "OBJECTIVES",
    "Objective",
    "softmax_cross_entropy",
    "mean_squared_error",
    "resolve_objective",
]
