"""Sampled-block minibatch training.

The training counterpart of the serving layer: a
:class:`~repro.train.trainer.MinibatchTrainer` iterates deterministic
shuffled seed minibatches per epoch, samples each minibatch's k-hop block
(merged, or per-hop for multi-layer stacks), binds the schema-compiled
module to the block, accumulates gradients across bindings, and steps a
:mod:`repro.tensor.optim` optimizer — locked down by equivalence tests
(``tests/test_minibatch_training.py``) that pin minibatch epochs against
full-graph training.
"""

from repro.train.objectives import (
    OBJECTIVES,
    Objective,
    mean_squared_error,
    resolve_objective,
    softmax_cross_entropy,
)
from repro.train.stats import EpochStats, TrainStats
from repro.train.trainer import OPTIMIZERS, MinibatchTrainer

__all__ = [
    "MinibatchTrainer",
    "OPTIMIZERS",
    "EpochStats",
    "TrainStats",
    "OBJECTIVES",
    "Objective",
    "softmax_cross_entropy",
    "mean_squared_error",
    "resolve_objective",
]
