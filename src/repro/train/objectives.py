"""Training objectives over seed-row outputs.

Objectives are *sum-reduced*: given the model rows of one minibatch's seeds
and the matching targets, they return ``(loss_sum, grad)`` where ``grad`` is
the gradient of the summed loss w.r.t. the rows.  The trainer divides by the
seed count of the accumulation window, which makes every optimizer step a
*mean* over its window — and makes full-window accumulation produce exactly
the per-row gradient values full-graph mean-loss training computes (the
division happens per row, with the same divisor, in both regimes; that is
what the bit-identity equivalence tests rely on).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

#: ``objective(rows, targets) -> (loss_sum, grad_rows)``
Objective = Callable[[np.ndarray, np.ndarray], Tuple[float, np.ndarray]]


def softmax_cross_entropy(rows: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
    """Summed softmax cross-entropy of logit rows against integer labels."""
    rows = np.asarray(rows, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    if rows.ndim != 2:
        raise ValueError(f"logit rows must be 2-D (rows, classes), got shape {rows.shape}")
    if labels.shape[0] != rows.shape[0]:
        raise ValueError(f"expected {rows.shape[0]} labels, got {labels.shape[0]}")
    if labels.min(initial=0) < 0 or labels.max(initial=0) >= rows.shape[1]:
        raise ValueError(f"labels must lie in [0, {rows.shape[1]}) for these logits")
    shifted = rows - rows.max(axis=1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    n = rows.shape[0]
    loss = -log_probs[np.arange(n), labels].sum()
    grad = np.exp(log_probs)
    grad[np.arange(n), labels] -= 1.0
    return float(loss), grad


def mean_squared_error(rows: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
    """Summed squared error of output rows against target rows."""
    rows = np.asarray(rows, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if rows.shape != targets.shape:
        raise ValueError(f"rows and targets must share a shape, got {rows.shape} vs {targets.shape}")
    difference = rows - targets
    return float((difference ** 2).sum()), 2.0 * difference


OBJECTIVES: Dict[str, Objective] = {
    "cross_entropy": softmax_cross_entropy,
    "mse": mean_squared_error,
}


def resolve_objective(objective) -> Objective:
    """Accept an objective name or a callable with the objective signature."""
    if callable(objective):
        return objective
    try:
        return OBJECTIVES[objective]
    except KeyError:
        raise KeyError(
            f"unknown objective {objective!r}; known: {sorted(OBJECTIVES)} (or pass a callable)"
        ) from None
