"""Pluggable collectives for data-parallel sharded training.

A :class:`Collective` is the communication substrate of
:class:`~repro.train.distributed.ShardedTrainer`: every worker (rank) calls
``all_reduce`` / ``broadcast`` / ``barrier`` collectively once per
accumulation window, exactly like an MPI communicator.  Two registrants ship:

* :class:`LocalCollective` — in-process workers (threads) rendezvous on a
  ``threading.Barrier``; rank 0 combines the rank-indexed contribution slots
  with :func:`tree_reduce` and every rank reads the one shared result.
* :class:`SharedMemoryCollective` — ``multiprocessing`` workers (forked
  processes) exchange through a shared-memory slot buffer guarded by a
  ``multiprocessing.Barrier``; the reduction code is the same.

Determinism is the whole point: both collectives combine contributions with
a **rank-ordered pairwise tree** (:func:`tree_reduce`), so the float
summation order is a fixed function of the world size — never of thread or
process scheduling — and repeated runs are bit-identical.  The bit-identity
lockdown of sharded training (``tests/test_sharded_training.py``) leans on
an even stronger property: the trainer all-reduces *zero-padded per-minibatch
gradient rows* (each row has exactly one non-zero contributor, and adding
zeros is exact in IEEE float), then reduces the rows through the same
canonical tree the single-worker trainer uses, so the final association is
independent of the shard count altogether.
"""

from __future__ import annotations

import ctypes
import multiprocessing
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Type

import numpy as np


def tree_reduce(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Sum arrays by a deterministic pairwise (binary-tree) association.

    Adjacent pairs are added, then pairs of pairs, and so on — the
    association depends only on the *number* of inputs and their order,
    never on which worker produced which input.  This is the canonical
    summation both the single-worker trainer (over per-minibatch gradient
    leaves) and every collective (over rank contributions) use, which is
    what lets N-shard training reproduce 1-worker training bit for bit.
    """
    chunks: List[np.ndarray] = [np.asarray(array, dtype=np.float64) for array in arrays]
    if not chunks:
        raise ValueError("tree_reduce needs at least one array")
    while len(chunks) > 1:
        merged = [chunks[i] + chunks[i + 1] for i in range(0, len(chunks) - 1, 2)]
        if len(chunks) % 2:
            merged.append(chunks[-1])
        chunks = merged
    return chunks[0]


@dataclass
class CollectiveStats:
    """Telemetry of one collective: operation count, traffic, reduce time.

    Every rate/mean here is guarded for the zero-operation case — a freshly
    built collective (or a 1-worker run that never communicates) must report
    zeros, not raise.
    """

    operations: int = 0
    bytes_moved: int = 0
    reduce_seconds: float = 0.0

    @property
    def mean_bytes_per_operation(self) -> float:
        return self.bytes_moved / self.operations if self.operations else 0.0

    @property
    def megabytes_moved(self) -> float:
        return self.bytes_moved / 1e6

    def summary(self) -> Dict[str, object]:
        return {
            "all_reduce_ops": self.operations,
            "all_reduce_mb": round(self.megabytes_moved, 3),
            "all_reduce_s": round(self.reduce_seconds, 4),
            "mean_kb_per_op": round(self.mean_bytes_per_operation / 1e3, 2),
        }


class Collective(ABC):
    """Rank-addressed collective operations over ``world_size`` workers.

    Every operation is *collective*: all ranks must call it (with arrays of
    one agreed shape), and implementations may block a rank until the rest
    arrive.  Results are deterministic — reduction order is fixed by rank,
    not by arrival order.
    """

    #: True when ranks live in separate processes (workers must be forked,
    #: not threaded) — the sharded trainer picks its launcher from this.
    runs_in_processes = False

    def __init__(self, world_size: int, capacity: Optional[int] = None):
        world_size = int(world_size)
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.world_size = world_size
        self.capacity = None if capacity is None else int(capacity)

    def _check_rank(self, rank: int) -> int:
        rank = int(rank)
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank must lie in [0, {self.world_size}), got {rank}")
        return rank

    @abstractmethod
    def all_reduce(self, rank: int, local: np.ndarray) -> np.ndarray:
        """Element-wise sum of every rank's array, identical on all ranks."""

    @abstractmethod
    def broadcast(self, rank: int, local: np.ndarray, root: int = 0) -> np.ndarray:
        """Every rank returns ``root``'s array (non-roots' inputs size the buffer)."""

    @abstractmethod
    def barrier(self, rank: int) -> None:
        """Block until every rank has arrived."""

    @property
    @abstractmethod
    def stats(self) -> CollectiveStats:
        """Accumulated traffic/time telemetry (see :class:`CollectiveStats`)."""


class LocalCollective(Collective):
    """In-process collective for thread workers (and the 1-worker case).

    Ranks deposit contributions into rank-indexed slots, meet at a
    ``threading.Barrier``, rank 0 performs the rank-ordered
    :func:`tree_reduce` exactly once, and a second barrier releases every
    rank to read the single shared result.  Returned arrays are shared
    read-only views — the trainer copies before mutating.
    """

    def __init__(self, world_size: int, capacity: Optional[int] = None):
        super().__init__(world_size, capacity)
        self._barrier = threading.Barrier(self.world_size)
        self._slots: List[Optional[np.ndarray]] = [None] * self.world_size
        self._result: Optional[np.ndarray] = None
        self._stats = CollectiveStats()

    @property
    def stats(self) -> CollectiveStats:
        return self._stats

    def all_reduce(self, rank: int, local: np.ndarray) -> np.ndarray:
        rank = self._check_rank(rank)
        self._slots[rank] = np.asarray(local, dtype=np.float64)
        self._barrier.wait()
        if rank == 0:
            start = time.perf_counter()
            self._result = tree_reduce(self._slots)
            self._stats.operations += 1
            self._stats.bytes_moved += sum(slot.nbytes for slot in self._slots)
            self._stats.reduce_seconds += time.perf_counter() - start
        self._barrier.wait()
        return self._result

    def broadcast(self, rank: int, local: np.ndarray, root: int = 0) -> np.ndarray:
        # Publish through the rank-indexed slots, not the shared result: a
        # rank may enter this operation while a straggler is still returning
        # the previous one's result, and only slot writes are gated so that
        # no rank can overwrite state another rank has yet to read.
        rank = self._check_rank(rank)
        root = self._check_rank(root)
        self._slots[rank] = np.asarray(local, dtype=np.float64)
        self._barrier.wait()
        out = self._slots[root]
        self._barrier.wait()
        return out

    def barrier(self, rank: int) -> None:
        self._check_rank(rank)
        self._barrier.wait()


class SharedMemoryCollective(Collective):
    """``multiprocessing`` collective over a fork-shared slot buffer.

    Built in the parent *before* workers fork so every child inherits the
    same shared arrays and barrier.  ``capacity`` is the largest per-rank
    element count any operation will move (the sharded trainer sizes it from
    its widest accumulation window).  Telemetry lives in shared values so the
    parent can read it after the workers exit.
    """

    runs_in_processes = True

    def __init__(self, world_size: int, capacity: Optional[int] = None):
        super().__init__(world_size, capacity)
        if self.capacity is None or self.capacity < 1:
            raise ValueError("SharedMemoryCollective needs a positive element capacity")
        context = multiprocessing.get_context("fork")
        self._barrier = context.Barrier(self.world_size)
        self._slots = context.Array(ctypes.c_double, self.world_size * self.capacity, lock=False)
        self._result = context.Array(ctypes.c_double, self.capacity, lock=False)
        # Written only by rank 0, strictly between the two barriers of an
        # operation, so lock-free shared values are race-free.
        self._operations = context.Value(ctypes.c_int64, 0, lock=False)
        self._bytes = context.Value(ctypes.c_int64, 0, lock=False)
        self._seconds = context.Value(ctypes.c_double, 0.0, lock=False)

    @property
    def stats(self) -> CollectiveStats:
        return CollectiveStats(
            operations=int(self._operations.value),
            bytes_moved=int(self._bytes.value),
            reduce_seconds=float(self._seconds.value),
        )

    def _slot_view(self, rank: int, size: int) -> np.ndarray:
        flat = np.frombuffer(self._slots, dtype=np.float64)
        return flat[rank * self.capacity:rank * self.capacity + size]

    def _check_size(self, size: int) -> None:
        if size > self.capacity:
            raise ValueError(
                f"array of {size} elements exceeds the collective's capacity of {self.capacity}"
            )

    def all_reduce(self, rank: int, local: np.ndarray) -> np.ndarray:
        rank = self._check_rank(rank)
        local = np.asarray(local, dtype=np.float64)
        self._check_size(local.size)
        self._slot_view(rank, local.size)[:] = local.ravel()
        self._barrier.wait()
        if rank == 0:
            start = time.perf_counter()
            reduced = tree_reduce([self._slot_view(r, local.size) for r in range(self.world_size)])
            np.frombuffer(self._result, dtype=np.float64)[:local.size] = reduced
            self._operations.value += 1
            self._bytes.value += local.nbytes * self.world_size
            self._seconds.value += time.perf_counter() - start
        self._barrier.wait()
        out = np.frombuffer(self._result, dtype=np.float64)[:local.size].copy()
        return out.reshape(local.shape)

    def broadcast(self, rank: int, local: np.ndarray, root: int = 0) -> np.ndarray:
        # As in LocalCollective.broadcast: publish through the per-rank slot
        # (each rank writes only its own, so pre-barrier writes cannot race a
        # straggler's read of the previous operation's result buffer).
        rank = self._check_rank(rank)
        root = self._check_rank(root)
        local = np.asarray(local, dtype=np.float64)
        self._check_size(local.size)
        self._slot_view(rank, local.size)[:] = local.ravel()
        self._barrier.wait()
        out = self._slot_view(root, local.size).copy()
        self._barrier.wait()
        return out.reshape(local.shape)

    def barrier(self, rank: int) -> None:
        self._check_rank(rank)
        self._barrier.wait()


#: Named collective registrants ``ShardedTrainer(collective=...)`` accepts.
COLLECTIVES: Dict[str, Type[Collective]] = {
    "local": LocalCollective,
    "shm": SharedMemoryCollective,
    "multiprocessing": SharedMemoryCollective,
}


def register_collective(name: str, cls: Type[Collective]) -> None:
    """Register a collective implementation under ``name``."""
    if not issubclass(cls, Collective):
        raise TypeError(f"{cls!r} is not a Collective subclass")
    COLLECTIVES[name] = cls


def make_collective(name: str, world_size: int, capacity: Optional[int] = None) -> Collective:
    """Build a registered collective by name."""
    try:
        cls = COLLECTIVES[name]
    except KeyError:
        raise KeyError(f"unknown collective {name!r}; known: {sorted(COLLECTIVES)}") from None
    return cls(world_size, capacity)
