"""Minibatch training over sampled blocks.

:class:`MinibatchTrainer` composes the existing runtime pieces end to end:
each epoch it shuffles the training seeds deterministically, partitions them
into minibatches, samples every minibatch's k-hop block (merged, or one
block per hop for multi-layer stacks), binds the schema-compiled module to
the block (pooled arenas), runs forward + backward per binding — parameter
gradients accumulate across the accumulation window's bindings exactly like
gradient accumulation — and steps a :mod:`repro.tensor.optim` optimizer once
per window.

Gradient semantics: every optimizer step applies the *mean* gradient over
its accumulation window.  Objectives are sum-reduced and the trainer divides
each minibatch's seed-row gradient by the window's total seed count, so with
``accumulation_steps=None`` (accumulate the whole epoch, step once) and
``fanouts=(None,)`` an epoch reproduces full-graph mean-loss training
exactly — the equivalence the test suite pins bit-for-bit when one window
covers the whole graph.

Window accumulation is materialised as per-minibatch gradient *leaves*
combined by the canonical pairwise tree of
:func:`~repro.train.collective.tree_reduce` — an association that depends
only on the window's global minibatch order, never on which worker computed
which leaf.  That is the hook :class:`~repro.train.distributed.ShardedTrainer`
builds on: N data-parallel shards all-reduce the same leaves and reduce them
through the same tree, so sharded training reproduces this trainer bit for
bit.

Epoch boundaries call :meth:`~repro.graph.sampler.NeighborSampler.resample`,
so under finite fanouts every epoch draws fresh neighborhoods while any
epoch stays exactly reproducible from the sampler's base seed.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graph.hetero_graph import HeteroGraph
from repro.graph.sampler import Fanout, NeighborSampler
from repro.runtime.module import CompiledRGNNModule
from repro.runtime.multilayer import MultiLayerModule
from repro.tensor import optim
from repro.train.collective import tree_reduce
from repro.train.objectives import resolve_objective
from repro.train.stats import EpochStats, TrainStats

#: Named optimizer factories the trainer accepts besides instances.
OPTIMIZERS = {"sgd": optim.SGD, "adam": optim.Adam}


class MinibatchTrainer:
    """Sampled-block minibatch SGD over a compiled module or layer stack.

    Args:
        model: a :class:`~repro.runtime.module.CompiledRGNNModule` (single
            layer, merged blocks) or a
            :class:`~repro.runtime.multilayer.MultiLayerModule` (executed
            layer-by-hop over per-hop blocks unless ``per_hop=False``).
        graph: the parent graph minibatches sample their blocks from.
        features: ``(graph.num_nodes, in_dim)`` node-feature store.
        targets: per-node training targets — integer class labels
            (``cross_entropy``) or a float target matrix (``mse``), indexed
            by parent node id.
        objective: objective name (``"cross_entropy"`` / ``"mse"``) or a
            sum-reduced callable ``(rows, targets) -> (loss_sum, grad_rows)``.
        optimizer: an already-built :class:`repro.tensor.optim.Optimizer`
            over the model's parameters, an optimizer name, or ``None`` for
            SGD.
        lr: learning rate for a trainer-built optimizer.
        train_ids: seed nodes to train over (default: every node).
        batch_size: seeds per minibatch (``None`` = one full minibatch).
        accumulation_steps: minibatches per optimizer step; ``None``
            accumulates the whole epoch into a single step.
        fanouts: per-hop sampling fanouts; defaults to unbounded
            neighborhoods, one hop per model layer.
        per_hop: for multi-layer stacks, execute layer-by-hop over per-hop
            blocks (the default) or every layer over one merged block.
        sampler_seed / shuffle_seed: RNG seeds of the neighbor sampler and
            the per-epoch seed shuffle.
    """

    def __init__(
        self,
        model: Union[CompiledRGNNModule, MultiLayerModule],
        graph: HeteroGraph,
        features: np.ndarray,
        targets: np.ndarray,
        *,
        objective="cross_entropy",
        optimizer=None,
        lr: float = 0.1,
        train_ids=None,
        batch_size: Optional[int] = None,
        accumulation_steps: Optional[int] = 1,
        fanouts: Optional[Sequence[Fanout]] = None,
        per_hop: bool = True,
        sampler_seed: int = 0,
        shuffle_seed: int = 0,
    ):
        self.model = model
        self.graph = graph
        self._is_stack = isinstance(model, MultiLayerModule)
        num_layers = model.num_layers if self._is_stack else 1
        self.per_hop = bool(per_hop) and self._is_stack

        if fanouts is None:
            fanouts = (None,) * num_layers
        if self._is_stack and len(fanouts) != num_layers:
            # Merged execution needs the hops too: an L-layer stack over a
            # (L-1)-hop block silently starves the outer layers of edges.
            raise ValueError(
                f"a layer stack needs one fanout per layer: "
                f"{num_layers} layers but {len(fanouts)} fanouts"
            )
        self.sampler = NeighborSampler(graph, fanouts=fanouts, seed=sampler_seed)

        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[0] != graph.num_nodes:
            raise ValueError(
                f"features must be (num_nodes, in_dim) = ({graph.num_nodes}, ...), "
                f"got shape {features.shape}"
            )
        self.features = features
        targets = np.asarray(targets)
        if targets.shape[0] != graph.num_nodes:
            raise ValueError(
                f"targets must have one row per node ({graph.num_nodes}), "
                f"got {targets.shape[0]}"
            )
        self.targets = targets
        self.objective = resolve_objective(objective)

        if train_ids is None:
            train_ids = np.arange(graph.num_nodes, dtype=np.int64)
        train_ids = np.asarray(train_ids, dtype=np.int64).reshape(-1)
        if train_ids.size == 0:
            raise ValueError("train_ids must name at least one seed node")
        if len(np.unique(train_ids)) != len(train_ids):
            raise ValueError("train_ids must be unique (each seed contributes one loss row)")
        if train_ids.min() < 0 or train_ids.max() >= graph.num_nodes:
            raise ValueError(f"train_ids must lie in [0, {graph.num_nodes})")
        self.train_ids = train_ids

        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1 (or None for one full minibatch)")
        self.batch_size = batch_size
        if accumulation_steps is not None and accumulation_steps < 1:
            raise ValueError("accumulation_steps must be >= 1 (or None to accumulate the epoch)")
        self.accumulation_steps = accumulation_steps

        if optimizer is None:
            optimizer = "sgd"
        if isinstance(optimizer, str):
            try:
                factory = OPTIMIZERS[optimizer]
            except KeyError:
                raise KeyError(
                    f"unknown optimizer {optimizer!r}; known: {sorted(OPTIMIZERS)}"
                ) from None
            optimizer = factory(model.parameters(), lr=lr)
        self.optimizer = optimizer

        self.shuffle_seed = int(shuffle_seed)
        self.stats = TrainStats()
        self._next_epoch = 0
        self._flat_size = int(sum(p.data.size for p in self.model.parameters()))

    @property
    def num_layers(self) -> int:
        """Model layers — the length of every per-epoch ``layer_edges`` list."""
        return self.model.num_layers if self._is_stack else 1

    @property
    def flat_parameter_size(self) -> int:
        """Total parameter scalars — the length of flat gradient leaves."""
        return self._flat_size

    # ------------------------------------------------------------------
    def _epoch_minibatches(self, epoch: int) -> List[np.ndarray]:
        """Deterministically shuffled seed minibatches for one epoch."""
        order = np.random.default_rng([self.shuffle_seed, epoch]).permutation(self.train_ids)
        size = self.batch_size if self.batch_size is not None else len(order)
        return [order[start:start + size] for start in range(0, len(order), size)]

    def _windows(self, minibatches: List[np.ndarray]) -> List[List[np.ndarray]]:
        """Group minibatches into gradient-accumulation windows."""
        if self.accumulation_steps is None:
            return [minibatches]
        step = self.accumulation_steps
        return [minibatches[start:start + step] for start in range(0, len(minibatches), step)]

    def _train_minibatch(self, seeds: np.ndarray, normalizer: int) -> Tuple[float, int, int, List[int]]:
        """Sample, bind, forward, and backward one minibatch.

        Returns ``(loss_sum, block_nodes, block_edges, per_layer_edges)``.
        """
        targets = self.targets[seeds]
        if self._is_stack:
            if self.per_hop:
                blocks = self.sampler.sample_blocks(seeds)
            else:
                merged = self.sampler.sample(seeds)
                blocks = None
            if blocks is not None:
                run = self.model.forward_blocks(blocks, self.features)
                final = blocks[0]
            else:
                run = self.model.forward_merged(merged, self.features)
                final = merged
            rows = run.seed_outputs()
            loss_sum, grad_rows = self.objective(rows, targets)
            inner = run.blocks[-1]
            grad = np.zeros((inner.num_nodes, rows.shape[1]))
            grad[inner.seed_positions] = grad_rows / normalizer
            if blocks is not None:
                self.model.backward_blocks(run, grad)
            else:
                self.model.backward_merged(run, grad)
            layer_edges = self.model.layer_edge_counts(run)
            return loss_sum, final.num_nodes, sum(layer_edges), layer_edges

        block = self.sampler.sample(seeds)
        binding = self.model.bind(block.graph, label="trainer")
        out = binding.forward(block.gather_features(self.features))[self.model.output_name]
        rows = block.seed_outputs(out)
        loss_sum, grad_rows = self.objective(rows, targets)
        grad = np.zeros_like(out)
        grad[block.seed_positions] = grad_rows / normalizer
        binding.backward({self.model.output_name: grad})
        return loss_sum, block.num_nodes, block.num_edges, [block.num_edges]

    # ------------------------------------------------------------------
    # window-gradient hooks (shared with repro.train.distributed)
    # ------------------------------------------------------------------
    def flat_gradient(self) -> np.ndarray:
        """The model's parameter gradients as one flat float64 vector.

        Parameters whose gradient is unset contribute zeros, so the vector
        always has :attr:`flat_parameter_size` entries in parameter order.
        """
        parts = []
        for parameter in self.model.parameters():
            grad = parameter.grad
            if grad is None:
                parts.append(np.zeros(parameter.data.size))
            else:
                parts.append(np.asarray(grad, dtype=np.float64).ravel())
        return np.concatenate(parts) if parts else np.zeros(0)

    def flat_parameters(self) -> np.ndarray:
        """The model's parameter values as one flat float64 vector."""
        return np.concatenate([
            np.asarray(p.data, dtype=np.float64).ravel() for p in self.model.parameters()
        ])

    def load_flat_parameters(self, flat: np.ndarray) -> None:
        """Overwrite parameter values from a :meth:`flat_parameters` vector."""
        flat = np.asarray(flat, dtype=np.float64).reshape(-1)
        if flat.size != self._flat_size:
            raise ValueError(f"expected {self._flat_size} parameter scalars, got {flat.size}")
        offset = 0
        for parameter in self.model.parameters():
            size = parameter.data.size
            parameter.data[...] = flat[offset:offset + size].reshape(parameter.data.shape)
            offset += size

    def minibatch_gradient(self, seeds: np.ndarray, normalizer: int):
        """One minibatch's isolated gradient leaf.

        Zeroes the model gradients, runs the minibatch's forward + backward
        with seed-row gradients divided by ``normalizer`` (the window's total
        seed count), and returns ``(leaf, (loss_sum, nodes, edges,
        layer_edges))`` where ``leaf`` is the flat gradient vector.
        """
        if normalizer < 1:
            raise ValueError(
                f"window seed count must be >= 1 to normalise gradients, got {normalizer}"
            )
        self.model.zero_grad()
        loss_sum, nodes, edges, layer_edges = self._train_minibatch(seeds, normalizer)
        return self.flat_gradient(), (loss_sum, nodes, edges, layer_edges)

    def apply_window_gradient(self, flat_grad: np.ndarray) -> None:
        """Install a window's combined gradient and take the optimizer step."""
        flat_grad = np.asarray(flat_grad, dtype=np.float64).reshape(-1)
        if flat_grad.size != self._flat_size:
            raise ValueError(f"expected {self._flat_size} gradient scalars, got {flat_grad.size}")
        offset = 0
        for parameter in self.model.parameters():
            size = parameter.data.size
            parameter.grad = flat_grad[offset:offset + size].reshape(parameter.data.shape).copy()
            offset += size
        self.optimizer.step()

    # ------------------------------------------------------------------
    def epoch(self) -> EpochStats:
        """Run one training epoch; returns (and records) its statistics."""
        epoch_index = self._next_epoch
        self.sampler.resample(epoch_index)
        minibatches = self._epoch_minibatches(epoch_index)
        if not any(len(batch) for batch in minibatches):
            # Unreachable through the constructor (train_ids is validated
            # non-empty) but reachable through the sharding hooks; fail with
            # the argument named instead of dividing by a zero seed count.
            raise ValueError(
                f"epoch {epoch_index} has no training seeds to iterate (empty train_ids slice)"
            )
        start = time.perf_counter()
        loss_total = 0.0
        nodes_total = 0
        edges_total = 0
        layer_edges_total: List[int] = []
        steps = 0
        for window in self._windows(minibatches):
            window_seeds = int(sum(len(batch) for batch in window))
            if window_seeds == 0:
                # A zero-seed tail window contributes no gradient; stepping
                # the optimizer on it would desynchronise stateful optimizers
                # (Adam's bias correction) from the sharded replicas.
                continue
            leaves = []
            for seeds in window:
                leaf, (loss_sum, nodes, edges, layer_edges) = self.minibatch_gradient(
                    seeds, window_seeds
                )
                leaves.append(leaf)
                loss_total += loss_sum
                nodes_total += nodes
                edges_total += edges
                if not layer_edges_total:
                    layer_edges_total = [0] * len(layer_edges)
                layer_edges_total = [a + b for a, b in zip(layer_edges_total, layer_edges)]
            self.apply_window_gradient(tree_reduce(leaves))
            steps += 1
        seconds = time.perf_counter() - start
        record = EpochStats(
            epoch=epoch_index,
            loss=loss_total / len(self.train_ids),
            num_seeds=len(self.train_ids),
            num_minibatches=len(minibatches),
            num_steps=steps,
            seconds=seconds,
            block_nodes=nodes_total,
            block_edges=edges_total,
            layer_edges=layer_edges_total,
        )
        self.stats.record(record)
        self._next_epoch += 1
        return record

    def train(self, num_epochs: int) -> TrainStats:
        """Run ``num_epochs`` epochs; returns the accumulated statistics."""
        if num_epochs < 1:
            raise ValueError("num_epochs must be >= 1")
        for _ in range(num_epochs):
            self.epoch()
        return self.stats

    # ------------------------------------------------------------------
    def _arena_pools(self) -> List[object]:
        """The arena lease sources backing the trainer's bindings."""
        modules = self.model.modules if self._is_stack else [self.model]
        pools: List[object] = []
        if self._is_stack:
            pools.extend(source for source in self.model.arena_sources if source is not None)
        covered = len(pools) == len(modules)
        if not covered:
            pools.extend(
                module.arena_pool.stats for module in modules if module.arena_pool is not None
            )
        return pools

    def summary(self) -> dict:
        """Run-level report: loss, throughput, sampler and arena hit rates."""
        return self.stats.summary(sampler=self.sampler, arena_pools=self._arena_pools())
