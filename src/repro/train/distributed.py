"""Data-parallel sharded minibatch training with bit-identity to one worker.

:class:`ShardedTrainer` partitions each epoch's deterministically shuffled
seed minibatches across ``num_shards`` workers and trains one model replica
per worker:

* every worker derives the epoch's *global* minibatch list from the shared
  ``(shuffle_seed, epoch)`` stream — exactly the list a 1-worker
  :class:`~repro.train.trainer.MinibatchTrainer` iterates — and takes the
  minibatches whose global index is congruent to its rank
  (:func:`shard_minibatches`: disjoint, covering, deterministic);
* each worker's sampler runs its own ``(sampler_seed, epoch, shard)`` epoch
  stream (:meth:`~repro.graph.sampler.NeighborSampler.resample`), so under
  finite fanouts shards draw disjoint neighborhood streams;
* per accumulation window, each worker fills its rows of a zero-padded
  ``(window_len, num_params)`` leaf matrix with its minibatches' gradient
  leaves, the :class:`~repro.train.collective.Collective` all-reduces the
  matrix (each row has exactly one non-zero contributor, so the rank sum is
  exact), and every worker reduces the rows through the same canonical
  :func:`~repro.train.collective.tree_reduce` the 1-worker trainer uses,
  then steps its own optimizer replica.

**Bit-identity.** Because the window-mean normalisation makes shard sums
exact and the leaf association is a fixed function of the window's global
minibatch order (never of the shard count), N-shard training under exact
sampling (``fanouts=(None,)``) reproduces 1-worker training bit for bit —
``np.array_equal`` on window gradients and post-step parameters, for RGCN,
RGAT, and HGT, under full-epoch and windowed accumulation, via both
collectives (``tests/test_sharded_training.py``).  The cost of the guarantee
is leaf-granular traffic (``window_len × num_params`` doubles per window
instead of ``num_params``); a reproducible-summation gradient exchange that
collapses this back to one vector is recorded as a ROADMAP follow-on.

Workers run as threads under :class:`~repro.train.collective.LocalCollective`
(numpy releases the GIL; per-worker busy time is thread CPU time) and as
forked processes under
:class:`~repro.train.collective.SharedMemoryCollective`.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
import traceback
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.graph.hetero_graph import HeteroGraph
from repro.graph.sampler import Fanout
from repro.train.collective import Collective, make_collective, tree_reduce
from repro.train.stats import DistributedTrainStats, EpochStats, ShardEpochStats
from repro.train.trainer import MinibatchTrainer


def shard_minibatches(num_minibatches: int, num_shards: int) -> List[np.ndarray]:
    """Partition global minibatch indices round-robin across shards.

    Returns one index array per shard: shard ``k`` owns the minibatches whose
    global index ``i`` satisfies ``i % num_shards == k``.  The partition is
    disjoint, covering, deterministic, and balanced to within one minibatch;
    shards beyond ``num_minibatches`` simply own nothing (a small tail epoch
    must idle the surplus workers, not crash them).
    """
    if num_minibatches < 0:
        raise ValueError(f"num_minibatches must be >= 0, got {num_minibatches}")
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    return [
        np.arange(shard, num_minibatches, num_shards, dtype=np.int64)
        for shard in range(num_shards)
    ]


def _optimizer_state(optimizer) -> Dict[str, object]:
    """Marshal an optimizer's mutable state (momentum/Adam buffers) as arrays."""
    state: Dict[str, object] = {}
    for name in ("_velocity", "_m", "_v"):
        buffers = getattr(optimizer, name, None)
        if buffers is not None:
            state[name] = [np.array(buffer) for buffer in buffers]
    if hasattr(optimizer, "_step"):
        state["_step"] = optimizer._step
    return state


def _load_optimizer_state(optimizer, state: Dict[str, object]) -> None:
    """Restore state captured by :func:`_optimizer_state` into a replica."""
    for name, value in state.items():
        if name == "_step":
            optimizer._step = value
            continue
        for target, source in zip(getattr(optimizer, name), value):
            target[...] = source


class ShardedTrainer:
    """Data-parallel sharded training over ``num_shards`` model replicas.

    Args:
        model_factory: zero-argument callable building one model replica
            (e.g. ``lambda: compile_model("rgcn", graph, ...)``); called once
            per shard, after which rank 0's parameters are broadcast so every
            replica starts identical even under a nondeterministic factory.
        graph / features / targets: as for
            :class:`~repro.train.trainer.MinibatchTrainer`.
        num_shards: data-parallel worker count (>= 1).
        collective: a registered collective name (``"local"`` in-process
            threads, ``"shm"``/``"multiprocessing"`` forked processes) or an
            already-built :class:`~repro.train.collective.Collective` whose
            world size matches.
        optimizer: an optimizer *name* (each replica builds its own instance;
            sharing one instance across replicas is rejected).
        remaining keyword arguments: as for ``MinibatchTrainer``.
    """

    def __init__(
        self,
        model_factory: Callable[[], object],
        graph: HeteroGraph,
        features: np.ndarray,
        targets: np.ndarray,
        *,
        num_shards: int,
        collective="local",
        objective="cross_entropy",
        optimizer: Optional[str] = None,
        lr: float = 0.1,
        train_ids=None,
        batch_size: Optional[int] = None,
        accumulation_steps: Optional[int] = 1,
        fanouts: Optional[Sequence[Fanout]] = None,
        per_hop: bool = True,
        sampler_seed: int = 0,
        shuffle_seed: int = 0,
    ):
        if not callable(model_factory):
            raise TypeError("model_factory must be a zero-argument callable building one replica")
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if optimizer is not None and not isinstance(optimizer, str):
            raise TypeError(
                "ShardedTrainer needs an optimizer *name* — each shard builds its own "
                "replica instance; one shared optimizer cannot step N replicas"
            )
        self.num_shards = int(num_shards)
        self._trainers = [
            MinibatchTrainer(
                model_factory(), graph, features, targets,
                objective=objective, optimizer=optimizer, lr=lr, train_ids=train_ids,
                batch_size=batch_size, accumulation_steps=accumulation_steps,
                fanouts=fanouts, per_hop=per_hop,
                sampler_seed=sampler_seed, shuffle_seed=shuffle_seed,
            )
            for _ in range(self.num_shards)
        ]
        template = self._trainers[0]
        self.model = template.model
        self.train_ids = template.train_ids
        flat_size = template.flat_parameter_size

        # Widest all-reduce payload: the leaf matrix of the largest window,
        # the per-window stats vector, and the initial parameter broadcast.
        minibatch_count = len(template._epoch_minibatches(0))
        window_len = max(len(window) for window in template._windows([None] * minibatch_count))
        capacity = max(window_len * flat_size, flat_size, 3 + template.num_layers)
        if isinstance(collective, Collective):
            if collective.world_size != self.num_shards:
                raise ValueError(
                    f"collective world size {collective.world_size} != num_shards {self.num_shards}"
                )
            self.collective = collective
        else:
            self.collective = make_collective(collective, self.num_shards, capacity)
        self._multiprocess = bool(getattr(self.collective, "runs_in_processes", False))

        self.stats = DistributedTrainStats(num_shards=self.num_shards)
        self._next_epoch = 0

    # ------------------------------------------------------------------
    # the per-worker loop (identical for thread and process workers)
    # ------------------------------------------------------------------
    def _worker_epoch(self, rank: int, trainer: MinibatchTrainer, epoch: int) -> Dict[str, object]:
        collective = self.collective
        trainer.sampler.resample(epoch, shard=rank)
        minibatches = trainer._epoch_minibatches(epoch)
        num_layers = trainer.num_layers
        flat_size = trainer.flat_parameter_size
        loss_total = 0.0
        nodes_total = 0
        edges_total = 0.0
        layer_edges_total = np.zeros(num_layers)
        steps = 0
        busy = 0.0
        shard_minibatch_count = 0
        shard_seed_count = 0
        global_index = 0
        for window in trainer._windows(minibatches):
            window_seeds = int(sum(len(batch) for batch in window))
            if window_seeds == 0:
                global_index += len(window)
                continue
            leaves = np.zeros((len(window), flat_size))
            stats_vector = np.zeros(3 + num_layers)
            start = time.thread_time()
            for offset, seeds in enumerate(window):
                if (global_index + offset) % self.num_shards != rank:
                    continue
                leaf, (loss_sum, nodes, edges, layer_edges) = trainer.minibatch_gradient(
                    seeds, window_seeds
                )
                leaves[offset] = leaf
                stats_vector[0] += loss_sum
                stats_vector[1] += nodes
                stats_vector[2] += edges
                stats_vector[3:] += layer_edges
                shard_minibatch_count += 1
                shard_seed_count += len(seeds)
            busy += time.thread_time() - start
            # Consume the reduced leaves *before* the stats all-reduce: the
            # local collective hands every rank the one shared result buffer,
            # which the next operation overwrites.
            reduced_leaves = collective.all_reduce(rank, leaves)
            start = time.thread_time()
            trainer.apply_window_gradient(tree_reduce(list(reduced_leaves)))
            busy += time.thread_time() - start
            reduced_stats = collective.all_reduce(rank, stats_vector)
            loss_total += float(reduced_stats[0])
            nodes_total += int(reduced_stats[1])
            edges_total += float(reduced_stats[2])
            layer_edges_total += reduced_stats[3:]
            steps += 1
            global_index += len(window)
        return {
            "epoch": epoch,
            "loss_total": loss_total,
            "num_minibatches": len(minibatches),
            "num_steps": steps,
            "block_nodes": nodes_total,
            "block_edges": int(edges_total),
            "layer_edges": [int(value) for value in layer_edges_total],
            "shard_minibatches": shard_minibatch_count,
            "shard_seeds": shard_seed_count,
            "busy_seconds": busy,
        }

    def _worker_run(self, rank: int, start_epoch: int, num_epochs: int) -> List[Dict[str, object]]:
        trainer = self._trainers[rank]
        # Rank 0's initial parameters are the model; replicas adopt them.
        synced = self.collective.broadcast(rank, trainer.flat_parameters(), root=0)
        trainer.load_flat_parameters(synced)
        return [
            self._worker_epoch(rank, trainer, epoch)
            for epoch in range(start_epoch, start_epoch + num_epochs)
        ]

    # ------------------------------------------------------------------
    # launchers
    # ------------------------------------------------------------------
    def _run_threads(self, start_epoch: int, num_epochs: int) -> List[List[Dict[str, object]]]:
        results: List[Optional[List[Dict[str, object]]]] = [None] * self.num_shards
        errors: List[BaseException] = []

        def run(rank: int) -> None:
            try:
                results[rank] = self._worker_run(rank, start_epoch, num_epochs)
            except BaseException as error:  # noqa: BLE001 - re-raised in the driver
                errors.append(error)
                # Release peers blocked at the rendezvous so join() returns.
                barrier = getattr(self.collective, "_barrier", None)
                if barrier is not None and hasattr(barrier, "abort"):
                    barrier.abort()

        threads = [
            threading.Thread(target=run, args=(rank,), name=f"shard-{rank}")
            for rank in range(self.num_shards)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return [result for result in results if result is not None]

    def _run_processes(self, start_epoch: int, num_epochs: int) -> List[List[Dict[str, object]]]:
        context = multiprocessing.get_context("fork")
        queue = context.Queue()

        def child(rank: int) -> None:
            try:
                records = self._worker_run(rank, start_epoch, num_epochs)
                trainer = self._trainers[rank]
                queue.put((
                    "ok", rank, records,
                    trainer.flat_parameters(), _optimizer_state(trainer.optimizer),
                ))
            except BaseException:  # noqa: BLE001 - marshalled to the parent
                queue.put(("error", rank, traceback.format_exc(), None, None))
                barrier = getattr(self.collective, "_barrier", None)
                if barrier is not None and hasattr(barrier, "abort"):
                    barrier.abort()

        processes = [
            context.Process(target=child, args=(rank,), name=f"shard-{rank}")
            for rank in range(self.num_shards)
        ]
        for process in processes:
            process.start()
        payloads = [queue.get() for _ in processes]
        for process in processes:
            process.join()
        failures = [payload for payload in payloads if payload[0] == "error"]
        if failures:
            raise RuntimeError(
                f"shard {failures[0][1]} failed in a worker process:\n{failures[0][2]}"
            )
        # Fork gave each child a copy-on-write replica; fold the trained
        # parameters and optimizer state back into the parent's replicas so
        # later train() calls (or reads of self.model) see the real run.
        results: List[List[Dict[str, object]]] = [[] for _ in range(self.num_shards)]
        for _, rank, records, flat_params, optimizer_state in payloads:
            results[rank] = records
            self._trainers[rank].load_flat_parameters(flat_params)
            _load_optimizer_state(self._trainers[rank].optimizer, optimizer_state)
        return results

    # ------------------------------------------------------------------
    def train(self, num_epochs: int) -> DistributedTrainStats:
        """Run ``num_epochs`` sharded epochs; returns the accumulated stats."""
        if num_epochs < 1:
            raise ValueError("num_epochs must be >= 1")
        start_epoch = self._next_epoch
        launcher = self._run_processes if self._multiprocess else self._run_threads
        per_rank = launcher(start_epoch, num_epochs)
        for index in range(num_epochs):
            rank_records = [per_rank[rank][index] for rank in range(self.num_shards)]
            reference = rank_records[0]
            max_busy = max(record["busy_seconds"] for record in rank_records)
            self.stats.record(EpochStats(
                epoch=reference["epoch"],
                loss=reference["loss_total"] / len(self.train_ids),
                num_seeds=len(self.train_ids),
                num_minibatches=reference["num_minibatches"],
                num_steps=reference["num_steps"],
                seconds=max_busy,
                block_nodes=reference["block_nodes"],
                block_edges=reference["block_edges"],
                layer_edges=list(reference["layer_edges"]),
            ))
            for rank, record in enumerate(rank_records):
                self.stats.record_shard(ShardEpochStats(
                    shard=rank,
                    epoch=record["epoch"],
                    num_minibatches=record["shard_minibatches"],
                    num_seeds=record["shard_seeds"],
                    busy_seconds=record["busy_seconds"],
                ))
        self._next_epoch += num_epochs
        return self.stats

    def epoch(self) -> EpochStats:
        """Run one sharded epoch; returns its (global) record."""
        self.train(1)
        return self.stats.epochs[-1]

    # ------------------------------------------------------------------
    @property
    def trainers(self) -> List[MinibatchTrainer]:
        """The per-shard replica trainers (rank order)."""
        return list(self._trainers)

    def summary(self) -> Dict[str, object]:
        """Run-level report including per-shard and collective telemetry."""
        return self.stats.summary(
            sampler=self._trainers[0].sampler,
            arena_pools=[
                pool for trainer in self._trainers for pool in trainer._arena_pools()
            ],
            collective=self.collective,
        )
