"""Training telemetry: per-epoch records and run-level summaries.

Every aggregate here is defined for *every* history length: zero epochs,
zero shards, zero seconds, and zero collective operations all summarise to
zeros (or ``None`` where "no data" is meaningful) rather than raising — the
zero-record discipline ``tests/test_stats_edge_cases.py`` pins division by
division.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class EpochStats:
    """One trainer epoch's record.

    Attributes:
        epoch: the sampler epoch index this epoch trained under.
        loss: mean loss per seed over the epoch.
        num_seeds: seed nodes trained on (the epoch's training-set size).
        num_minibatches: blocks sampled and executed.
        num_steps: optimizer steps taken (accumulation windows completed).
        seconds: wall-clock time of the epoch.
        block_nodes / block_edges: total block sizes sampled this epoch.
        layer_edges: per-layer aggregation work (edges each layer processed,
            summed over minibatches); one entry for single-layer training.
    """

    epoch: int
    loss: float
    num_seeds: int
    num_minibatches: int
    num_steps: int
    seconds: float
    block_nodes: int = 0
    block_edges: int = 0
    layer_edges: List[int] = field(default_factory=list)

    @property
    def seeds_per_second(self) -> float:
        return self.num_seeds / self.seconds if self.seconds > 0 else 0.0


@dataclass
class TrainStats:
    """A training run's accumulated telemetry."""

    epochs: List[EpochStats] = field(default_factory=list)

    def record(self, epoch: EpochStats) -> None:
        self.epochs.append(epoch)

    @property
    def num_epochs(self) -> int:
        return len(self.epochs)

    def loss_curve(self) -> List[float]:
        """Mean loss per epoch, in training order."""
        return [epoch.loss for epoch in self.epochs]

    @property
    def final_loss(self) -> Optional[float]:
        return self.epochs[-1].loss if self.epochs else None

    def summary(
        self,
        sampler=None,
        arena_pools=None,
    ) -> Dict[str, object]:
        """Run-level report row.

        Args:
            sampler: optional :class:`~repro.graph.sampler.NeighborSampler`
                whose draw-memo hit rate should be included.
            arena_pools: optional iterable of arena lease sources (anything
                with ``hits`` / ``misses`` counters — an
                :class:`~repro.runtime.planner.ArenaPool` ``.stats`` or a
                :class:`~repro.runtime.planner.TenantArenaSource`).
        """
        seconds = sum(epoch.seconds for epoch in self.epochs)
        seeds = sum(epoch.num_seeds for epoch in self.epochs)
        out: Dict[str, object] = {
            "epochs": self.num_epochs,
            "final_loss": round(self.final_loss, 6) if self.final_loss is not None else None,
            "seeds_per_s": round(seeds / seconds, 1) if seconds > 0 else 0.0,
            "minibatches": sum(epoch.num_minibatches for epoch in self.epochs),
            "optimizer_steps": sum(epoch.num_steps for epoch in self.epochs),
            "block_edges": sum(epoch.block_edges for epoch in self.epochs),
        }
        if sampler is not None:
            out["sampler_hit_rate"] = round(sampler.draw_hit_rate, 3)
        # Materialise before counting: a generator of pools would be consumed
        # by the hits sum and silently report zero misses (hit rate 1.0).
        arena_pools = list(arena_pools) if arena_pools is not None else []
        if arena_pools:
            hits = sum(int(pool.hits) for pool in arena_pools)
            misses = sum(int(pool.misses) for pool in arena_pools)
            lookups = hits + misses
            out["arena_hit_rate"] = round(hits / lookups, 3) if lookups else 0.0
        return out


@dataclass
class ShardEpochStats:
    """One data-parallel worker's share of one epoch.

    ``busy_seconds`` is the worker's own compute time (thread CPU time for
    in-process workers), excluding time blocked in collective operations —
    the quantity the scaling study's critical-path model maxes over.
    """

    shard: int
    epoch: int
    num_minibatches: int
    num_seeds: int
    busy_seconds: float

    @property
    def seeds_per_second(self) -> float:
        return self.num_seeds / self.busy_seconds if self.busy_seconds > 0 else 0.0


@dataclass
class DistributedTrainStats(TrainStats):
    """Sharded-run telemetry: epoch records plus per-shard and collective views.

    The epoch records (inherited) describe the *global* run — every shard
    observes identical reduced losses and work totals, so there is exactly
    one record per epoch.  ``shard_epochs`` carries each worker's own
    minibatch/seed/busy-time share.
    """

    shard_epochs: List[ShardEpochStats] = field(default_factory=list)
    num_shards: int = 1

    def record_shard(self, record: ShardEpochStats) -> None:
        self.shard_epochs.append(record)

    def shard_records(self, shard: int) -> List[ShardEpochStats]:
        return [record for record in self.shard_epochs if record.shard == shard]

    @property
    def max_shard_busy_seconds(self) -> float:
        """Critical-path compute time: the slowest shard's total busy time."""
        per_shard = [
            sum(record.busy_seconds for record in self.shard_records(shard))
            for shard in range(self.num_shards)
        ]
        return max(per_shard) if per_shard else 0.0

    def per_shard_summary(self) -> List[Dict[str, object]]:
        """One row per shard: minibatches, seeds, busy time, seeds/s."""
        rows: List[Dict[str, object]] = []
        for shard in range(self.num_shards):
            records = self.shard_records(shard)
            seeds = sum(record.num_seeds for record in records)
            busy = sum(record.busy_seconds for record in records)
            rows.append({
                "shard": shard,
                "minibatches": sum(record.num_minibatches for record in records),
                "seeds": seeds,
                "busy_s": round(busy, 4),
                "seeds_per_s": round(seeds / busy, 1) if busy > 0 else 0.0,
            })
        return rows

    def summary(self, sampler=None, arena_pools=None, collective=None) -> Dict[str, object]:
        """Run-level report: the global view plus sharding/collective columns.

        ``aggregate_seeds_per_s`` models data-parallel wall-clock as the
        critical path — the slowest shard's busy time plus the collective's
        reduction time — the number the scaling study gates on.
        """
        out = super().summary(sampler=sampler, arena_pools=arena_pools)
        seeds = sum(epoch.num_seeds for epoch in self.epochs)
        out["shards"] = self.num_shards
        busy = self.max_shard_busy_seconds
        reduce_seconds = 0.0
        if collective is not None:
            stats = collective.stats
            out.update(stats.summary())
            reduce_seconds = stats.reduce_seconds
        critical_path = busy + reduce_seconds
        out["max_shard_busy_s"] = round(busy, 4)
        out["aggregate_seeds_per_s"] = (
            round(seeds / critical_path, 1) if critical_path > 0 else 0.0
        )
        return out
