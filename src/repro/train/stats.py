"""Training telemetry: per-epoch records and run-level summaries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class EpochStats:
    """One trainer epoch's record.

    Attributes:
        epoch: the sampler epoch index this epoch trained under.
        loss: mean loss per seed over the epoch.
        num_seeds: seed nodes trained on (the epoch's training-set size).
        num_minibatches: blocks sampled and executed.
        num_steps: optimizer steps taken (accumulation windows completed).
        seconds: wall-clock time of the epoch.
        block_nodes / block_edges: total block sizes sampled this epoch.
        layer_edges: per-layer aggregation work (edges each layer processed,
            summed over minibatches); one entry for single-layer training.
    """

    epoch: int
    loss: float
    num_seeds: int
    num_minibatches: int
    num_steps: int
    seconds: float
    block_nodes: int = 0
    block_edges: int = 0
    layer_edges: List[int] = field(default_factory=list)

    @property
    def seeds_per_second(self) -> float:
        return self.num_seeds / self.seconds if self.seconds > 0 else 0.0


@dataclass
class TrainStats:
    """A training run's accumulated telemetry."""

    epochs: List[EpochStats] = field(default_factory=list)

    def record(self, epoch: EpochStats) -> None:
        self.epochs.append(epoch)

    @property
    def num_epochs(self) -> int:
        return len(self.epochs)

    def loss_curve(self) -> List[float]:
        """Mean loss per epoch, in training order."""
        return [epoch.loss for epoch in self.epochs]

    @property
    def final_loss(self) -> Optional[float]:
        return self.epochs[-1].loss if self.epochs else None

    def summary(
        self,
        sampler=None,
        arena_pools=None,
    ) -> Dict[str, object]:
        """Run-level report row.

        Args:
            sampler: optional :class:`~repro.graph.sampler.NeighborSampler`
                whose draw-memo hit rate should be included.
            arena_pools: optional iterable of arena lease sources (anything
                with ``hits`` / ``misses`` counters — an
                :class:`~repro.runtime.planner.ArenaPool` ``.stats`` or a
                :class:`~repro.runtime.planner.TenantArenaSource`).
        """
        seconds = sum(epoch.seconds for epoch in self.epochs)
        seeds = sum(epoch.num_seeds for epoch in self.epochs)
        out: Dict[str, object] = {
            "epochs": self.num_epochs,
            "final_loss": round(self.final_loss, 6) if self.final_loss is not None else None,
            "seeds_per_s": round(seeds / seconds, 1) if seconds > 0 else 0.0,
            "minibatches": sum(epoch.num_minibatches for epoch in self.epochs),
            "optimizer_steps": sum(epoch.num_steps for epoch in self.epochs),
            "block_edges": sum(epoch.block_edges for epoch in self.epochs),
        }
        if sampler is not None:
            out["sampler_hit_rate"] = round(sampler.draw_hit_rate, 3)
        if arena_pools:
            hits = sum(int(pool.hits) for pool in arena_pools)
            misses = sum(int(pool.misses) for pool in arena_pools)
            lookups = hits + misses
            out["arena_hit_rate"] = round(hits / lookups, 3) if lookups else 0.0
        return out
