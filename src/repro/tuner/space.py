"""The compilation design space the autotuner searches.

The paper's central claim is that decoupling model semantics from data layout
and schedule opens a *design space*: per-operator materialization
(:class:`~repro.ir.inter_op.space.Space.COMPACT` vs per-edge), linear operator
reordering, elementwise fusion / kernel merging, and the per-template
schedules of Section 3.4.1.  A :class:`TuningSpace` enumerates concrete
:class:`~repro.frontend.config.CompilerOptions` points of that space, derived
from a *base* option set so orthogonal switches the tuner does not search
(``emit_backward``, ``enable_memory_planning``, …) are preserved.

Candidates are emitted in a deterministic order with the base/default point
first, which the search exploits: ties are resolved toward the earlier (more
default) candidate, and the default configuration is always evaluated — the
tuned result can therefore never be scored worse than the default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.frontend.config import CompilerOptions
from repro.ir.codegen.registry import available_backends, get_backend
from repro.ir.intra_op.schedule import (
    ALLOWED_COARSENING,
    GEMM_TILE_CANDIDATES,
    TRAVERSAL_ROWS_CANDIDATES,
)


@dataclass(frozen=True)
class TuningSpace:
    """Axes of the design space; every field is a tuple of candidate values.

    Attributes:
        compact_materialization / linear_operator_reordering: the inter-op
            pass switches (the paper's U / C / R / C+R configurations).
        fuse_elementwise: elementwise clustering + post-lowering kernel
            merging (the kernel-merge choice).
        gemm_tile_sizes / gemm_coarsening: GEMM-template schedule axes.
        traversal_rows_per_block / traversal_partial_aggregation:
            traversal-template schedule axes.
        backends: execution-backend axis
            (:mod:`repro.ir.codegen.registry` names).  Backends never change
            numerics or the cost model's estimate, so ties resolve toward the
            base options' backend, which is always emitted first.  Every name
            is validated against the registry at construction time — a typo
            fails here with the available names, not deep inside a search.
            Mixed-backend candidates additionally carry a per-kernel
            assignment derived by the beam search in
            :mod:`repro.tuner.assignment` during evaluation.
    """

    compact_materialization: Tuple[bool, ...] = (False, True)
    linear_operator_reordering: Tuple[bool, ...] = (False, True)
    fuse_elementwise: Tuple[bool, ...] = (False, True)
    gemm_tile_sizes: Tuple[int, ...] = GEMM_TILE_CANDIDATES
    gemm_coarsening: Tuple[int, ...] = ALLOWED_COARSENING
    traversal_rows_per_block: Tuple[int, ...] = TRAVERSAL_ROWS_CANDIDATES
    traversal_partial_aggregation: Tuple[bool, ...] = (True, False)
    backends: Tuple[str, ...] = ("python-interp", "python-codegen", "mixed")

    def __post_init__(self):
        registered = available_backends()
        unknown = [name for name in self.backends if name not in registered]
        if unknown:
            raise ValueError(
                f"unknown backend(s) {unknown} in TuningSpace.backends; "
                f"available: {', '.join(registered)}"
            )
        non_executing = [name for name in self.backends if not get_backend(name).executes]
        if non_executing:
            raise ValueError(
                f"backend(s) {non_executing} in TuningSpace.backends only emit "
                "source and cannot execute plans; list executing backends only"
            )

    # ------------------------------------------------------------------
    @classmethod
    def quick(cls) -> "TuningSpace":
        """A reduced space for tests and smoke runs (pass axes + one schedule alternative)."""
        return cls(
            gemm_tile_sizes=(16, 32),
            gemm_coarsening=(1,),
            traversal_rows_per_block=(32, 128),
            traversal_partial_aggregation=(True,),
        )

    @classmethod
    def passes_only(cls) -> "TuningSpace":
        """Only the pass-level axes (U/C/R/C+R × fusion), default schedules."""
        return cls(
            gemm_tile_sizes=(16,),
            gemm_coarsening=(1,),
            traversal_rows_per_block=(128,),
            traversal_partial_aggregation=(True,),
        )

    # ------------------------------------------------------------------
    def pass_candidates(self, base: Optional[CompilerOptions] = None) -> List[CompilerOptions]:
        """Pass-level candidates (base schedules), base point first."""
        base = base or CompilerOptions()
        # The base options' backend leads, so the base point stays first and
        # cost-model ties (backends share one estimate) resolve toward it.
        backends = (base.backend,) + tuple(b for b in self.backends if b != base.backend)
        candidates: List[CompilerOptions] = []
        for backend in backends:
            for compact in self.compact_materialization:
                for reorder in self.linear_operator_reordering:
                    for fuse in self.fuse_elementwise:
                        candidates.append(
                            base.with_(
                                compact_materialization=compact,
                                linear_operator_reordering=reorder,
                                fuse_elementwise=fuse,
                                backend=backend,
                                # a per-kernel assignment is only meaningful
                                # on the backend it was derived for
                                mixed_assignment=(
                                    base.mixed_assignment if backend == "mixed" else None
                                ),
                                optimization_level=None,
                            )
                        )
        return _dedupe(candidates)

    def schedule_candidates(self, base: Optional[CompilerOptions] = None) -> List[CompilerOptions]:
        """Schedule-level candidates around ``base``'s pass configuration.

        The incumbent (``base`` with its own schedules) is emitted first, so
        searches always re-evaluate the point they are refining and ties
        resolve toward it.
        """
        base = base or CompilerOptions()
        candidates: List[CompilerOptions] = [base.with_(optimization_level=None)]
        for tile in self.gemm_tile_sizes:
            for coarsening in self.gemm_coarsening:
                for rows in self.traversal_rows_per_block:
                    for partial in self.traversal_partial_aggregation:
                        candidates.append(
                            base.with_(
                                gemm_tile_size=tile,
                                gemm_coarsening=coarsening,
                                traversal_rows_per_block=rows,
                                traversal_partial_aggregation=partial,
                                optimization_level=None,
                            )
                        )
        return _dedupe(candidates)

    def all_candidates(self, base: Optional[CompilerOptions] = None) -> List[CompilerOptions]:
        """The full cross product (exhaustive search), base point first."""
        candidates: List[CompilerOptions] = []
        for pass_point in self.pass_candidates(base):
            candidates.extend(self.schedule_candidates(pass_point))
        return _dedupe(candidates)

    # ------------------------------------------------------------------
    @property
    def num_pass_points(self) -> int:
        return (
            len(self.compact_materialization)
            * len(self.linear_operator_reordering)
            * len(self.fuse_elementwise)
            * len(self.backends)
        )

    @property
    def num_schedule_points(self) -> int:
        return (
            len(self.gemm_tile_sizes)
            * len(self.gemm_coarsening)
            * len(self.traversal_rows_per_block)
            * len(self.traversal_partial_aggregation)
        )

    @property
    def size(self) -> int:
        """Number of points of the full cross product."""
        return self.num_pass_points * self.num_schedule_points


def _dedupe(candidates: List[CompilerOptions]) -> List[CompilerOptions]:
    """Drop repeated option points, keeping first-occurrence order."""
    seen = set()
    unique: List[CompilerOptions] = []
    for options in candidates:
        key = options.cache_key()
        if key not in seen:
            seen.add(key)
            unique.append(options)
    return unique
