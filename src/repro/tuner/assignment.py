"""Beam search over per-kernel backend choices for the mixed backend.

The mixed backend (:mod:`repro.ir.codegen.mixed_backend`) runs each kernel on
either the interp executor or inside a whole-plan codegen segment.  The
search space is ``2^num_kernels`` assignments, but the objective — modelled
*host-side* overhead, the only thing the choice changes (the numpy work is
identical and bit-identical either way) — is local: a kernel's cost depends
only on its own token and whether it opens a new codegen segment.  A small
beam therefore finds the optimum while staying deterministic and fast.

The per-kernel terms, seeded from the roofline cost model's bound
classification (the same signal ``resolve_assignment`` uses):

* an interp-assigned kernel pays a function call + ``env`` lookups
  (:data:`DISPATCH_US`);
* a codegen-assigned kernel pays almost nothing (:data:`INLINE_US`), but a
  traversal kernel whose modelled time is *not* launch-latency bound gains
  nothing from inlining — numpy dominates — and gives up the interp path's
  plain-kernel execution (:data:`NONLATENCY_CODEGEN_US`);
* each maximal codegen run pays one segment-function call
  (:data:`SEGMENT_CALL_US`), so the beam prefers contiguous segments — it
  will flip a lone cheap kernel sandwiched between two GEMM chains into the
  segment rather than split it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.gpu.costmodel import estimate_kernel_time, kernel_work_from_instance
from repro.gpu.device import DeviceSpec, RTX_3090
from repro.ir.codegen.mixed_backend import ASSIGN_CODEGEN, ASSIGN_INTERP
from repro.ir.intra_op.plan import KernelPlan

#: Modelled host-side microseconds per kernel / per segment (relative weights
#: matter, absolute scale does not — only the argmin is used).
DISPATCH_US = 2.0
INLINE_US = 0.2
NONLATENCY_CODEGEN_US = 2.5
SEGMENT_CALL_US = 1.0


def _latency_bound(kernel, workload, device: DeviceSpec) -> Optional[bool]:
    """Cost-model bound classification for traversal kernels; ``None`` otherwise."""
    if getattr(kernel, "category", "") != "traversal":
        return None
    work = kernel_work_from_instance(kernel, workload, device=device)
    return estimate_kernel_time(work, device).bound == "latency"


def _step_cost(token: str, prev_token: Optional[str], latency: Optional[bool]) -> float:
    if token == ASSIGN_INTERP:
        return DISPATCH_US
    cost = INLINE_US
    if latency is False:
        cost += NONLATENCY_CODEGEN_US
    if prev_token != ASSIGN_CODEGEN:
        cost += SEGMENT_CALL_US
    return cost


def beam_search_assignment(
    plan: KernelPlan,
    workload,
    device: DeviceSpec = RTX_3090,
    beam_width: int = 4,
) -> Tuple[Tuple[str, str], ...]:
    """The host-overhead-minimal per-kernel assignment for ``plan``.

    Returns explicit ``(kernel_name, token)`` pairs covering every kernel
    (forward and backward), suitable for
    ``CompilerOptions(mixed_assignment=...)``.  Deterministic: ties break
    toward ``"codegen"`` (lexicographically smaller), and the cost structure
    is Markovian in the previous token, so ``beam_width >= 2`` is exact.
    """
    kernels = list(plan.forward_kernels) + list(plan.backward_kernels)
    if not kernels:
        return ()
    latency = {k.name: _latency_bound(k, workload, device) for k in kernels}
    # states: (tokens-so-far, accumulated cost)
    states: List[Tuple[Tuple[str, ...], float]] = [((), 0.0)]
    for kernel in kernels:
        expanded: List[Tuple[Tuple[str, ...], float]] = []
        for tokens, cost in states:
            prev = tokens[-1] if tokens else None
            for token in (ASSIGN_CODEGEN, ASSIGN_INTERP):
                expanded.append(
                    (tokens + (token,), cost + _step_cost(token, prev, latency[kernel.name]))
                )
        expanded.sort(key=lambda state: (state[1], state[0]))
        states = expanded[:beam_width]
    best_tokens = min(states, key=lambda state: (state[1], state[0]))[0]
    return tuple((kernel.name, token) for kernel, token in zip(kernels, best_tokens))
