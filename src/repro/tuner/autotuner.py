"""Cost-model-guided search over the compilation design space.

Every candidate is compiled through the regular ``compile_program`` entry
point (so the compilation cache dedupes identical points across searches and
the produced plans are exactly what a direct compilation would yield), priced
with the :mod:`repro.gpu.costmodel` roofline model under the target workload,
filtered against the device memory capacity, and — optionally — the top-k
candidates are validated by measured wall-clock of the python backend on a
concrete graph.  Winners are persisted in the :mod:`repro.tuner.database`.

Two search strategies:

* ``"staged"`` (default): score the pass-level axes (materialization ×
  reordering × fusion) under default schedules, then sweep the schedule axes
  around the winning pass configuration — ``P + S`` evaluations.
* ``"exhaustive"``: the full cross product — ``P × S`` evaluations.

Both evaluate the caller's base configuration first, so the tuned result is
never scored worse than the default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.frontend.cache import CompilationCache, make_tuning_key
from repro.frontend.compiler import compile_program
from repro.frontend.config import CompilerOptions
from repro.gpu.costmodel import plan_execution_estimate
from repro.gpu.device import DeviceSpec, RTX_3090
from repro.graph.hetero_graph import HeteroGraph
from repro.ir.inter_op.program import InterOpProgram
from repro.tuner.database import TuningDatabase, default_tuning_database, record_from_search
from repro.tuner.measure import measure_candidate_ms
from repro.tuner.space import TuningSpace

#: Search strategies understood by :func:`search_design_space`.
SEARCH_STRATEGIES = ("staged", "exhaustive")

#: Compilation cache shared by every design-space search.  Kept separate from
#: the process-global serving cache so hundreds of losing candidates never
#: crowd it, while still deduping candidate compilations across searches
#: (the same design-space points recur for every workload of one program).
#: Bounded: once it exceeds :data:`_SEARCH_CACHE_LIMIT` entries the next
#: search starts it fresh, so long-lived processes tuning many programs or
#: dimensions cannot grow it monotonically.
_SEARCH_COMPILE_CACHE = CompilationCache()
_SEARCH_CACHE_LIMIT = 2048


def clear_search_compile_cache() -> None:
    """Drop every candidate compilation retained by past searches."""
    _SEARCH_COMPILE_CACHE.clear()

#: The option fields the tuner searches; a tuning-database replay applies
#: exactly these onto the caller's base options, so non-searched switches
#: (``emit_backward``, ``enable_memory_planning``, ``enable_compilation_cache``,
#: …) always follow the caller, not whoever ran the original search.
TUNED_FIELDS = (
    "compact_materialization",
    "linear_operator_reordering",
    "fuse_elementwise",
    "gemm_tile_size",
    "gemm_coarsening",
    "traversal_rows_per_block",
    "traversal_partial_aggregation",
    "backend",
    "mixed_assignment",
)


def apply_tuned_fields(base: CompilerOptions, tuned: CompilerOptions) -> CompilerOptions:
    """Copy the searched axes of ``tuned`` onto ``base`` (see :data:`TUNED_FIELDS`)."""
    overrides = {name: getattr(tuned, name) for name in TUNED_FIELDS}
    return base.with_(optimization_level=None, **overrides)


@dataclass
class CandidateEvaluation:
    """Score of one design-space point under the tuning workload."""

    options: CompilerOptions
    estimated_ms: float
    memory_bytes: float
    oom: bool = False
    measured_ms: Optional[float] = None
    schedules: List[str] = field(default_factory=list)

    @property
    def label(self) -> str:
        return self.options.schedule_label()

    def as_row(self) -> dict:
        return {
            "configuration": self.label,
            "estimated_ms": None if self.oom else round(self.estimated_ms, 4),
            "measured_ms": None if self.measured_ms is None else round(self.measured_ms, 4),
            "memory_gib": round(self.memory_bytes / 2**30, 3),
            "status": "OOM" if self.oom else "ok",
            "schedules": "; ".join(self.schedules),
        }


@dataclass
class TuningResult:
    """Outcome of one tuning request (search or database replay)."""

    key: str
    workload_name: str
    mode: str
    device_name: str
    best: CandidateEvaluation
    candidates: List[CandidateEvaluation] = field(default_factory=list)
    search: str = "staged"
    db_hit: bool = False

    @property
    def options(self) -> CompilerOptions:
        """The winning configuration."""
        return self.best.options

    def leaderboard(self, limit: int = 10) -> List[dict]:
        """Top candidates by estimated time, as report rows."""
        ranked = sorted(self.candidates, key=lambda c: c.estimated_ms)
        return [candidate.as_row() for candidate in ranked[:limit]]


# ----------------------------------------------------------------------
def evaluate_candidate(
    program: InterOpProgram,
    options: CompilerOptions,
    workload,
    device: DeviceSpec = RTX_3090,
    mode: str = "inference",
    cache: Optional[CompilationCache] = None,
) -> CandidateEvaluation:
    """Compile one candidate and price it with the roofline cost model.

    Candidates whose footprint exceeds the device memory are marked OOM and
    scored infinitely slow, so they can never win the search.  Pass ``cache``
    to keep scoring compilations out of the process-global compilation cache
    (searches use a scratch cache so hundreds of losing candidates are not
    retained for the process lifetime).
    """
    training = mode == "training"
    result = compile_program(program, options, cache=cache)
    if options.backend == "mixed" and options.mixed_assignment is None:
        # Make the per-kernel choice explicit on the candidate: the beam
        # search (seeded from the same cost model) picks kernel → backend,
        # and the winning options — including a tuning-database replay —
        # then carry the assignment instead of re-deriving it at compile
        # time from whatever graph happens to be bound.
        from repro.tuner.assignment import beam_search_assignment

        assignment = beam_search_assignment(result.plan, workload, device=device)
        options = options.with_(mixed_assignment=assignment)
        result = compile_program(program, options, cache=cache)
    memory = result.plan.memory_bytes(workload, training=training)
    if memory > device.memory_bytes:
        return CandidateEvaluation(
            options=options, estimated_ms=float("inf"), memory_bytes=memory, oom=True
        )
    estimate = plan_execution_estimate(result.plan, workload, device, training=training)
    return CandidateEvaluation(
        options=options,
        estimated_ms=estimate.total_time_ms,
        memory_bytes=memory,
        schedules=result.plan.schedule_descriptions(),
    )


def _best_of(candidates: List[CandidateEvaluation]) -> CandidateEvaluation:
    """Strictly-better minimum: ties keep the earlier (more default) candidate."""
    best = candidates[0]
    for candidate in candidates[1:]:
        if candidate.estimated_ms < best.estimated_ms:
            best = candidate
    return best


def search_design_space(
    program: InterOpProgram,
    workload,
    base_options: Optional[CompilerOptions] = None,
    space: Optional[TuningSpace] = None,
    device: DeviceSpec = RTX_3090,
    mode: str = "inference",
    search: str = "staged",
    graph: Optional[HeteroGraph] = None,
    measure_top_k: int = 0,
    measure_repeats: int = 3,
) -> TuningResult:
    """Search the design space for one (program × workload × device × mode).

    Args:
        program: the inter-op program being tuned.
        workload: :class:`~repro.evaluation.workload.WorkloadSpec` sizes the
            cost model prices candidates against.
        base_options: configuration the candidates are derived from; its
            non-searched switches (``emit_backward``, memory planning, …) are
            preserved.  Defaults to ``CompilerOptions()``.
        space: axes to search; defaults to the full :class:`TuningSpace`.
        device / mode: scoring target; ``mode`` is ``"inference"`` or
            ``"training"``.
        search: ``"staged"`` or ``"exhaustive"``.
        graph: concrete graph enabling measured validation.
        measure_top_k: when > 0 (and ``graph`` is given), re-rank the best k
            candidates by measured wall-clock of the python backend.
        measure_repeats: timed repetitions per measured candidate.
    """
    if mode not in ("inference", "training"):
        raise ValueError(f"unknown tuning mode {mode!r}")
    if search not in SEARCH_STRATEGIES:
        raise ValueError(f"unknown search strategy {search!r}; expected one of {SEARCH_STRATEGIES}")
    base = (base_options or CompilerOptions()).with_(optimization_level=None)
    if mode == "training" and not base.emit_backward:
        raise ValueError("training-mode tuning requires base options with emit_backward=True")
    space = space or TuningSpace()
    if len(_SEARCH_COMPILE_CACHE) > _SEARCH_CACHE_LIMIT:
        _SEARCH_COMPILE_CACHE.clear()
    scratch = _SEARCH_COMPILE_CACHE

    if search == "exhaustive":
        points = space.all_candidates(base)
        evaluated = [evaluate_candidate(program, p, workload, device, mode, scratch) for p in points]
    else:
        pass_points = space.pass_candidates(base)
        evaluated = [
            evaluate_candidate(program, p, workload, device, mode, scratch) for p in pass_points
        ]
        stage_one_best = _best_of(evaluated)
        seen = {candidate.options.cache_key() for candidate in evaluated}
        for point in space.schedule_candidates(stage_one_best.options):
            if point.cache_key() in seen:
                continue
            seen.add(point.cache_key())
            evaluated.append(evaluate_candidate(program, point, workload, device, mode, scratch))

    best = _best_of(evaluated)
    if best.oom:
        raise MemoryError(
            f"every candidate of the design space exceeds {device.name} memory for workload {workload.name}"
        )

    if measure_top_k > 0 and graph is not None:
        ranked = sorted(
            (candidate for candidate in evaluated if not candidate.oom),
            key=lambda candidate: candidate.estimated_ms,
        )[:measure_top_k]
        for candidate in ranked:
            result = compile_program(program, candidate.options, cache=scratch)
            candidate.measured_ms = measure_candidate_ms(
                result, graph, mode=mode, repeats=measure_repeats
            )
        best = min(ranked, key=lambda candidate: candidate.measured_ms)

    key = make_tuning_key(
        program, graph, workload.in_dim, workload.out_dim, device.name, mode, workload=workload
    )
    return TuningResult(
        key=key,
        workload_name=workload.name,
        mode=mode,
        device_name=device.name,
        best=best,
        candidates=evaluated,
        search=search,
    )


# ----------------------------------------------------------------------
def tune_program(
    program: InterOpProgram,
    graph: Optional[HeteroGraph] = None,
    workload=None,
    base_options: Optional[CompilerOptions] = None,
    space: Optional[TuningSpace] = None,
    device: DeviceSpec = RTX_3090,
    mode: str = "inference",
    search: str = "staged",
    db: Optional[TuningDatabase] = None,
    measure_top_k: int = 0,
    measure_repeats: int = 3,
) -> TuningResult:
    """Tune a program, consulting and updating the tuning database.

    A database hit replays the stored winner without re-searching (the
    replayed result carries ``db_hit=True`` and an empty candidate list):
    the stored *searched* axes (:data:`TUNED_FIELDS`) are applied onto the
    caller's ``base_options``, so non-searched switches always follow the
    caller; a custom ``space`` does not invalidate stored winners.  Replayed
    winners are re-checked against the current workload's footprint — graphs
    share entries per *schema*, so a winner tuned on a small instance that
    would OOM on the instance at hand triggers a fresh search instead of
    being replayed.  A miss runs :func:`search_design_space` and persists
    the winner.  Either ``graph`` or an explicit ``workload`` must be
    provided; with both, the workload prices candidates and the graph
    enables measured validation.
    """
    if mode not in ("inference", "training"):
        raise ValueError(f"unknown tuning mode {mode!r}")
    base = (base_options or CompilerOptions()).with_(optimization_level=None)
    if mode == "training" and not base.emit_backward:
        raise ValueError("training-mode tuning requires base options with emit_backward=True")
    explicit_workload = workload is not None
    if workload is None:
        if graph is None:
            raise ValueError("tune_program needs a graph or an explicit workload")
        from repro.evaluation.workload import WorkloadSpec  # local: evaluation sits above tuner

        workload = WorkloadSpec.from_graph(graph, in_dim=program.in_dim, out_dim=program.out_dim)
    db = db if db is not None else default_tuning_database()
    # Graph-derived workloads share one entry per schema (the serving
    # pattern); an explicitly supplied workload also scopes the key, so
    # tuning the same schema against different pricing workloads cannot
    # collide on one record.
    key = make_tuning_key(
        program,
        graph,
        workload.in_dim,
        workload.out_dim,
        device.name,
        mode,
        workload=workload if explicit_workload else None,
    )
    record = db.lookup(key)
    if record is not None:
        replayed = evaluate_candidate(
            program, apply_tuned_fields(base, record.compiler_options()), workload, device, mode
        )
        # The stored measured_ms is wall-clock from whatever instance ran the
        # original search; it is not attached here because estimated_ms is
        # re-priced for the workload at hand and the pair must stay coherent.
        if not replayed.oom:
            return TuningResult(
                key=key,
                workload_name=workload.name,
                mode=mode,
                device_name=device.name,
                best=replayed,
                candidates=[],
                search=record.search,
                db_hit=True,
            )
    result = search_design_space(
        program,
        workload,
        base_options=base,
        space=space,
        device=device,
        mode=mode,
        search=search,
        graph=graph,
        measure_top_k=measure_top_k,
        measure_repeats=measure_repeats,
    )
    result.key = key
    db.store(key, record_from_search(result))
    return result


def tune_model(
    model: str,
    graph: Optional[HeteroGraph] = None,
    in_dim: int = 64,
    out_dim: int = 64,
    **kwargs,
) -> TuningResult:
    """Convenience wrapper: build a named model's program and tune it."""
    from repro.models import build_program  # local import to avoid a cycle

    program = build_program(model, in_dim=in_dim, out_dim=out_dim)
    return tune_program(program, graph=graph, **kwargs)


def resolve_tuned_options(
    program: InterOpProgram,
    graph: Optional[HeteroGraph] = None,
    base_options: Optional[CompilerOptions] = None,
    **kwargs,
) -> CompilerOptions:
    """Resolve ``optimization_level="auto"`` to concrete compiler options.

    Used by ``compile_model(..., tune=True)``: returns the winning
    configuration for the (program, schema, dims, device, mode) key — from
    the tuning database when previously searched, otherwise by searching now.
    The returned options always have ``optimization_level=None`` and inherit
    every non-searched switch from ``base_options``.
    """
    result = tune_program(program, graph=graph, base_options=base_options, **kwargs)
    return result.options
