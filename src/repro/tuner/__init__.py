"""Cost-model-guided autotuner over the compilation design space.

The paper decouples model semantics from data layout and schedule; this
package searches the resulting design space — compact vs. edge-space
materialization, linear operator reordering, elementwise fusion /
kernel merging, and per-template schedules — scoring every candidate with
the shared roofline cost model and persisting winners in an on-disk tuning
database keyed like the compilation cache (program fingerprint × graph
schema × dimensions × device × mode).

Entry points:

* ``compile_model(..., tune=True)`` or
  ``CompilerOptions(optimization_level="auto")`` — transparent frontend use.
* :func:`tune_model` / :func:`tune_program` — explicit tuning, returning the
  full :class:`TuningResult` leaderboard.
* :func:`search_design_space` — one raw search, no database involvement.
"""

from repro.tuner.assignment import beam_search_assignment
from repro.tuner.autotuner import (
    SEARCH_STRATEGIES,
    TUNED_FIELDS,
    CandidateEvaluation,
    TuningResult,
    apply_tuned_fields,
    clear_search_compile_cache,
    evaluate_candidate,
    resolve_tuned_options,
    search_design_space,
    tune_model,
    tune_program,
)
from repro.tuner.database import (
    DB_PATH_ENV,
    TuningDatabase,
    TuningRecord,
    clear_tuning_database,
    default_db_path,
    default_tuning_database,
)
from repro.tuner.measure import measure_candidate_ms
from repro.tuner.space import TuningSpace

__all__ = [
    "SEARCH_STRATEGIES",
    "TUNED_FIELDS",
    "apply_tuned_fields",
    "CandidateEvaluation",
    "TuningResult",
    "TuningSpace",
    "TuningDatabase",
    "TuningRecord",
    "beam_search_assignment",
    "DB_PATH_ENV",
    "clear_search_compile_cache",
    "clear_tuning_database",
    "default_db_path",
    "default_tuning_database",
    "evaluate_candidate",
    "measure_candidate_ms",
    "resolve_tuned_options",
    "search_design_space",
    "tune_model",
    "tune_program",
]
