"""Measured validation: run top-ranked candidates on the python backend.

The roofline cost model ranks the whole design space in microseconds per
candidate; measurement is reserved for confirming the top few candidates on a
*concrete* graph, where schedule-invariant effects the model abstracts away
(interpreter overhead per kernel launch, allocation behaviour, fused-program
dispatch) actually show up.  Numbers are wall-clock milliseconds of the
generated Python kernels — meaningful relative to each other, not to CUDA.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

import numpy as np

from repro.runtime.module import CompiledRGNNModule

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.frontend.compiler import CompilationResult
    from repro.graph.hetero_graph import HeteroGraph


def measure_candidate_ms(
    result: "CompilationResult",
    graph: "HeteroGraph",
    mode: str = "inference",
    repeats: int = 3,
    seed: int = 0,
) -> float:
    """Best wall-clock milliseconds of one pass of a compiled candidate.

    Args:
        result: the candidate's compilation result.
        graph: concrete graph to bind and run on.
        mode: ``"inference"`` (forward only) or ``"training"`` (forward +
            backward, requiring the candidate to have backward kernels).
        repeats: timed repetitions; the minimum is reported.
        seed: parameter/feature RNG seed (identical across candidates so
            every candidate runs the same numerical workload).
    """
    if mode not in ("inference", "training"):
        raise ValueError(f"unknown tuning mode {mode!r}")
    module = CompiledRGNNModule(result.plan, result.generated, graph, seed=seed)
    rng = np.random.default_rng(seed + 1)
    features = rng.standard_normal((graph.num_nodes, result.program.in_dim))
    outputs = module.forward(features)  # warm-up; also builds the environment
    output_grads: Dict[str, np.ndarray] = {}
    if mode == "training":
        if not result.plan.backward_kernels:
            raise ValueError("training-mode measurement needs a plan compiled with emit_backward")
        output_grads = {name: np.ones_like(value) for name, value in outputs.items()}
    seconds = module.executor.timed_run(
        module._last_env,
        module.ctx,
        output_grads=output_grads if mode == "training" else None,
        repeats=repeats,
    )
    return seconds * 1e3
