"""On-disk tuning database: persisted winners of past design-space searches.

Entries are keyed the same way as the PR-1 compilation cache — structural
program fingerprint × graph-schema fingerprint × feature dimensions × device ×
tuning mode (see :func:`repro.frontend.cache.make_tuning_key`) — so a second
``compile_model(..., tune=True)`` for the same key replays the stored winner
without re-searching, across processes.

The default database lives at ``~/.cache/repro/tuning_db.json`` (override
with the ``REPRO_TUNING_DB`` environment variable); pass an explicit path —
or ``path=None`` for a purely in-memory database — to keep tests and studies
isolated.  Writes are atomic (temp file + rename), and unreadable or
version-mismatched files are treated as empty rather than crashing the
compile path.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from repro.frontend.config import CompilerOptions

#: Environment variable overriding the default on-disk location.
DB_PATH_ENV = "REPRO_TUNING_DB"

#: Bumped whenever the record layout changes; older files are ignored.
DB_FORMAT_VERSION = 1


def default_db_path() -> Path:
    """The on-disk location of the process-default tuning database."""
    override = os.environ.get(DB_PATH_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "tuning_db.json"


@dataclass
class TuningRecord:
    """The persisted winner of one design-space search.

    Attributes:
        options: :meth:`CompilerOptions.to_dict` of the winning configuration.
        estimated_ms: its cost-model time on the tuned workload.
        measured_ms: wall-clock milliseconds of the python backend, when the
            search validated the top candidates by measurement.
        candidates_evaluated: how many design-space points the search scored.
        search: search strategy (``"staged"`` or ``"exhaustive"``).
        created_at: UNIX timestamp of the search.
    """

    options: Dict[str, object]
    estimated_ms: float
    measured_ms: Optional[float] = None
    candidates_evaluated: int = 0
    search: str = "staged"
    created_at: float = 0.0

    def compiler_options(self) -> CompilerOptions:
        """The winning configuration as a :class:`CompilerOptions`."""
        return CompilerOptions.from_dict(dict(self.options))


@dataclass
class TuningDBStats:
    """Lookup/store counters of one :class:`TuningDatabase`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


class TuningDatabase:
    """Thread-safe, optionally disk-backed map from tuning keys to records."""

    def __init__(self, path: Optional[Union[str, Path]] = None):
        self.path = Path(path) if path is not None else None
        self._records: Dict[str, TuningRecord] = {}
        self.stats = TuningDBStats()
        self._lock = threading.Lock()
        if self.path is not None and self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    def lookup(self, key: str) -> Optional[TuningRecord]:
        """Return the stored record for ``key``, recording a hit or miss."""
        with self._lock:
            record = self._records.get(key)
            if record is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
            return record

    def store(self, key: str, record: TuningRecord) -> TuningRecord:
        """Store (and persist, when disk-backed) one search winner."""
        with self._lock:
            self._records[key] = record
            self.stats.stores += 1
            if self.path is not None:
                self._save()
            return record

    def clear(self) -> None:
        """Drop every record; a disk-backed database also deletes its file."""
        with self._lock:
            self._records.clear()
            self.stats = TuningDBStats()
            if self.path is not None and self.path.exists():
                self.path.unlink()

    def __len__(self) -> int:
        return len(self._records)

    def keys(self):
        return list(self._records)

    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError):
            return
        if not isinstance(payload, dict) or payload.get("version") != DB_FORMAT_VERSION:
            return
        for key, raw in payload.get("records", {}).items():
            try:
                record = TuningRecord(**raw)
                record.compiler_options()  # validates the option fields
            except (TypeError, ValueError):
                continue
            self._records[key] = record

    def _save(self) -> None:
        payload = {
            "version": DB_FORMAT_VERSION,
            "records": {key: asdict(record) for key, record in self._records.items()},
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        temp = self.path.with_name(self.path.name + ".tmp")
        temp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        os.replace(temp, self.path)


# ----------------------------------------------------------------------
_GLOBAL_DB: Optional[TuningDatabase] = None
_GLOBAL_DB_LOCK = threading.Lock()


def default_tuning_database() -> TuningDatabase:
    """The process-default, disk-backed tuning database (lazily created).

    Re-resolved whenever :func:`default_db_path` changes, so setting
    ``REPRO_TUNING_DB`` after a first use redirects subsequent lookups
    instead of silently reusing the previously resolved location.
    """
    global _GLOBAL_DB
    with _GLOBAL_DB_LOCK:
        path = default_db_path()
        if _GLOBAL_DB is None or _GLOBAL_DB.path != path:
            _GLOBAL_DB = TuningDatabase(path)
        return _GLOBAL_DB


def clear_tuning_database() -> None:
    """Drop every persisted tuning entry (and the on-disk file)."""
    default_tuning_database().clear()


def record_from_search(result) -> TuningRecord:
    """Build the persisted record from a finished :class:`TuningResult`."""
    best = result.best
    return TuningRecord(
        options=best.options.to_dict(),
        estimated_ms=best.estimated_ms,
        measured_ms=best.measured_ms,
        candidates_evaluated=len(result.candidates),
        search=result.search,
        created_at=time.time(),
    )
