"""Tests of the Python, CUDA-text, and host-code backends."""

import numpy as np

from repro.frontend.compiler import compile_program
from repro.frontend.config import CONFIGURATIONS, CompilerOptions
from repro.ir.codegen import generate_host_source, get_backend

#: Registry entry points used throughout (the deprecated module-level
#: aliases are covered by tests/test_backend_registry.py).
_interp = get_backend("python-interp")
_cuda = get_backend("cuda-emit")
from repro.ir.inter_op import lower_program
from repro.ir.inter_op.passes import default_pipeline
from repro.models import build_program


class TestPythonBackend:
    def test_generated_module_has_one_function_per_kernel(self):
        plan = lower_program(build_program("rgat"))
        module = _interp.generate(plan)
        assert set(module.forward_functions) == {k.name for k in plan.forward_kernels}
        assert set(module.backward_functions) == {k.name for k in plan.backward_kernels}
        assert module.line_count() > 100

    def test_generated_source_mentions_access_schemes(self):
        plan = lower_program(default_pipeline(True, False).run(build_program("rgat")))
        module = _interp.generate(plan)
        assert "ctx.unique_src" in module.source
        assert "ctx.unique_etype_ptr" in module.source
        assert "np.add.at" in module.source  # atomic-style accumulation in backward

    def test_generated_source_is_deterministic(self):
        plan = lower_program(build_program("rgcn"))
        a = _interp.generate(plan).source
        b = _interp.generate(plan).source
        assert a == b

    def test_generated_functions_are_callable(self, small_graph):
        from repro.runtime.context import GraphContext
        plan = lower_program(build_program("rgcn", in_dim=4, out_dim=4))
        module = _interp.generate(plan)
        ctx = GraphContext.from_graph(small_graph)
        env = {
            "h": np.random.randn(small_graph.num_nodes, 4),
            "norm": np.ones(small_graph.num_edges),
            "W": np.random.randn(small_graph.num_edge_types, 4, 4),
            "W0": np.random.randn(4, 4),
        }
        for kernel in plan.forward_kernels:
            module.forward_functions[kernel.name](env, ctx)
        assert env["h_out"].shape == (small_graph.num_nodes, 4)


class TestCudaBackend:
    def test_cuda_source_contains_template_specialisations(self):
        plan = lower_program(build_program("rgat"))
        source = _cuda.generate(plan).source
        assert "__global__" in source
        assert "__shared__" in source
        assert "GEMM template instance" in source
        assert "traversal template instance" in source
        assert "atomicAdd" in source  # backward / aggregation kernels

    def test_cuda_source_reflects_compact_materialization(self):
        plan_u = lower_program(build_program("rgat"))
        plan_c = lower_program(default_pipeline(True, False).run(build_program("rgat")))
        assert "unique_row_idx[idxRow]" not in _cuda.generate(plan_u).source
        assert "unique_row_idx[idxRow]" in _cuda.generate(plan_c).source

    def test_cuda_source_grows_with_models(self):
        small = len(_cuda.generate(lower_program(build_program("rgcn"))).source.splitlines())
        large = len(_cuda.generate(lower_program(build_program("hgt"))).source.splitlines())
        assert large > small > 50


class TestHostBackend:
    def test_host_source_registers_every_kernel(self):
        plan = lower_program(build_program("hgt"))
        source = generate_host_source(plan)
        for kernel in plan.forward_kernels + plan.backward_kernels:
            assert f'"{kernel.name}"' in source
        assert "TORCH_LIBRARY_FRAGMENT" in source
        assert "backward" in source

    def test_host_source_collects_preprocessing(self):
        plan_c = lower_program(default_pipeline(True, False).run(build_program("rgat")))
        source = generate_host_source(plan_c)
        assert "presort edges by edge type" in source
        assert "unique (source node, edge type) mapping" in source

    def test_node_presorting_required_for_hgt(self):
        source = generate_host_source(lower_program(build_program("hgt")))
        assert "presort nodes by node type" in source


class TestCompilationResult:
    def test_line_counts_nonzero_for_all_artifacts(self):
        result = compile_program(build_program("rgat"), CONFIGURATIONS["C+R"])
        counts = result.generated_line_counts()
        assert counts["python_kernels"] > 100
        assert counts["cuda_kernels"] > 100
        assert counts["host_code"] > 50
        assert counts["input_program"] < 40

    def test_plan_name_includes_configuration_label(self):
        result = compile_program(build_program("rgcn"), CompilerOptions(compact_materialization=True))
        assert result.plan.name.endswith("_C")
