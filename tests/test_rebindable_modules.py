"""The compile→bind→execute split: schema-specialised modules, graph
bindings, parameter sharing, input validation, and the bucketed arena pool.
"""

import numpy as np
import pytest

from repro.frontend import CompilerOptions, compile_model
from repro.graph import GraphSchema, random_hetero_graph, sample_block
from repro.models import REFERENCE_CLASSES
from repro.runtime import ArenaPool, CompiledRGNNModule, MemoryPlanner, dim_bucket
from repro.runtime.context import GraphContext

DIM = 8


@pytest.fixture(scope="module")
def parent_graph():
    return random_hetero_graph(
        num_nodes=150, num_edges=800, num_node_types=3, num_edge_types=6,
        seed=21, name="bindparent",
    )


@pytest.fixture(scope="module")
def parent_features(parent_graph):
    return np.random.default_rng(4).standard_normal((parent_graph.num_nodes, DIM))


class TestGraphSchema:
    def test_schema_matches_and_validates(self, parent_graph):
        schema = GraphSchema.from_graph(parent_graph)
        assert schema.matches(parent_graph)
        sub = parent_graph.subgraph_by_edge_fraction(0.5, seed=1)
        assert schema.matches(sub)
        block = sample_block(parent_graph, [0, 10, 20])
        assert schema.matches(block.graph)

    def test_schema_rejects_different_vocabulary(self, parent_graph, small_graph):
        schema = GraphSchema.from_graph(parent_graph)
        assert not schema.matches(small_graph)
        with pytest.raises(ValueError, match="specialised for"):
            schema.validate_graph(small_graph)


class TestRebinding:
    def test_one_module_many_bindings_shared_parameters(self, parent_graph, parent_features):
        module = compile_model("rgat", parent_graph, in_dim=DIM, out_dim=DIM,
                               options=CompilerOptions(emit_backward=False), seed=9)
        sub = parent_graph.subgraph_by_edge_fraction(0.4, seed=2)
        binding = module.bind(sub)
        assert binding.module is module
        # Parameters live on the module: the binding reads the same objects.
        reference = REFERENCE_CLASSES["rgat"](sub, DIM, DIM, seed=9)
        reference.load_parameters({k: p.data for k, p in module.parameters_by_name.items()})
        out = binding.forward(parent_features)
        ref = reference.forward(parent_features)
        key = next(iter(out))
        np.testing.assert_allclose(out[key], ref[key].data, atol=1e-8)
        # The default binding still answers for the parent graph.
        assert module.graph is parent_graph
        assert module.forward(parent_features)[key].shape == (parent_graph.num_nodes, DIM)

    def test_bind_rejects_schema_mismatch(self, parent_graph, small_graph):
        module = compile_model("rgcn", parent_graph, in_dim=DIM, out_dim=DIM)
        with pytest.raises(ValueError, match="specialised for"):
            module.bind(small_graph)

    def test_unbound_module_raises_until_bound(self, parent_graph):
        bound = compile_model("rgcn", parent_graph, in_dim=DIM, out_dim=DIM)
        unbound = CompiledRGNNModule.for_schema(
            bound.plan, bound.generated, GraphSchema.from_graph(parent_graph), seed=1
        )
        with pytest.raises(RuntimeError, match="not bound"):
            unbound.forward(np.zeros((parent_graph.num_nodes, DIM)))
        binding = unbound.bind(parent_graph)
        out = binding.forward(np.zeros((parent_graph.num_nodes, DIM)))
        assert next(iter(out.values())).shape == (parent_graph.num_nodes, DIM)

    def test_backward_through_binding_accumulates_into_module(self, parent_graph, parent_features):
        module = compile_model("rgcn", parent_graph, in_dim=DIM, out_dim=DIM, seed=5)
        sub = parent_graph.subgraph_by_edge_fraction(0.5, seed=3)
        reference = REFERENCE_CLASSES["rgcn"](sub, DIM, DIM, seed=5)
        reference.load_parameters({k: p.data for k, p in module.parameters_by_name.items()})

        binding = module.bind(sub)
        out = binding.forward(parent_features)
        key = next(iter(out))
        upstream = np.ones_like(out[key])
        grads = binding.backward({key: upstream})

        ref_out = reference.forward(parent_features)
        ref_out[key].backward(upstream)
        ref_params = reference.named_parameter_dict()
        for name, grad in grads.items():
            np.testing.assert_allclose(grad, ref_params[name].grad, atol=1e-7, err_msg=name)
            # Accumulated into the module's (shared) parameters.
            np.testing.assert_allclose(module.parameters_by_name[name].grad, grad, atol=1e-12)


class TestInputValidation:
    """Satellite: mismatched features fail fast with a clear error."""

    @pytest.fixture(scope="class")
    def module(self, parent_graph):
        return compile_model("rgat", parent_graph, in_dim=DIM, out_dim=DIM,
                             options=CompilerOptions(emit_backward=False))

    def test_wrong_row_count(self, module, parent_graph):
        with pytest.raises(ValueError, match="feature rows"):
            module.forward(np.zeros((parent_graph.num_nodes - 3, DIM)))

    def test_wrong_feature_dim(self, module, parent_graph):
        with pytest.raises(ValueError, match="feature dimension"):
            module.forward(np.zeros((parent_graph.num_nodes, DIM + 1)))

    def test_wrong_rank(self, module, parent_graph):
        with pytest.raises(ValueError, match="2-D"):
            module.forward(np.zeros(parent_graph.num_nodes))

    def test_non_numeric_dtype(self, module, parent_graph):
        with pytest.raises(TypeError, match="numeric"):
            module.forward(np.full((parent_graph.num_nodes, DIM), "x", dtype=object))
        with pytest.raises(TypeError, match="numeric"):
            module.forward(np.zeros((parent_graph.num_nodes, DIM), dtype=bool))

    def test_complex_dtype(self, module, parent_graph):
        with pytest.raises(TypeError, match="real-valued"):
            module.forward(np.zeros((parent_graph.num_nodes, DIM), dtype=np.complex128))

    def test_error_names_the_bound_graph(self, module, parent_graph):
        block = sample_block(parent_graph, [0, 1, 2])
        binding = module.bind(block.graph)
        with pytest.raises(ValueError, match=block.graph.name.replace("[", r"\[").replace("]", r"\]")):
            binding.forward(np.zeros((block.num_nodes + 1, DIM)))

    def test_integer_features_are_accepted_and_upcast(self, module, parent_graph):
        out = module.forward(np.zeros((parent_graph.num_nodes, DIM), dtype=np.int32))
        assert next(iter(out.values())).dtype == np.float64


class TestArenaPool:
    def test_dim_bucket_is_power_of_two_ceiling(self):
        assert dim_bucket(0) == 0
        assert dim_bucket(1) == 1
        assert dim_bucket(2) == 2
        assert dim_bucket(3) == 4
        assert dim_bucket(1000) == 1024
        assert dim_bucket(1024) == 1024

    def test_same_bucket_bindings_share_one_arena(self, parent_graph, parent_features):
        module = compile_model("rgat", parent_graph, in_dim=DIM, out_dim=DIM,
                               options=CompilerOptions(emit_backward=False))
        pool = module.arena_pool
        assert pool is not None
        # Find two differently-sized blocks that land in one size bucket.
        rng = np.random.default_rng(3)
        by_bucket = {}
        pair = None
        for index in range(32):
            seeds = rng.choice(parent_graph.num_nodes, size=4, replace=False)
            block = sample_block(parent_graph, seeds, fanouts=(2,), seed=index)
            bucket = (dim_bucket(block.num_nodes), dim_bucket(block.num_edges),
                      dim_bucket(block.graph.compaction.num_unique))
            other = by_bucket.setdefault(bucket, block)
            if other is not block and other.num_nodes != block.num_nodes:
                pair = (other, block)
                break
        assert pair is not None, "no same-bucket block pair found in 32 draws"
        first, second = pair
        baseline = pool.stats.lookups
        binding_a = module.bind(first.graph)
        binding_b = module.bind(second.graph)
        assert pool.stats.lookups == baseline + 2
        assert pool.stats.hits >= 1
        assert binding_a.arena is binding_b.arena  # pooled slabs, distinct views
        out_a = binding_a.forward(first.gather_features(parent_features))
        out_b = binding_b.forward(second.gather_features(parent_features))
        key = next(iter(out_a))
        assert out_a[key].shape[0] == first.num_nodes
        assert out_b[key].shape[0] == second.num_nodes
        # Re-running A after B still yields A-shaped results (views re-bound).
        again = binding_a.forward(first.gather_features(parent_features))
        assert again[key].shape[0] == first.num_nodes

    def test_lru_bound_evicts_oldest_bucket(self, parent_graph):
        plan_module = compile_model("rgcn", parent_graph, in_dim=DIM, out_dim=DIM,
                                    options=CompilerOptions(emit_backward=False))
        planner = MemoryPlanner(plan_module.plan)
        pool = ArenaPool(max_arenas=2)
        fractions = [0.12, 0.3, 0.6, 1.0]
        for fraction in fractions:
            sub = parent_graph.subgraph_by_edge_fraction(fraction, seed=1)
            pool.lease(planner, GraphContext.cached(sub))
        assert pool.live_arenas <= 2
        assert pool.stats.evictions >= 1
        assert pool.pooled_bytes() > 0

    def test_pool_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ArenaPool(max_arenas=0)

    def test_default_binding_keeps_exact_private_arena(self, parent_graph):
        """The classic one-graph path must not pay bucket-rounded slabs."""
        module = compile_model("rgcn", parent_graph, in_dim=DIM, out_dim=DIM,
                               options=CompilerOptions(emit_backward=False))
        assert module.arena_pool.stats.lookups == 0  # pool untouched
        exact = MemoryPlanner(module.plan).build_arena(GraphContext.cached(parent_graph))
        assert module.arena.arena_bytes() == exact.arena_bytes()
        pooled = module.bind(parent_graph)  # explicit rebinds do use the pool
        assert module.arena_pool.stats.lookups == 1
        assert pooled.arena is not module.arena
        assert pooled.arena.arena_bytes() >= module.arena.arena_bytes()

    def test_stale_backward_on_shared_pooled_arena_raises(self, parent_graph, parent_features):
        """Interleaved forward/backward across same-arena bindings must error,
        not silently corrupt gradients; sequential fwd+bwd pairs stay exact."""
        module = compile_model("rgcn", parent_graph, in_dim=DIM, out_dim=DIM, seed=7)
        sub_a = parent_graph.subgraph_by_edge_fraction(0.9, seed=1)
        sub_b = parent_graph.subgraph_by_edge_fraction(0.85, seed=2)
        binding_a = module.bind(sub_a)
        binding_b = module.bind(sub_b)
        if binding_a.arena is not binding_b.arena:
            pytest.skip("subgraphs landed in different buckets")
        out_a = binding_a.forward(parent_features)
        key = next(iter(out_a))
        binding_b.forward(parent_features)  # overwrites the shared slabs
        with pytest.raises(RuntimeError, match="stale"):
            binding_a.backward({key: np.ones_like(out_a[key])})
        # Sequential pairs (the supported gradient-accumulation pattern) match
        # the reference on each subgraph.
        for sub, binding in [(sub_a, binding_a), (sub_b, binding_b)]:
            module.zero_grad()
            reference = REFERENCE_CLASSES["rgcn"](sub, DIM, DIM, seed=7)
            reference.load_parameters({k: p.data for k, p in module.parameters_by_name.items()})
            out = binding.forward(parent_features)
            grads = binding.backward({key: np.ones_like(out[key])})
            ref_out = reference.forward(parent_features)
            ref_out[key].backward(np.ones_like(out[key]))
            ref_params = reference.named_parameter_dict()
            for name, grad in grads.items():
                np.testing.assert_allclose(grad, ref_params[name].grad, atol=1e-7, err_msg=name)

    def test_arena_pool_reuse_during_serving_blocks(self, parent_graph, parent_features):
        module = compile_model("hgt", parent_graph, in_dim=DIM, out_dim=DIM,
                               options=CompilerOptions(emit_backward=False))
        rng = np.random.default_rng(0)
        for index in range(6):
            seeds = rng.choice(parent_graph.num_nodes, size=4, replace=False)
            block = sample_block(parent_graph, seeds, fanouts=(3,), seed=index)
            binding = module.bind(block.graph)
            binding.forward(block.gather_features(parent_features))
        pool = module.arena_pool
        # After warmup the block-size buckets repeat: the pool must be hitting.
        assert pool.stats.hits >= 3
        assert pool.live_arenas <= pool.max_arenas
