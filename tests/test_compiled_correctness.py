"""End-to-end numerical correctness of the generated kernels.

For every model and every optimization configuration the compiled module's
forward output and parameter gradients must match the reference
implementation built on the autograd tensor substrate.
"""

import numpy as np
import pytest

from repro.frontend import compile_model
from repro.frontend.config import CONFIGURATIONS
from repro.models import MODEL_NAMES, REFERENCE_CLASSES

DIM = 8


def _build_pair(model, graph, options, seed=7):
    module = compile_model(model, graph, in_dim=DIM, out_dim=DIM, options=options, seed=seed)
    reference = REFERENCE_CLASSES[model](graph, DIM, DIM, seed=seed)
    reference.load_parameters({name: p.data for name, p in module.parameters_by_name.items()})
    return module, reference


@pytest.fixture(scope="module")
def features(small_graph):
    return np.random.default_rng(0).standard_normal((small_graph.num_nodes, DIM))


class TestForwardCorrectness:
    @pytest.mark.parametrize("model", MODEL_NAMES)
    @pytest.mark.parametrize("config", ["U", "C", "R", "C+R"])
    def test_forward_matches_reference(self, model, config, small_graph, features):
        module, reference = _build_pair(model, small_graph, CONFIGURATIONS[config])
        out = module.forward(features)
        ref = reference.forward(features)
        key = next(iter(out))
        np.testing.assert_allclose(out[key], ref[key].data, atol=1e-8)

    @pytest.mark.parametrize("model", MODEL_NAMES)
    def test_forward_on_skewed_graph(self, model, medium_graph):
        feats = np.random.default_rng(1).standard_normal((medium_graph.num_nodes, DIM))
        module, reference = _build_pair(model, medium_graph, CONFIGURATIONS["C+R"])
        out = module.forward(feats)
        ref = reference.forward(feats)
        key = next(iter(out))
        np.testing.assert_allclose(out[key], ref[key].data, atol=1e-8)

    def test_forward_rejects_wrong_feature_count(self, small_graph, features):
        module, _ = _build_pair("rgcn", small_graph, CONFIGURATIONS["U"])
        with pytest.raises(ValueError):
            module.forward(features[:-1])

    def test_forward_is_deterministic(self, small_graph, features):
        module, _ = _build_pair("rgat", small_graph, CONFIGURATIONS["C"])
        a = module.forward(features)["out"]
        b = module.forward(features)["out"]
        np.testing.assert_allclose(a, b)


class TestBackwardCorrectness:
    @pytest.mark.parametrize("model", MODEL_NAMES)
    @pytest.mark.parametrize("config", ["U", "C+R"])
    def test_parameter_gradients_match_reference(self, model, config, small_graph, features):
        module, reference = _build_pair(model, small_graph, CONFIGURATIONS[config])
        out = module.forward(features)
        key = next(iter(out))
        upstream = np.random.default_rng(2).standard_normal(out[key].shape)
        grads = module.backward({key: upstream})

        ref_out = reference.forward(features)
        ref_out[key].backward(upstream)
        ref_params = reference.named_parameter_dict()
        assert set(grads) == set(module.parameters_by_name)
        for name, grad in grads.items():
            assert ref_params[name].grad is not None, name
            np.testing.assert_allclose(grad, ref_params[name].grad, atol=1e-7, err_msg=name)

    def test_backward_before_forward_raises(self, small_graph):
        module, _ = _build_pair("rgcn", small_graph, CONFIGURATIONS["U"])
        with pytest.raises(RuntimeError):
            module.backward({"h_out": np.zeros((small_graph.num_nodes, DIM))})

    def test_gradients_accumulate_and_zero_grad_clears(self, small_graph, features):
        module, _ = _build_pair("rgcn", small_graph, CONFIGURATIONS["U"])
        out = module.forward(features)["h_out"]
        module.backward({"h_out": np.ones_like(out)})
        first = module.parameters_by_name["W"].grad.copy()
        module.forward(features)
        module.backward({"h_out": np.ones_like(out)})
        np.testing.assert_allclose(module.parameters_by_name["W"].grad, 2 * first, atol=1e-9)
        module.zero_grad()
        assert module.parameters_by_name["W"].grad is None


class TestCompiledTraining:
    def test_training_loop_reduces_loss(self, small_graph, features):
        """A few SGD steps through generated forward+backward kernels reduce the loss."""
        from repro.tensor import optim

        module, _ = _build_pair("rgcn", small_graph, CONFIGURATIONS["C+R"])
        rng = np.random.default_rng(3)
        labels = rng.integers(0, DIM, size=small_graph.num_nodes)
        optimizer = optim.SGD(module.parameters(), lr=0.05)

        def loss_and_grad(logits):
            shifted = logits - logits.max(axis=1, keepdims=True)
            log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
            n = logits.shape[0]
            loss = -log_probs[np.arange(n), labels].mean()
            probs = np.exp(log_probs)
            grad = probs
            grad[np.arange(n), labels] -= 1.0
            return loss, grad / n

        losses = []
        for _ in range(15):
            optimizer.zero_grad()
            module.zero_grad()
            logits = module.forward(features)["h_out"]
            loss, grad = loss_and_grad(logits)
            module.backward({"h_out": grad})
            optimizer.step()
            losses.append(loss)
        assert losses[-1] < losses[0]

    def test_module_summary_and_source(self, small_graph):
        module, _ = _build_pair("hgt", small_graph, CONFIGURATIONS["C+R"])
        summary = module.summary()
        assert summary["num_parameters"] == module.num_parameters() > 0
        assert summary["compaction_enabled"] is True
        assert "def kernel_gemm_1" in module.generated_source()
