"""Tests of the heterogeneous graph substrate (HeteroGraph, adjacency, generators)."""

import numpy as np
import pytest

from repro.graph import HeteroGraph, random_hetero_graph
from repro.graph.adjacency import AdjacencyAccessor, COOAdjacency, build_segment_pointers
from repro.graph.generators import random_features, random_labels


class TestHeteroGraphConstruction:
    def test_counts_and_offsets(self, tiny_graph):
        assert tiny_graph.num_nodes == 6
        assert tiny_graph.num_edges == 7
        assert tiny_graph.num_node_types == 2
        assert tiny_graph.num_edge_types == 2
        assert tiny_graph.node_type_offset("paper") == 3

    def test_node_type_ids_are_segmented(self, tiny_graph):
        ids = tiny_graph.node_type_ids
        assert list(ids) == [0, 0, 0, 1, 1, 1]

    def test_global_edge_arrays_respect_offsets(self, tiny_graph):
        writes_id = tiny_graph.edge_type_id(("author", "writes", "paper"))
        mask = tiny_graph.edge_type == writes_id
        # writes edges: authors (global 0..2) -> papers (global 3..5)
        assert tiny_graph.edge_src[mask].max() <= 2
        assert tiny_graph.edge_dst[mask].min() >= 3

    def test_invalid_edges_rejected(self):
        with pytest.raises(ValueError):
            HeteroGraph({"a": 2}, {("a", "r", "a"): (np.array([0, 5]), np.array([0, 1]))})
        with pytest.raises(ValueError):
            HeteroGraph({"a": 2}, {("a", "r", "b"): (np.array([0]), np.array([0]))})
        with pytest.raises(ValueError):
            HeteroGraph({"a": 2}, {("a", "r", "a"): (np.array([0, 1]), np.array([0]))})
        with pytest.raises(ValueError):
            HeteroGraph({}, {})

    def test_degrees_and_normalization(self, tiny_graph):
        assert tiny_graph.in_degrees().sum() == tiny_graph.num_edges
        assert tiny_graph.out_degrees().sum() == tiny_graph.num_edges
        norm = tiny_graph.degree_normalization()
        assert norm.shape == (tiny_graph.num_edges,)
        assert np.all(norm > 0) and np.all(norm <= 1.0)

    def test_statistics_keys(self, small_graph):
        stats = small_graph.statistics()
        for key in ("num_nodes", "num_edges", "num_node_types", "num_edge_types",
                    "average_degree", "entity_compaction_ratio"):
            assert key in stats


class TestHeteroGraphTransforms:
    def test_add_reverse_edges_doubles_relations(self, tiny_graph):
        reversed_graph = tiny_graph.add_reverse_edges()
        assert reversed_graph.num_edge_types == 2 * tiny_graph.num_edge_types
        assert reversed_graph.num_edges == 2 * tiny_graph.num_edges

    def test_add_self_loops_adds_per_node_type_relations(self, tiny_graph):
        looped = tiny_graph.add_self_loops()
        assert looped.num_edge_types == tiny_graph.num_edge_types + tiny_graph.num_node_types
        assert looped.num_edges == tiny_graph.num_edges + tiny_graph.num_nodes

    def test_subgraph_by_edge_fraction(self, medium_graph):
        sub = medium_graph.subgraph_by_edge_fraction(0.5, seed=1)
        assert sub.num_edges < medium_graph.num_edges
        assert sub.num_edges >= medium_graph.num_edge_types  # at least one edge per relation
        assert sub.num_nodes == medium_graph.num_nodes
        with pytest.raises(ValueError):
            medium_graph.subgraph_by_edge_fraction(0.0)


class TestAdjacency:
    def test_segment_pointers_sorted_and_cover_all(self, small_graph):
        seg = small_graph.edge_segments
        assert seg.offsets[-1] == small_graph.num_edges
        sorted_types = small_graph.edge_type[seg.permutation]
        assert np.all(np.diff(sorted_types) >= 0)
        for t in range(small_graph.num_edge_types):
            start, end = seg.segment(t)
            assert np.all(sorted_types[start:end] == t)
            assert seg.segment_size(t) == end - start

    def test_segment_inverse_permutation(self):
        seg = build_segment_pointers(np.array([2, 0, 1, 0]), 3)
        inverse = seg.inverse_permutation()
        np.testing.assert_array_equal(seg.permutation[inverse], np.arange(4))

    def test_csr_by_dst_incoming_edges(self, small_graph):
        csr = small_graph.csr_by_dst
        assert csr.num_edges == small_graph.num_edges
        for node in range(0, small_graph.num_nodes, 7):
            incoming = csr.incoming_edges(node)
            assert np.all(small_graph.edge_dst[incoming] == node)
        assert csr.indptr[-1] == small_graph.num_edges

    def test_coo_accessors(self, tiny_graph):
        coo = tiny_graph.coo
        assert coo.num_edges == tiny_graph.num_edges
        assert coo.get_src(0) == tiny_graph.edge_src[0]
        assert coo.get_dst(0) == tiny_graph.edge_dst[0]
        assert coo.get_etype(0) == tiny_graph.edge_type[0]

    def test_coo_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            COOAdjacency(np.array([0]), np.array([0, 1]), np.array([0]))

    def test_adjacency_accessor_costs(self):
        coo = AdjacencyAccessor.for_format("coo", num_nodes=1000)
        csr = AdjacencyAccessor.for_format("csr", num_nodes=1000)
        assert coo.lookups_per_edge == 3.0
        assert csr.lookups_per_edge > coo.lookups_per_edge  # binary search is dearer
        with pytest.raises(ValueError):
            AdjacencyAccessor.for_format("ell", num_nodes=10)


class TestGenerators:
    def test_generator_respects_requested_shape(self):
        graph = random_hetero_graph(100, 700, 4, 9, seed=5)
        assert graph.num_nodes == 100
        assert graph.num_edges == 700
        assert graph.num_node_types == 4
        assert graph.num_edge_types == 9
        assert all(count >= 1 for count in graph.relation_edge_counts())

    def test_generator_is_deterministic(self):
        a = random_hetero_graph(50, 200, 3, 5, seed=9)
        b = random_hetero_graph(50, 200, 3, 5, seed=9)
        np.testing.assert_array_equal(a.edge_src, b.edge_src)
        np.testing.assert_array_equal(a.edge_dst, b.edge_dst)

    def test_source_locality_lowers_compaction_ratio(self):
        loose = random_hetero_graph(200, 2000, 2, 4, seed=1, source_locality=0.0)
        tight = random_hetero_graph(200, 2000, 2, 4, seed=1, source_locality=0.9)
        assert tight.entity_compaction_ratio < loose.entity_compaction_ratio

    def test_generator_input_validation(self):
        with pytest.raises(ValueError):
            random_hetero_graph(2, 10, 5, 2)
        with pytest.raises(ValueError):
            random_hetero_graph(10, 1, 2, 5)
        with pytest.raises(ValueError):
            random_hetero_graph(10, 10, 0, 2)
        with pytest.raises(ValueError):
            random_hetero_graph(10, 10, 2, 2, source_locality=1.5)

    def test_random_features_and_labels(self, small_graph):
        feats = random_features(small_graph, 16, seed=0)
        labels = random_labels(small_graph, 4, seed=0)
        assert feats.shape == (small_graph.num_nodes, 16)
        assert labels.shape == (small_graph.num_nodes,)
        assert labels.max() < 4
