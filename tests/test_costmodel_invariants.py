"""Invariants of the roofline cost model the autotuner's ranking relies on.

The tuner trusts the cost model to order candidates; these tests pin the
properties that make that ordering trustworthy: monotonicity in work volume,
a hard floor at launch latency, bounded efficiency terms, schedule-model
neutrality at the default schedules, and fusion never being modeled as a
slowdown.
"""

import numpy as np
import pytest

from repro.evaluation.workload import WorkloadSpec
from repro.frontend.compiler import compile_program
from repro.frontend.config import CompilerOptions
from repro.gpu.costmodel import (
    KernelWork,
    _occupancy,
    estimate_kernel_time,
    gemm_schedule_efficiency,
    plan_execution_estimate,
    schedule_efficiency_factor,
    traversal_schedule_efficiency,
)
from repro.gpu.device import RTX_3090
from repro.ir.intra_op.schedule import (
    GemmSchedule,
    TraversalSchedule,
    gemm_schedule_variants,
    traversal_schedule_variants,
)
from repro.models import MODEL_NAMES, build_program

#: Grid of work shapes the parametrized invariants sweep over.
SHAPES = [(64, 64), (5000, 64), (1_000_000, 64), (16, 8), (250_000, 512)]
CATEGORIES = ["gemm", "traversal", "fallback"]


def _work(rows, cols, category="gemm", flops=1e9, bytes_read=1e8, bytes_written=1e7,
          launches=1, **kwargs):
    return KernelWork(
        name="k", category=category, flops=flops, bytes_read=bytes_read,
        bytes_written=bytes_written, launches=launches, rows=rows, cols=cols, **kwargs,
    )


class TestMonotonicity:
    @pytest.mark.parametrize("category", CATEGORIES)
    @pytest.mark.parametrize("rows,cols", SHAPES)
    def test_time_is_monotone_in_flops(self, category, rows, cols):
        times = [
            estimate_kernel_time(_work(rows, cols, category, flops=flops)).total_time
            for flops in (1e6, 1e8, 1e10, 1e12)
        ]
        assert times == sorted(times)

    @pytest.mark.parametrize("category", CATEGORIES)
    @pytest.mark.parametrize("rows,cols", SHAPES)
    def test_time_is_monotone_in_bytes(self, category, rows, cols):
        times = [
            estimate_kernel_time(_work(rows, cols, category, bytes_read=b)).total_time
            for b in (1e5, 1e7, 1e9, 1e11)
        ]
        assert times == sorted(times)

    def test_atomics_and_outer_products_never_speed_up(self):
        base = estimate_kernel_time(_work(5000, 64)).total_time
        assert estimate_kernel_time(_work(5000, 64, uses_atomics=True)).total_time >= base
        assert estimate_kernel_time(_work(5000, 64, has_outer_product=True)).total_time >= base


class TestLatencyFloor:
    @pytest.mark.parametrize("launches", [1, 2, 10, 1000])
    @pytest.mark.parametrize("rows,cols", SHAPES)
    def test_time_never_below_launch_latency_times_launches(self, launches, rows, cols):
        work = _work(rows, cols, flops=1.0, bytes_read=1.0, bytes_written=0.0, launches=launches)
        time = estimate_kernel_time(work).total_time
        assert time >= launches * RTX_3090.kernel_launch_overhead_us * 1e-6


class TestEfficiencyBounds:
    @pytest.mark.parametrize("rows,cols", SHAPES + [(1, 1), (10**9, 10**6)])
    def test_occupancy_stays_in_unit_interval(self, rows, cols):
        occupancy = _occupancy(_work(rows, cols), RTX_3090)
        assert 0.0 < occupancy <= 1.0

    @pytest.mark.parametrize("schedule", gemm_schedule_variants())
    @pytest.mark.parametrize("rows,cols", SHAPES)
    def test_gemm_schedule_factor_is_positive_and_finite(self, schedule, rows, cols):
        factor = gemm_schedule_efficiency(schedule, rows, cols)
        assert 0.0 < factor < 10.0

    @pytest.mark.parametrize("schedule", traversal_schedule_variants())
    @pytest.mark.parametrize("uses_atomics", [False, True])
    @pytest.mark.parametrize("rows,cols", SHAPES)
    def test_traversal_schedule_factor_is_positive_and_finite(self, schedule, uses_atomics, rows, cols):
        factor = traversal_schedule_efficiency(schedule, rows, uses_atomics)
        assert 0.0 < factor < 10.0


class TestScheduleNeutralityAtDefaults:
    """Default schedules must be exactly cost-neutral (paper figures unchanged)."""

    @pytest.mark.parametrize("rows,cols", SHAPES)
    def test_default_schedules_map_to_factor_one(self, rows, cols):
        assert gemm_schedule_efficiency(GemmSchedule(), rows, cols) == pytest.approx(1.0)
        assert traversal_schedule_efficiency(TraversalSchedule(), rows, True) == pytest.approx(1.0)
        assert traversal_schedule_efficiency(TraversalSchedule(), rows, False) == pytest.approx(1.0)

    @pytest.mark.parametrize("model", MODEL_NAMES)
    def test_default_plan_work_records_have_factor_one(self, model):
        program = build_program(model)
        plan = compile_program(program, CompilerOptions()).plan
        workload = WorkloadSpec.from_dataset("aifb")
        for kernel in plan.kernels("all"):
            assert schedule_efficiency_factor(kernel, workload) == pytest.approx(1.0)


class TestFusionNeverModeledSlower:
    """A fused kernel's estimate never exceeds the sum of its parts' estimates.

    Fusion concatenates the parts' arithmetic and (at most) their traffic
    into one launch over the same grid, so with identical occupancy the
    roofline maximum of sums is bounded by the sum of maxima, and one launch
    costs less than several.
    """

    @pytest.mark.parametrize("rows,cols", SHAPES)
    @pytest.mark.parametrize("category", ["gemm", "traversal"])
    def test_merged_work_record_is_never_slower(self, rows, cols, category):
        rng = np.random.default_rng(rows % 1009)
        for _ in range(20):
            parts = [
                _work(
                    rows,
                    cols,
                    category,
                    flops=float(rng.uniform(1e5, 1e11)),
                    bytes_read=float(rng.uniform(1e4, 1e10)),
                    bytes_written=float(rng.uniform(1e4, 1e9)),
                )
                for _ in range(int(rng.integers(2, 5)))
            ]
            merged = _work(
                rows,
                cols,
                category,
                flops=sum(p.flops for p in parts),
                bytes_read=sum(p.bytes_read for p in parts),
                bytes_written=sum(p.bytes_written for p in parts),
                launches=1,
            )
            merged_time = estimate_kernel_time(merged).total_time
            parts_time = sum(estimate_kernel_time(p).total_time for p in parts)
            assert merged_time <= parts_time + 1e-12

    @pytest.mark.parametrize("model", MODEL_NAMES)
    @pytest.mark.parametrize("dataset", ["aifb", "bgs", "mag"])
    def test_elementwise_fusion_never_slower_on_real_plans(self, model, dataset):
        """End to end: fuse_elementwise plans are never priced slower."""
        program = build_program(model)
        workload = WorkloadSpec.from_dataset(dataset)
        unfused = compile_program(program, CompilerOptions()).plan
        fused = compile_program(program, CompilerOptions(fuse_elementwise=True)).plan
        for training in (False, True):
            unfused_ms = plan_execution_estimate(unfused, workload, training=training).total_time_ms
            fused_ms = plan_execution_estimate(fused, workload, training=training).total_time_ms
            assert fused_ms <= unfused_ms * (1 + 1e-9), (model, dataset, training)
