"""Tests of the analytical GPU cost model and profiler."""

import pytest

from repro.evaluation.workload import WorkloadSpec
from repro.gpu import (
    A100_40GB,
    RTX_3090,
    KernelWork,
    estimate_execution,
    estimate_kernel_time,
    kernel_work_from_instance,
    plan_execution_estimate,
)
from repro.gpu.profiler import aggregate_profiles, profile_kernel, profile_kernels
from repro.ir.inter_op import lower_program
from repro.models import build_program


def make_work(**overrides):
    defaults = dict(
        name="k", category="gemm", flops=1e9, bytes_read=1e7, bytes_written=1e6,
        launches=1, host_ops=1, rows=100_000, cols=64,
    )
    defaults.update(overrides)
    return KernelWork(**defaults)


class TestDevice:
    def test_rtx3090_parameters(self):
        assert RTX_3090.memory_bytes == 24 * 2**30
        assert RTX_3090.peak_flops == pytest.approx(35.6e12)
        assert RTX_3090.dram_bandwidth == pytest.approx(936e9)
        assert RTX_3090.schedulers_per_sm == 4

    def test_devices_differ(self):
        assert A100_40GB.memory_bytes > RTX_3090.memory_bytes
        assert A100_40GB.dram_bandwidth > RTX_3090.dram_bandwidth


class TestKernelTimeModel:
    def test_more_flops_takes_longer(self):
        fast = estimate_kernel_time(make_work(flops=1e8))
        slow = estimate_kernel_time(make_work(flops=1e10))
        assert slow.total_time > fast.total_time

    def test_memory_bound_kernel_detected(self):
        work = make_work(category="traversal", flops=1e6, bytes_read=5e9, bytes_written=1e9)
        timing = estimate_kernel_time(work)
        assert timing.bound == "memory"

    def test_latency_bound_tiny_kernel(self):
        work = make_work(flops=1e3, bytes_read=1e3, bytes_written=1e3, rows=8, cols=8)
        timing = estimate_kernel_time(work)
        assert timing.bound == "latency"
        assert timing.launch_time >= RTX_3090.kernel_launch_overhead_us * 1e-6

    def test_small_grids_get_lower_throughput(self):
        big = make_work(rows=1_000_000)
        small = make_work(rows=500, flops=1e9)
        big_gflops = big.flops / estimate_kernel_time(big).total_time / 1e9
        small_gflops = small.flops / estimate_kernel_time(small).total_time / 1e9
        assert big_gflops > small_gflops

    def test_atomics_and_outer_products_are_penalised(self):
        base = estimate_kernel_time(make_work(category="traversal"))
        atomic = estimate_kernel_time(make_work(category="traversal", uses_atomics=True))
        outer = estimate_kernel_time(make_work(category="traversal", uses_atomics=True, has_outer_product=True))
        assert atomic.total_time > base.total_time
        assert outer.total_time > atomic.total_time

    def test_gemm_beats_traversal_for_same_work(self):
        gemm = estimate_kernel_time(make_work(category="gemm", flops=5e10))
        traversal = estimate_kernel_time(make_work(category="traversal", flops=5e10))
        assert gemm.total_time < traversal.total_time

    def test_arithmetic_intensity(self):
        work = make_work(flops=1e6, bytes_read=5e5, bytes_written=5e5)
        assert work.arithmetic_intensity == pytest.approx(1.0)


class TestExecutionEstimate:
    def test_launch_and_host_overhead_accumulate(self):
        works = [make_work(name=f"k{i}", launches=1, host_ops=1) for i in range(10)]
        eager = estimate_execution(works, framework_overhead_per_op_us=50.0)
        compiled = estimate_execution(works, framework_overhead_per_op_us=2.0)
        assert eager.total_time > compiled.total_time
        assert eager.num_launches() == 10
        assert "gemm" in eager.time_by_category()

    def test_many_small_launches_slower_than_one_big(self):
        one = [make_work(flops=1e9, rows=100_000)]
        many = [make_work(name=f"k{i}", flops=1e9 / 50, rows=2000) for i in range(50)]
        assert estimate_execution(many).total_time > estimate_execution(one).total_time

    def test_plan_execution_estimate_training_costs_more(self):
        plan = lower_program(build_program("rgcn"))
        workload = WorkloadSpec.from_dataset("aifb")
        inference = plan_execution_estimate(plan, workload, training=False)
        training = plan_execution_estimate(plan, workload, training=True)
        assert training.total_time > inference.total_time

    def test_kernel_work_from_instance_categories(self):
        plan = lower_program(build_program("rgat"))
        workload = WorkloadSpec.from_dataset("aifb")
        works = [kernel_work_from_instance(k, workload) for k in plan.forward_kernels]
        assert {w.category for w in works} <= {"gemm", "traversal", "fallback"}
        assert all(w.flops >= 0 and w.bytes_total > 0 for w in works)


class TestProfiler:
    def test_profile_metrics_in_valid_ranges(self):
        profile = profile_kernel(make_work())
        assert profile.achieved_gflops > 0
        assert 0 < profile.executed_ipc <= 4
        assert 0 <= profile.dram_throughput_pct <= 100
        assert 0 <= profile.lsu_utilization_pct <= 100
        assert set(profile.as_dict()) >= {"achieved_gflops", "executed_ipc"}

    def test_atomic_kernels_have_lower_ipc(self):
        normal = profile_kernel(make_work(category="traversal"))
        atomic = profile_kernel(make_work(category="traversal", uses_atomics=True))
        assert atomic.executed_ipc < normal.executed_ipc

    def test_aggregate_profiles_by_category_and_direction(self):
        works = [
            make_work(name="a", category="gemm", direction="forward"),
            make_work(name="b", category="gemm", direction="backward", uses_atomics=True),
            make_work(name="c", category="traversal", direction="forward"),
        ]
        aggregated = aggregate_profiles(profile_kernels(works))
        assert set(aggregated) == {"gemm/forward", "gemm/backward", "traversal/forward"}
        assert aggregated["gemm/forward"]["num_kernels"] == 1
        assert aggregated["gemm/backward"]["avg_executed_ipc"] < aggregated["gemm/forward"]["avg_executed_ipc"]
